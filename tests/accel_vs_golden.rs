//! Hardware-vs-golden-model integration: the accelerator's dataflow
//! simulators must produce bit-exact results against the software CKKS
//! library on the paper's real Set-A parameters.

use heax::accel::accel::HeaxAccelerator;
use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, ParamSet,
    PublicKey, RelinKey, SecretKey,
};
use heax::hw::board::Board;
use heax::hw::ntt_dataflow::{NttModuleConfig, NttModuleSim};
use heax::math::poly::{Representation, RnsPoly};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Rig {
    ctx: CkksContext,
    sk: SecretKey,
    pk: PublicKey,
    rlk: RelinKey,
    rng: StdRng,
}

fn rig() -> Rig {
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA).unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    Rig {
        ctx,
        sk,
        pk,
        rlk,
        rng,
    }
}

#[test]
fn hardware_ntt_bit_exact_on_paper_sizes() {
    // Every (n, nc) combination the paper instantiates.
    for (n, nc) in [
        (4096usize, 8usize),
        (4096, 16),
        (8192, 16),
        (16384, 16),
        (16384, 8),
    ] {
        let p = heax::math::primes::generate_ntt_primes(45, 1, n).unwrap()[0];
        let table =
            heax::math::ntt::NttTable::new(n, heax::math::word::Modulus::new(p).unwrap()).unwrap();
        let sim = NttModuleSim::new(NttModuleConfig::new(n, nc).unwrap(), &table).unwrap();
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D) % p)
            .collect();
        let mut expect = input.clone();
        table.forward(&mut expect);
        let (got, stats) = sim.forward(&input);
        assert_eq!(got, expect, "n={n} nc={nc}");
        assert_eq!(
            stats.cycles,
            (n as u64 * n.trailing_zeros() as u64) / (2 * nc as u64)
        );
    }
}

#[test]
fn accelerator_full_op_suite_bit_exact_set_a() {
    let mut r = rig();
    let enc = CkksEncoder::new(&r.ctx);
    let eval = Evaluator::new(&r.ctx);
    let scale = r.ctx.params().scale();
    let top = r.ctx.max_level();
    let e = Encryptor::new(&r.ctx, &r.pk);
    let ct_a = e
        .encrypt(
            &enc.encode_real(&[1.0, -2.0, 3.0], scale, top).unwrap(),
            &mut r.rng,
        )
        .unwrap();
    let ct_b = e
        .encrypt(
            &enc.encode_real(&[0.5, 4.0, -1.0], scale, top).unwrap(),
            &mut r.rng,
        )
        .unwrap();

    let accel = HeaxAccelerator::new(&r.ctx, Board::stratix10()).unwrap();

    // NTT/INTT round trip through the banked hardware.
    let moduli = r.ctx.level_moduli(top).to_vec();
    let mut poly = RnsPoly::zero(r.ctx.n(), &moduli, Representation::Coefficient);
    for (i, m) in moduli.iter().enumerate() {
        for (j, c) in poly.residue_mut(i).iter_mut().enumerate() {
            *c = (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % m.value();
        }
    }
    let (ntt_out, _) = accel.ntt(&poly).unwrap();
    let mut sw = poly.clone();
    sw.ntt_forward(r.ctx.ntt_tables()).unwrap();
    assert_eq!(ntt_out, sw);
    let (back, _) = accel.intt(&ntt_out).unwrap();
    assert_eq!(back, poly);

    // MULT module vs evaluator.
    let (hw_prod, _) = accel.dyadic_mult(&ct_a, &ct_b).unwrap();
    let sw_prod = eval.multiply(&ct_a, &ct_b).unwrap();
    assert_eq!(hw_prod, sw_prod);

    // KeySwitch module vs evaluator.
    let ((f0, f1), rep) = accel
        .key_switch(sw_prod.component(2), r.rlk.ksk(), sw_prod.level())
        .unwrap();
    let (g0, g1) = eval
        .key_switch(sw_prod.component(2), r.rlk.ksk(), sw_prod.level())
        .unwrap();
    assert_eq!(f0, g0);
    assert_eq!(f1, g1);
    // Table 8: Set-A on Stratix 10 = 3072-cycle interval.
    assert_eq!(rep.interval_cycles, 3072);

    // Full multiply+relinearize, then decrypt through the normal path.
    let (hw_mr, _) = accel.multiply_relin(&ct_a, &ct_b, &r.rlk).unwrap();
    let sw_mr = eval.relinearize(&sw_prod, &r.rlk).unwrap();
    assert_eq!(hw_mr, sw_mr);
    let dec = Decryptor::new(&r.ctx, &r.sk);
    let got = enc.decode_real(&dec.decrypt(&hw_mr).unwrap()).unwrap();
    for (i, want) in [0.5, -8.0, -3.0].iter().enumerate() {
        assert!(
            (got[i] - want).abs() < 0.1,
            "slot {i}: {} vs {want}",
            got[i]
        );
    }
}

#[test]
fn accelerator_rotation_bit_exact_set_a() {
    let mut r = rig();
    let enc = CkksEncoder::new(&r.ctx);
    let eval = Evaluator::new(&r.ctx);
    let scale = r.ctx.params().scale();
    let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let ct = Encryptor::new(&r.ctx, &r.pk)
        .encrypt(
            &enc.encode_real(&vals, scale, r.ctx.max_level()).unwrap(),
            &mut r.rng,
        )
        .unwrap();
    let gks = GaloisKeys::generate(&r.ctx, &r.sk, &[2], &mut r.rng);
    let accel = HeaxAccelerator::new(&r.ctx, Board::stratix10()).unwrap();
    let (hw, _) = accel.rotate(&ct, 2, &gks).unwrap();
    let sw = eval.rotate(&ct, 2, &gks).unwrap();
    assert_eq!(hw, sw);
}

#[test]
fn arria_and_stratix_accelerators_agree_functionally() {
    // Different architectures (8- vs 16-core modules) must compute the
    // same function — only cycle counts differ.
    let mut r = rig();
    let enc = CkksEncoder::new(&r.ctx);
    let scale = r.ctx.params().scale();
    let ct = Encryptor::new(&r.ctx, &r.pk)
        .encrypt(
            &enc.encode_real(&[7.0], scale, r.ctx.max_level()).unwrap(),
            &mut r.rng,
        )
        .unwrap();
    let prod = Evaluator::new(&r.ctx).multiply(&ct, &ct).unwrap();

    let a10 = HeaxAccelerator::new(&r.ctx, Board::arria10()).unwrap();
    let s10 = HeaxAccelerator::new(&r.ctx, Board::stratix10()).unwrap();
    let ((a0, a1), rep_a) = a10
        .key_switch(prod.component(2), r.rlk.ksk(), prod.level())
        .unwrap();
    let ((s0, s1), rep_s) = s10
        .key_switch(prod.component(2), r.rlk.ksk(), prod.level())
        .unwrap();
    assert_eq!((a0, a1), (s0, s1));
    // Arria takes 2× the cycles (half the cores) — Table 8: 6144 vs 3072.
    assert_eq!(rep_a.interval_cycles, 6144);
    assert_eq!(rep_s.interval_cycles, 3072);
}
