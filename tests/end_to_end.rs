//! End-to-end integration: the full client/server workflow on the paper's
//! real parameter sets, spanning heax-math → heax-ckks → heax-hw →
//! heax-core.

use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, ParamSet,
    PublicKey, RelinKey, SecretKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Session {
    ctx: CkksContext,
    sk: SecretKey,
    pk: PublicKey,
    rlk: RelinKey,
    rng: StdRng,
}

fn session(set: ParamSet, seed: u64) -> Session {
    let ctx = CkksContext::new(CkksParams::from_set(set).unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    Session {
        ctx,
        sk,
        pk,
        rlk,
        rng,
    }
}

fn roundtrip_tolerance(set: ParamSet) -> f64 {
    match set {
        ParamSet::SetA => 1e-2, // scale 2^30
        _ => 1e-4,              // scale 2^40
    }
}

#[test]
fn set_a_full_workflow() {
    full_workflow(ParamSet::SetA, 1);
}

#[test]
fn set_b_full_workflow() {
    full_workflow(ParamSet::SetB, 2);
}

#[test]
fn set_c_full_workflow() {
    full_workflow(ParamSet::SetC, 3);
}

fn full_workflow(set: ParamSet, seed: u64) {
    let mut s = session(set, seed);
    let tol = roundtrip_tolerance(set);
    let enc = CkksEncoder::new(&s.ctx);
    let eval = Evaluator::new(&s.ctx);
    let scale = s.ctx.params().scale();
    let top = s.ctx.max_level();

    let xs = [1.25, -0.5, 3.0, 0.0, 2.5];
    let ys = [2.0, 4.0, -1.0, 7.0, 0.5];
    let ct_x = Encryptor::new(&s.ctx, &s.pk)
        .encrypt(&enc.encode_real(&xs, scale, top).unwrap(), &mut s.rng)
        .unwrap();
    let ct_y = Encryptor::new(&s.ctx, &s.pk)
        .encrypt(&enc.encode_real(&ys, scale, top).unwrap(), &mut s.rng)
        .unwrap();

    // Add.
    let dec = Decryptor::new(&s.ctx, &s.sk);
    let sum = eval.add(&ct_x, &ct_y).unwrap();
    let got = enc.decode_real(&dec.decrypt(&sum).unwrap()).unwrap();
    for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
        assert!((got[i] - (x + y)).abs() < tol, "add slot {i}: {}", got[i]);
    }

    // Multiply + relinearize + rescale.
    let prod = eval
        .rescale(&eval.multiply_relin(&ct_x, &ct_y, &s.rlk).unwrap())
        .unwrap();
    assert_eq!(prod.level(), top - 1);
    let got = enc.decode_real(&dec.decrypt(&prod).unwrap()).unwrap();
    for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
        let want = x * y;
        assert!(
            (got[i] - want).abs() < tol * 10.0,
            "mul slot {i}: {} vs {want}",
            got[i]
        );
    }
}

#[test]
fn set_a_rotation_and_conjugation() {
    let mut s = session(ParamSet::SetA, 4);
    let enc = CkksEncoder::new(&s.ctx);
    let eval = Evaluator::new(&s.ctx);
    let scale = s.ctx.params().scale();
    let slots = s.ctx.n() / 2;
    let vals: Vec<f64> = (0..slots).map(|i| (i % 97) as f64).collect();
    let ct = Encryptor::new(&s.ctx, &s.pk)
        .encrypt(
            &enc.encode_real(&vals, scale, s.ctx.max_level()).unwrap(),
            &mut s.rng,
        )
        .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let gks = GaloisKeys::generate_with_conjugate(&s.ctx, &s.sk, &[1, 16, -3], &mut rng);
    let dec = Decryptor::new(&s.ctx, &s.sk);
    for step in [1i64, 16, -3] {
        let rot = eval.rotate(&ct, step, &gks).unwrap();
        let got = enc.decode_real(&dec.decrypt(&rot).unwrap()).unwrap();
        for j in (0..slots).step_by(997) {
            let src = (j as i64 + step).rem_euclid(slots as i64) as usize;
            assert!(
                (got[j] - vals[src]).abs() < 1e-1,
                "step {step} slot {j}: {} vs {}",
                got[j],
                vals[src]
            );
        }
    }
    let conj = eval.conjugate(&ct, &gks).unwrap();
    let got = enc.decode(&dec.decrypt(&conj).unwrap()).unwrap();
    assert!((got[1].re - vals[1]).abs() < 1e-1);
    assert!(got[1].im.abs() < 1e-1);
}

#[test]
fn set_a_depth_exhaustion_is_an_error() {
    let mut s = session(ParamSet::SetA, 6);
    let enc = CkksEncoder::new(&s.ctx);
    let eval = Evaluator::new(&s.ctx);
    let scale = s.ctx.params().scale();
    let ct = Encryptor::new(&s.ctx, &s.pk)
        .encrypt(
            &enc.encode_real(&[2.0], scale, s.ctx.max_level()).unwrap(),
            &mut s.rng,
        )
        .unwrap();
    // Set-A has k = 2 → exactly one rescale available.
    let m1 = eval
        .rescale(&eval.multiply_relin(&ct, &ct, &s.rlk).unwrap())
        .unwrap();
    assert_eq!(m1.level(), 0);
    let m2 = eval.multiply_relin(&m1, &m1, &s.rlk).unwrap();
    assert!(matches!(
        eval.rescale(&m2),
        Err(heax::ckks::CkksError::LevelExhausted)
    ));
}

/// The load-shedding vocabulary survives a real wire round trip: a
/// server under permanent transient faults answers with `Degraded`
/// (code 9) once retries exhaust, or `LoadShed` (code 8) once the
/// deadline budget blows — and both codes come back intact through
/// encoded error frames parsed by the client.
#[test]
fn load_shed_and_degraded_codes_round_trip_over_real_frames() {
    use heax::hw::board::Board;
    use heax::server::wire::client::{self, Reply};
    use heax::server::{ErrorCode, FlushPolicy, HeaxServer};

    let mut s = session(ParamSet::SetA, 8);
    let enc = CkksEncoder::new(&s.ctx);
    let scale = s.ctx.params().scale();
    let ct = Encryptor::new(&s.ctx, &s.pk)
        .encrypt(
            &enc.encode_real(&[1.0, 2.0], scale, s.ctx.max_level())
                .unwrap(),
            &mut s.rng,
        )
        .unwrap();
    let ct_bytes = heax::ckks::serialize::serialize_ciphertext(&ct);

    // Case 1: retries exhaust under a 100% fault rate → Degraded (9).
    let mut server = HeaxServer::new(&s.ctx, Board::stratix10())
        .unwrap()
        .with_flush_policy(FlushPolicy {
            max_retries: 2,
            backoff_us: 10,
            deadline_us: 0,
        })
        .with_transient_faults(11, 1.0);
    let opened = server.handle_frame(&client::open_session()).unwrap();
    let (sid, _, _) = client::parse_reply(&opened).unwrap();
    let frame = client::request(
        sid,
        1,
        &heax::server::wire::Request {
            op: heax::server::OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![
                heax::server::wire::WireOperand::Inline(&ct_bytes),
                heax::server::wire::WireOperand::Inline(&ct_bytes),
            ],
        },
    );
    assert!(server.handle_frame(&frame).is_none(), "request queues");
    let replies = server.flush();
    let (_, _, reply) = client::parse_reply(&replies[0]).unwrap();
    let Reply::Error { code, .. } = reply else {
        panic!("expected a degraded error frame, got {reply:?}");
    };
    assert_eq!(code, ErrorCode::Degraded);
    assert_eq!(code as u16, 9, "Degraded is pinned to wire code 9");
    assert_eq!(server.stats().degraded_replies, 1);

    // Case 2: the deadline budget blows before retries do → LoadShed (8).
    let mut server = HeaxServer::new(&s.ctx, Board::stratix10())
        .unwrap()
        .with_flush_policy(FlushPolicy {
            max_retries: 100,
            backoff_us: 100,
            deadline_us: 50,
        })
        .with_transient_faults(12, 1.0);
    let opened = server.handle_frame(&client::open_session()).unwrap();
    let (sid, _, _) = client::parse_reply(&opened).unwrap();
    let frame = client::request(
        sid,
        2,
        &heax::server::wire::Request {
            op: heax::server::OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![
                heax::server::wire::WireOperand::Inline(&ct_bytes),
                heax::server::wire::WireOperand::Inline(&ct_bytes),
            ],
        },
    );
    assert!(server.handle_frame(&frame).is_none(), "request queues");
    let replies = server.flush();
    let (_, _, reply) = client::parse_reply(&replies[0]).unwrap();
    let Reply::Error { code, message } = reply else {
        panic!("expected a load-shed error frame, got {reply:?}");
    };
    assert_eq!(code, ErrorCode::LoadShed);
    assert_eq!(code as u16, 8, "LoadShed is pinned to wire code 8");
    assert!(!message.is_empty(), "shed frames explain themselves");
    assert_eq!(server.stats().shed_requests, 1);
}

#[test]
fn symmetric_and_public_encryption_agree() {
    let mut s = session(ParamSet::SetA, 7);
    let enc = CkksEncoder::new(&s.ctx);
    let scale = s.ctx.params().scale();
    let pt = enc
        .encode_real(&[5.5, -1.5], scale, s.ctx.max_level())
        .unwrap();
    let dec = Decryptor::new(&s.ctx, &s.sk);
    let ct_pub = Encryptor::new(&s.ctx, &s.pk)
        .encrypt(&pt, &mut s.rng)
        .unwrap();
    let ct_sym = heax::ckks::encrypt_symmetric(&s.ctx, &s.sk, &pt, &mut s.rng).unwrap();
    let a = enc.decode_real(&dec.decrypt(&ct_pub).unwrap()).unwrap();
    let b = enc.decode_real(&dec.decrypt(&ct_sym).unwrap()).unwrap();
    assert!((a[0] - 5.5).abs() < 1e-2 && (b[0] - 5.5).abs() < 1e-2);
    assert!((a[1] + 1.5).abs() < 1e-2 && (b[1] + 1.5).abs() < 1e-2);
}
