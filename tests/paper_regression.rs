//! Regression tests pinning this reproduction to the paper's published
//! evaluation artifacts (the deterministic HEAX-side numbers).

use heax::accel::arch::DesignPoint;
use heax::accel::perf::{estimate, paper_heax_ops_per_sec, HeaxOp};
use heax::ckks::{CkksParams, ParamSet};
use heax::hw::board::Board;
use heax::hw::keyswitch_pipeline::schedule;
use heax::hw::xfer::DramModel;

#[test]
fn table2_parameter_sets() {
    for (set, n, bits, k) in [
        (ParamSet::SetA, 4096usize, 109u32, 2usize),
        (ParamSet::SetB, 8192, 218, 4),
        (ParamSet::SetC, 16384, 438, 8),
    ] {
        let p = CkksParams::from_set(set).unwrap();
        assert_eq!(p.n(), n);
        assert_eq!(p.total_modulus_bits(), bits);
        assert_eq!(p.k(), k);
        // Every modulus is NTT-friendly and within the 54-bit datapath.
        for &q in p.moduli() {
            assert_eq!(q % (2 * n as u64), 1);
            assert!(64 - q.leading_zeros() <= 52);
        }
    }
}

#[test]
fn table5_architectures_exact() {
    let expected = [
        "1xINTT(8) -> 2xNTT(8) -> 3xDyad(4) -> 2xINTT(4) -> 2xNTT(8) -> 2xMult(2)",
        "1xINTT(16) -> 2xNTT(16) -> 3xDyad(8) -> 2xINTT(8) -> 2xNTT(16) -> 2xMult(4)",
        "1xINTT(16) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(4) -> 2xNTT(16) -> 2xMult(4)",
        "1xINTT(8) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(1) -> 2xNTT(8) -> 2xMult(4)",
    ];
    for (dp, want) in DesignPoint::paper_rows().iter().zip(expected) {
        assert_eq!(dp.arch.summary(), want, "{} {}", dp.board.name(), dp.set);
    }
}

#[test]
fn tables7_and_8_heax_columns() {
    // All 20 published HEAX ops/s figures, within rounding.
    let mut checked = 0;
    for dp in DesignPoint::paper_rows() {
        for op in HeaxOp::ALL {
            let model = estimate(&dp, op).ops_per_sec;
            let paper = paper_heax_ops_per_sec(&dp.board, dp.set, op).unwrap();
            assert!(
                (model - paper).abs() / paper < 1e-3,
                "{} {} {}: {model} vs {paper}",
                dp.board.name(),
                dp.set,
                op.name()
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 20);
}

#[test]
fn scalability_claim_stratix_doubles_arria() {
    // Section 6.3: the Stratix Set-A instantiation provides 2× the Arria
    // throughput at ~2× the resources.
    let a = DesignPoint::derive(Board::arria10(), ParamSet::SetA).unwrap();
    let s = DesignPoint::derive(Board::stratix10(), ParamSet::SetA).unwrap();
    let ka = estimate(&a, HeaxOp::KeySwitch).cycles;
    let ks = estimate(&s, HeaxOp::KeySwitch).cycles;
    assert_eq!(ka, 2 * ks);
}

#[test]
fn pipeline_schedule_matches_closed_form_for_all_rows() {
    for dp in DesignPoint::paper_rows() {
        let sched = schedule(&dp.arch, 6).unwrap();
        assert_eq!(
            sched.steady_interval,
            dp.arch.steady_interval_cycles(),
            "{}",
            dp.arch.summary()
        );
    }
}

#[test]
fn section_5_1_dram_argument() {
    // 151 Mb of keys per Set-C KeySwitch, streamed in 383 µs, needs
    // 49.28 GBps < the Stratix 10's 64 GBps.
    let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetC).unwrap();
    let interval_us = estimate(&dp, HeaxOp::KeySwitch).op_us;
    assert!((interval_us - 382.3).abs() < 1.0, "{interval_us}");
    let req = DramModel::required_ksk_gbps(16384, 8, interval_us);
    assert!((req - 49.37).abs() < 0.2, "{req}"); // paper rounds to 49.28
    assert!(DramModel::for_board(&dp.board).sustains_ksk(16384, 8, interval_us));
}

#[test]
fn resource_budgets_never_exceeded() {
    for dp in DesignPoint::paper_rows() {
        let r = dp.resources();
        assert!(
            r.fits_within(dp.board.budget()),
            "{} {} overflows: {r}",
            dp.board.name(),
            dp.set
        );
    }
}
