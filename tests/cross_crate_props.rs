//! Cross-crate property tests: random-data invariants that span the
//! library layers (hardware simulators vs software algorithms, encoder
//! bounds, scheme correctness on a small hardware-compatible ring).

use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, PublicKey, RelinKey,
    SecretKey,
};
use heax::hw::mult_dataflow::{MultModuleConfig, MultModuleSim};
use heax::hw::ntt_dataflow::{NttModuleConfig, NttModuleSim};
use heax::math::fft::Complex64;
use heax::math::ntt::NttTable;
use heax::math::primes::generate_ntt_primes;
use heax::math::word::Modulus;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hw_ctx() -> CkksContext {
    let chain = heax::math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The banked-BRAM NTT module computes exactly the software NTT for
    /// random polynomials, sizes, and core counts.
    #[test]
    fn hw_ntt_equals_sw_ntt(
        seed in any::<u64>(),
        log_n in 6u32..11,
        log_nc in 2u32..4,
    ) {
        let n = 1usize << log_n;
        let nc = 1usize << log_nc;
        prop_assume!(4 * nc <= n);
        let p = generate_ntt_primes(45, 1, n).unwrap()[0];
        let table = NttTable::new(n, Modulus::new(p).unwrap()).unwrap();
        let sim = NttModuleSim::new(NttModuleConfig::new(n, nc).unwrap(), &table).unwrap();
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(seed | 1) % p)
            .collect();
        let mut expect = input.clone();
        table.forward(&mut expect);
        let (got, _) = sim.forward(&input);
        prop_assert_eq!(got, expect);
        // Inverse too.
        let mut inv_expect = input.clone();
        table.inverse(&mut inv_expect);
        let (inv_got, _) = sim.inverse(&input);
        prop_assert_eq!(inv_got, inv_expect);
    }

    /// The MULT module computes Algorithm 5 exactly for random residues.
    #[test]
    fn hw_mult_equals_schoolbook_dyadic(seed in any::<u64>()) {
        let n = 64usize;
        let p = Modulus::new(generate_ntt_primes(45, 1, n).unwrap()[0]).unwrap();
        let sim = MultModuleSim::new(MultModuleConfig::new(n, 8).unwrap(), p).unwrap();
        let mk = |salt: u64| -> Vec<u64> {
            (0..n as u64)
                .map(|i| (i.wrapping_mul(seed ^ salt) | 1) % p.value())
                .collect()
        };
        let (a0, a1, b0, b1) = (mk(1), mk(2), mk(3), mk(4));
        let (out, _) = sim.multiply(&[a0.clone(), a1.clone()], &[b0.clone(), b1.clone()]);
        for t in 0..n {
            prop_assert_eq!(out[0][t], p.mul_mod(a0[t], b0[t]));
            prop_assert_eq!(
                out[1][t],
                p.add_mod(p.mul_mod(a0[t], b1[t]), p.mul_mod(a1[t], b0[t]))
            );
            prop_assert_eq!(out[2][t], p.mul_mod(a1[t], b1[t]));
        }
    }

    /// Encode → decode stays within the quantization bound for random
    /// complex vectors.
    #[test]
    fn encode_decode_error_bounded(
        vals in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 32)
    ) {
        let ctx = hw_ctx();
        let enc = CkksEncoder::new(&ctx);
        let input: Vec<Complex64> = vals.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let pt = enc.encode(&input, ctx.params().scale(), ctx.max_level()).unwrap();
        let out = enc.decode(&pt).unwrap();
        for (a, b) in out.iter().zip(&input) {
            // Rounding error ≤ n/(2·scale) per slot, generously bounded.
            prop_assert!((*a - *b).abs() < 1e-4, "{a:?} vs {b:?}");
        }
    }

    /// Homomorphic multiply-relinearize-rescale computes the product of
    /// random vectors on a hardware-compatible ring.
    #[test]
    fn scheme_multiplies_random_vectors(
        xs in prop::collection::vec(-10.0f64..10.0, 8),
        ys in prop::collection::vec(-10.0f64..10.0, 8),
        seed in any::<u64>(),
    ) {
        let ctx = hw_ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let eval = Evaluator::new(&ctx);
        let scale = ctx.params().scale();
        let e = Encryptor::new(&ctx, &pk);
        let ca = e.encrypt(&enc.encode_real(&xs, scale, ctx.max_level()).unwrap(), &mut rng).unwrap();
        let cb = e.encrypt(&enc.encode_real(&ys, scale, ctx.max_level()).unwrap(), &mut rng).unwrap();
        let prod = eval.rescale(&eval.multiply_relin(&ca, &cb, &rlk).unwrap()).unwrap();
        let dec = Decryptor::new(&ctx, &sk);
        let got = enc.decode_real(&dec.decrypt(&prod).unwrap()).unwrap();
        for i in 0..xs.len() {
            let want = xs[i] * ys[i];
            prop_assert!((got[i] - want).abs() < 0.05, "slot {i}: {} vs {want}", got[i]);
        }
    }

    /// Additions commute with encryption for random vectors.
    #[test]
    fn scheme_adds_random_vectors(
        xs in prop::collection::vec(-1000.0f64..1000.0, 8),
        ys in prop::collection::vec(-1000.0f64..1000.0, 8),
    ) {
        let ctx = hw_ctx();
        let mut rng = StdRng::seed_from_u64(42);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let eval = Evaluator::new(&ctx);
        let scale = ctx.params().scale();
        let e = Encryptor::new(&ctx, &pk);
        let ca = e.encrypt(&enc.encode_real(&xs, scale, ctx.max_level()).unwrap(), &mut rng).unwrap();
        let cb = e.encrypt(&enc.encode_real(&ys, scale, ctx.max_level()).unwrap(), &mut rng).unwrap();
        let sum = eval.add(&ca, &cb).unwrap();
        let dec = Decryptor::new(&ctx, &sk);
        let got = enc.decode_real(&dec.decrypt(&sum).unwrap()).unwrap();
        for i in 0..xs.len() {
            prop_assert!((got[i] - (xs[i] + ys[i])).abs() < 1e-3);
        }
    }
}
