//! Multi-client serving scenario: three tenants share one `heax::server`
//! instance, each with its own session, keys, and data. Their rotation
//! requests interleave on the wire; the batch scheduler untangles them
//! into per-ciphertext hoisted groups (one decomposition per client,
//! not per rotation). One tenant also misbehaves — garbage bytes, a
//! rotation step it never generated a key for — and receives structured
//! error frames while everyone's sessions keep serving.
//!
//! ```text
//! cargo run --release --example multi_client
//! ```

use heax::ckks::serialize::{deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys};
use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, GaloisKeys, ParamSet, PublicKey,
    SecretKey,
};
use heax::hw::board::Board;
use heax::server::wire::client::{self, Reply};
use heax::server::HeaxServer;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Tenant {
    name: &'static str,
    sk: SecretKey,
    vals: Vec<f64>,
    wire_ct: Vec<u8>,
    session: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    let steps = [1i64, 2, 3];
    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();

    let mut server = HeaxServer::new(&ctx, Board::stratix10())?;

    // ---- Three tenants connect and register their keys ------------------
    let mut tenants: Vec<Tenant> = Vec::new();
    for (i, name) in ["alice", "bob", "carol"].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let gks = GaloisKeys::generate(&ctx, &sk, &steps, &mut rng);
        let vals: Vec<f64> = (0..8).map(|j| (j + i * 10) as f64).collect();
        let ct = Encryptor::new(&ctx, &pk).encrypt(
            &encoder.encode_real(&vals, scale, ctx.max_level())?,
            &mut rng,
        )?;
        let reply = server.handle_frame(&client::open_session()).unwrap();
        let (session, _, _) = client::parse_reply(&reply)?;
        let wire_gks = serialize_galois_keys(&gks);
        server
            .handle_frame(&client::register_galois_keys(session, &wire_gks))
            .unwrap();
        println!(
            "{name}: session {session}, {} KiB of keys registered",
            wire_gks.len() / 1024
        );
        tenants.push(Tenant {
            name,
            sk,
            wire_ct: serialize_ciphertext(&ct),
            vals,
            session,
        });
    }

    // ---- Interleaved traffic --------------------------------------------
    // Requests arrive round-robin across tenants; the scheduler regroups
    // them by (session, ciphertext) for hoisting.
    let mut request_id = 0u64;
    for &step in &steps {
        for t in &tenants {
            request_id += 1;
            let frame = client::rotate(t.session, request_id, &t.wire_ct, step);
            assert!(server.handle_frame(&frame).is_none(), "queued");
        }
    }

    // One tenant misbehaves: raw garbage, then a step with no key.
    let bob = &tenants[1];
    let reply = server.handle_frame(b"\xde\xad\xbe\xef garbage").unwrap();
    let (_, _, err) = client::parse_reply(&reply)?;
    println!("\nserver answers garbage bytes with: {err:?}");
    request_id += 1;
    let frame = client::rotate(bob.session, request_id, &bob.wire_ct, 7);
    assert!(server.handle_frame(&frame).is_none());

    // ---- One flush serves everyone --------------------------------------
    let replies = server.flush();
    let mut errors = 0;
    let mut verified = 0;
    for frame in &replies {
        let (session, request, reply) = client::parse_reply(frame)?;
        let tenant = tenants
            .iter()
            .find(|t| t.session == session)
            .expect("known session");
        match reply {
            Reply::Ciphertext(bytes) => {
                let rotated = deserialize_ciphertext(&bytes, &ctx)?;
                let got =
                    encoder.decode_real(&Decryptor::new(&ctx, &tenant.sk).decrypt(&rotated)?)?;
                // Request ids were assigned round-robin: recover the step.
                let step = steps[(request as usize - 1) / tenants.len()];
                let want = tenant.vals[(step as usize) % tenant.vals.len()];
                assert!(
                    (got[0] - want).abs() < 0.05,
                    "{}: step {step}: {} vs {want}",
                    tenant.name,
                    got[0]
                );
                verified += 1;
            }
            Reply::Error { code, message } => {
                println!(
                    "{}: request {request} failed: {code:?}: {message}",
                    tenant.name
                );
                errors += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // ---- Observability ----------------------------------------------------
    let stats = server.stats();
    println!(
        "\nflush served {} requests: {verified} verified results, {errors} structured errors",
        replies.len()
    );
    println!(
        "hoisting: {} groups covered {} rotations (one decomposition each); \
         batch occupancy {:.1}",
        stats.hoisted_groups,
        stats.hoisted_rotations,
        stats.batch_occupancy()
    );
    for (id, s) in &stats.per_session {
        let name = tenants
            .iter()
            .find(|t| t.session == *id)
            .map_or("?", |t| t.name);
        println!(
            "  session {id} ({name}): {} requests, {} errors, {} KiB in, {} KiB out",
            s.requests,
            s.errors,
            s.bytes_in / 1024,
            s.bytes_out / 1024
        );
    }
    assert_eq!(stats.hoisted_groups, tenants.len() as u64);
    assert_eq!(errors, 1, "only bob's uncovered step fails");
    println!("\nmulti-session serving with failure containment verified ✓");
    Ok(())
}
