//! Encrypted descriptive statistics over a batched dataset — the
//! "cloud computes, client owns the data" scenario of the paper's
//! introduction (GDPR/HIPAA-style outsourcing).
//!
//! A client packs a whole dataset into the CKKS slots, and the server
//! computes mean, variance, and a covariance entry without ever seeing a
//! number in the clear. Rotate-and-add performs the reductions; one
//! relinearized multiplication each powers the second moments.
//!
//! ```text
//! cargo run --release --example encrypted_statistics
//! ```

use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, ParamSet,
    PublicKey, RelinKey, SecretKey,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SAMPLES: usize = 512; // power of two ≤ slots

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetB)?)?;
    let mut rng = StdRng::seed_from_u64(99);
    println!("generating keys (Set-B)...");
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let steps: Vec<i64> = (0..N_SAMPLES.trailing_zeros()).map(|s| 1i64 << s).collect();
    let gks = GaloisKeys::generate(&ctx, &sk, &steps, &mut rng);

    // Client data: two correlated columns.
    let xs: Vec<f64> = (0..N_SAMPLES).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 0.6 * x + 0.4 * rng.gen_range(-1.0..1.0))
        .collect();

    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let top = ctx.max_level();
    let encryptor = Encryptor::new(&ctx, &pk);
    let ct_x = encryptor.encrypt(&encoder.encode_real(&xs, scale, top)?, &mut rng)?;
    let ct_y = encryptor.encrypt(&encoder.encode_real(&ys, scale, top)?, &mut rng)?;

    // Server: sums via rotate-and-add; second moments via mult+relin.
    let eval = Evaluator::new(&ctx);
    let reduce = |ct: &heax::ckks::Ciphertext| -> Result<heax::ckks::Ciphertext, Box<dyn std::error::Error>> {
        let mut acc = ct.clone();
        for &s in &steps {
            let r = eval.rotate(&acc, s, &gks)?;
            acc = eval.add(&acc, &r)?;
        }
        Ok(acc)
    };

    let sum_x = reduce(&ct_x)?;
    let sum_y = reduce(&ct_y)?;
    let xx = eval.rescale(&eval.multiply_relin(&ct_x, &ct_x, &rlk)?)?;
    let xy = eval.rescale(&eval.multiply_relin(&ct_x, &ct_y, &rlk)?)?;
    let sum_xx = reduce(&xx)?;
    let sum_xy = reduce(&xy)?;

    // Client: decrypt slot 0 of each reduction and finish in the clear
    // (divisions by n are cheap and public).
    let dec = Decryptor::new(&ctx, &sk);
    let slot0 = |ct: &heax::ckks::Ciphertext| -> Result<f64, Box<dyn std::error::Error>> {
        Ok(encoder.decode_real(&dec.decrypt(ct)?)?[0])
    };
    let n = N_SAMPLES as f64;
    let mean_x = slot0(&sum_x)? / n;
    let mean_y = slot0(&sum_y)? / n;
    let var_x = slot0(&sum_xx)? / n - mean_x * mean_x;
    let cov_xy = slot0(&sum_xy)? / n - mean_x * mean_y;

    // Reference values.
    let rmean_x = xs.iter().sum::<f64>() / n;
    let rmean_y = ys.iter().sum::<f64>() / n;
    let rvar_x = xs.iter().map(|v| v * v).sum::<f64>() / n - rmean_x * rmean_x;
    let rcov = xs.iter().zip(&ys).map(|(a, b)| a * b).sum::<f64>() / n - rmean_x * rmean_y;

    println!("\nencrypted statistics over {N_SAMPLES} samples:");
    println!("  mean(x): {mean_x:.6}  (plaintext {rmean_x:.6})");
    println!("  mean(y): {mean_y:.6}  (plaintext {rmean_y:.6})");
    println!("  var(x):  {var_x:.6}  (plaintext {rvar_x:.6})");
    println!("  cov(x,y): {cov_xy:.6} (plaintext {rcov:.6})");
    assert!((mean_x - rmean_x).abs() < 1e-3);
    assert!((var_x - rvar_x).abs() < 1e-3);
    assert!((cov_xy - rcov).abs() < 1e-3);
    println!("\nall within 1e-3 of the plaintext computation ✓");
    println!(
        "KeySwitch operations used: {} rotations x4 reductions + 2 relins = {}",
        steps.len(),
        4 * steps.len() + 2
    );
    Ok(())
}
