//! Quickstart: encrypted arithmetic end to end on the paper's Set-A
//! parameters, plus the HEAX accelerator running the same operations
//! through the cycle-accurate hardware model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use heax::accel::accel::HeaxAccelerator;
use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, ParamSet,
    PublicKey, RelinKey, SecretKey,
};
use heax::hw::board::Board;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parameters: Set-A (n = 4096, 109-bit modulus, 128-bit security).
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    println!(
        "Set-A: n = {}, k = {} ciphertext primes + special, scale = 2^{}",
        ctx.n(),
        ctx.params().k(),
        ctx.params().scale().log2() as u32
    );

    // 2. Keys (client side).
    let mut rng = StdRng::seed_from_u64(42);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(&ctx, &sk, &[1], &mut rng);

    // 3. Encode + encrypt two vectors (client side).
    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let xs = [1.5, 2.0, -3.0, 0.25];
    let ys = [4.0, -1.0, 2.0, 8.0];
    let ct_x = Encryptor::new(&ctx, &pk)
        .encrypt(&encoder.encode_real(&xs, scale, ctx.max_level())?, &mut rng)?;
    let ct_y = Encryptor::new(&ctx, &pk)
        .encrypt(&encoder.encode_real(&ys, scale, ctx.max_level())?, &mut rng)?;

    // 4. Compute on ciphertexts (server side): x*y + rotate(x, 1).
    let eval = Evaluator::new(&ctx);
    let prod = eval.multiply_relin(&ct_x, &ct_y, &rlk)?;
    let rot = eval.rotate(&ct_x, 1, &gks)?;

    // 5. Decrypt + decode (client side).
    let dec = Decryptor::new(&ctx, &sk);
    let got_prod = encoder.decode_real(&dec.decrypt(&prod)?)?;
    let got_rot = encoder.decode_real(&dec.decrypt(&rot)?)?;
    println!("\nx ⊙ y  (want [6, -2, -6, 2]):   {:?}", &got_prod[..4]);
    println!("x << 1 (want [2, -3, 0.25, …]): {:?}", &got_rot[..3]);

    // 6. The same multiply+relinearize through the HEAX hardware model.
    let accel = HeaxAccelerator::new(&ctx, Board::stratix10())?;
    let (hw_prod, report) = accel.multiply_relin(&ct_x, &ct_y, &rlk)?;
    assert_eq!(hw_prod, prod, "hardware result is bit-exact vs software");
    println!(
        "\nHEAX model ({}): MULT+ReLin every {} cycles = {:.1} us -> {:.0} ops/s",
        accel.board().chip(),
        report.interval_cycles,
        report.interval_us,
        1e6 / report.interval_us
    );
    println!("hardware output bit-exact vs software evaluator ✓");
    Ok(())
}
