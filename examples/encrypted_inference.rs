//! Oblivious (encrypted) inference — the MLaaS scenario motivating the
//! paper's introduction: the client encrypts a feature vector; the server
//! evaluates a logistic-regression layer (dot product + cubic sigmoid
//! approximation) entirely on ciphertexts; only the client can decrypt.
//!
//! The dot product uses the rotate-and-add pattern (log₂ d rotations), so
//! the workload is dominated by exactly the operations HEAX accelerates:
//! C-P multiplication and KeySwitch (rotation/relinearization). The
//! example demonstrates production-style **scale management**: plaintext
//! constants are encoded at prime-targeted scales so every rescale lands
//! back on Δ exactly, and it prices the whole circuit on both the CPU
//! baseline and the HEAX performance model.
//!
//! ```text
//! cargo run --release --example encrypted_inference
//! ```

use heax::accel::arch::DesignPoint;
use heax::accel::perf::{estimate, HeaxOp};
use heax::ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys,
    ParamSet, PublicKey, RelinKey, SecretKey,
};
use heax::hw::board::Board;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const DIM: usize = 8; // feature dimension (power of two for rotate-and-add)

/// Renormalizes a ciphertext's scale back to `target` exactly, burning one
/// level: multiply by 1.0 encoded at scale `p_level·target/scale`, then
/// rescale by `p_level`.
fn align_scale(
    eval: &Evaluator,
    encoder: &CkksEncoder,
    ct: &Ciphertext,
    target: f64,
) -> Result<Ciphertext, Box<dyn std::error::Error>> {
    let p_l = eval.context().moduli()[ct.level()].value() as f64;
    let one = encoder.encode_scalar(1.0, p_l * target / ct.scale(), ct.level())?;
    Ok(eval.rescale(&eval.multiply_plain(ct, &one)?)?)
}

/// Drops a ciphertext to `level` without scaling.
fn switch_to_level(
    eval: &Evaluator,
    ct: &Ciphertext,
    level: usize,
) -> Result<Ciphertext, Box<dyn std::error::Error>> {
    let mut out = ct.clone();
    while out.level() > level {
        out = eval.mod_switch_to_next(&out)?;
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Set-C: n = 2^14, k = 8 — deep enough for the cubic with room left.
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetC)?)?;
    let mut rng = StdRng::seed_from_u64(2024);
    println!(
        "generating keys (Set-C: n = {}, k = {})...",
        ctx.n(),
        ctx.params().k()
    );
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let steps: Vec<i64> = (0..DIM.trailing_zeros()).map(|s| 1i64 << s).collect();
    let gks = GaloisKeys::generate(&ctx, &sk, &steps, &mut rng);

    let weights: Vec<f64> = vec![0.25, -0.5, 0.125, 0.75, -0.25, 0.5, -0.125, 0.375];
    let features: Vec<f64> = vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0, 1.5, -0.5];
    let bias = 0.1;
    let logit_ref: f64 = weights
        .iter()
        .zip(&features)
        .map(|(w, x)| w * x)
        .sum::<f64>()
        + bias;
    let prob_ref = sigmoid_cubic(logit_ref);

    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let top = ctx.max_level();
    let ct_x = Encryptor::new(&ctx, &pk)
        .encrypt(&encoder.encode_real(&features, scale, top)?, &mut rng)?;

    // ---- Server side ---------------------------------------------------
    let eval = Evaluator::new(&ctx);
    let t0 = Instant::now();

    // Dot product: encode weights at the to-be-dropped prime's scale so
    // the rescale lands exactly on Δ.
    let p_top = ctx.moduli()[top].value() as f64;
    let pt_w = encoder.encode_real(&weights, p_top, top)?;
    let mut acc = eval.rescale(&eval.multiply_plain(&ct_x, &pt_w)?)?; // L-1, Δ
    for &step in &steps {
        let rotated = eval.rotate(&acc, step, &gks)?;
        acc = eval.add(&acc, &rotated)?;
    }
    let pt_bias = encoder.encode_scalar(bias, acc.scale(), acc.level())?;
    let logit = eval.add_plain(&acc, &pt_bias)?; // level top-1, scale Δ

    // Cubic sigmoid σ(t) ≈ 0.5 + 0.197·t − 0.004·t³.
    let t2 = eval.rescale(&eval.multiply_relin(&logit, &logit, &rlk)?)?; // Δ²/p
    let t2 = align_scale(&eval, &encoder, &t2, scale)?; // back to Δ
    let logit_low = switch_to_level(&eval, &logit, t2.level())?;
    let t3 = eval.rescale(&eval.multiply_relin(&t2, &logit_low, &rlk)?)?;
    let t3 = align_scale(&eval, &encoder, &t3, scale)?; // t³ at Δ

    // 0.197·t: prime-targeted constant, then drop to t3's level.
    let p_lin = ctx.moduli()[logit.level()].value() as f64;
    let lin = eval.rescale(
        &eval.multiply_plain(&logit, &encoder.encode_scalar(0.197, p_lin, logit.level())?)?,
    )?;
    let lin = switch_to_level(&eval, &lin, t3.level())?;

    // −0.004·t³ at Δ, one more level down.
    let p_cub = ctx.moduli()[t3.level()].value() as f64;
    let cub = eval
        .rescale(&eval.multiply_plain(&t3, &encoder.encode_scalar(-0.004, p_cub, t3.level())?)?)?;
    let lin = switch_to_level(&eval, &lin, cub.level())?;

    let mut prob = eval.add(&cub, &lin)?;
    let half = encoder.encode_scalar(0.5, prob.scale(), prob.level())?;
    prob = eval.add_plain(&prob, &half)?;
    let server_time = t0.elapsed();

    // ---- Client side ----------------------------------------------------
    let dec = Decryptor::new(&ctx, &sk);
    let got_logit = encoder.decode_real(&dec.decrypt(&logit)?)?[0];
    let got_prob = encoder.decode_real(&dec.decrypt(&prob)?)?[0];

    println!("\nencrypted logistic inference (d = {DIM}, Set-C):");
    println!("  logit: encrypted {got_logit:.5}  vs plaintext {logit_ref:.5}");
    println!("  prob:  encrypted {got_prob:.5}  vs plaintext {prob_ref:.5} (cubic approx)");
    println!(
        "  final level: {} of {} (levels spent: {})",
        prob.level(),
        top,
        top - prob.level()
    );
    assert!((got_logit - logit_ref).abs() < 1e-2);
    assert!((got_prob - prob_ref).abs() < 1e-2);

    // ---- Cost model -----------------------------------------------------
    let ks_ops = steps.len() as f64 + 2.0; // rotations + 2 relinearizations
    println!(
        "\ncircuit cost ({} rotations + 2 relins = {ks_ops} KeySwitch ops):",
        steps.len()
    );
    println!(
        "  our CPU wall time:  {:.1} ms",
        server_time.as_secs_f64() * 1e3
    );
    let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetC)?;
    let ks = estimate(&dp, HeaxOp::KeySwitch);
    println!(
        "  HEAX model (Stratix 10): {ks_ops} × {:.0} us = {:.2} ms steady-state",
        ks.op_us,
        ks_ops * ks.op_us / 1e3
    );
    println!(
        "  paper's speed-up for this op mix: ~{:.0}x over the Xeon baseline",
        ks.ops_per_sec
            / heax::accel::perf::paper_cpu_ops_per_sec(ParamSet::SetC, HeaxOp::KeySwitch)
    );
    Ok(())
}

fn sigmoid_cubic(t: f64) -> f64 {
    0.5 + 0.197 * t - 0.004 * t * t * t
}
