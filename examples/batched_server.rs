//! Batched encrypted service — the Figure 7 deployment story end to end:
//! the client serializes ciphertexts and evaluation keys over the wire;
//! the server deserializes, runs a batch of accelerated operations,
//! parks intermediates in board DRAM via the memory map (no PCIe round
//! trips between steps), and ships the serialized result back.
//!
//! ```text
//! cargo run --release --example batched_server
//! ```

use heax::accel::accel::HeaxAccelerator;
use heax::accel::system::{HeaxSystem, OperandLocation};
use heax::ckks::serialize::{
    deserialize_ciphertext, deserialize_galois_keys, deserialize_relin_key, serialize_ciphertext,
    serialize_galois_keys, serialize_relin_key,
};
use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, ParamSet,
    PublicKey, RelinKey, SecretKey,
};
use heax::hw::board::Board;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Client ---------------------------------------------------------
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    let mut rng = StdRng::seed_from_u64(314);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(&ctx, &sk, &[1], &mut rng);

    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let data: Vec<f64> = (0..16).map(|i| (i as f64) / 4.0).collect();
    let ct = Encryptor::new(&ctx, &pk).encrypt(
        &encoder.encode_real(&data, scale, ctx.max_level())?,
        &mut rng,
    )?;

    // Everything that crosses the wire is bytes.
    let wire_ct = serialize_ciphertext(&ct);
    let wire_rlk = serialize_relin_key(&rlk);
    let wire_gks = serialize_galois_keys(&gks);
    println!(
        "client -> server: ciphertext {} KiB, relin key {} KiB, galois keys {} KiB",
        wire_ct.len() / 1024,
        wire_rlk.len() / 1024,
        wire_gks.len() / 1024
    );

    // ---- Server (host CPU + modeled FPGA board) -------------------------
    let server_ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    let ct_in = deserialize_ciphertext(&wire_ct, &server_ctx)?;
    let rlk_in = deserialize_relin_key(&wire_rlk, &server_ctx)?;
    let gks_in = deserialize_galois_keys(&wire_gks, &server_ctx)?;

    let accel = HeaxAccelerator::new(&server_ctx, Board::stratix10())?;
    let mut system = HeaxSystem::new(HeaxAccelerator::new(&server_ctx, Board::stratix10())?);

    // Step 1: x² (through the hardware model), parked in DRAM.
    let (squared, rep1) = accel.multiply_relin(&ct_in, &ct_in, &rlk_in)?;
    system.store("x_squared", squared.clone())?;

    // Step 2: rotate the DRAM-resident result (no PCIe re-upload).
    let parked = system.load("x_squared").expect("just stored").clone();
    let (rotated, rep2) = accel.rotate(&parked, 1, &gks_in)?;
    system.store("x_squared_rot", rotated.clone())?;

    // Step 3: combine: x² + rot(x², 1), still on the board.
    let eval = Evaluator::new(&server_ctx);
    let combined = eval.add(&parked, &rotated)?;

    println!(
        "server: mult+relin {} cycles, rotate {} cycles; {} DRAM-mapped entries ({} KiB)",
        rep1.interval_cycles,
        rep2.interval_cycles,
        system.mapped_entries(),
        system.dram_used_bytes() / 1024
    );
    let batch = system.batch(&rep2, 256, OperandLocation::BoardDram);
    println!(
        "batch of 256 DRAM-resident rotations: {:.2} ms wall -> {:.0} ops/s",
        batch.total_us / 1e3,
        batch.ops_per_sec
    );

    let wire_result = serialize_ciphertext(&combined);

    // ---- Client again ----------------------------------------------------
    let result = deserialize_ciphertext(&wire_result, &ctx)?;
    let got = encoder.decode_real(&Decryptor::new(&ctx, &sk).decrypt(&result)?)?;
    println!("\nclient receives x^2 + rot(x^2, 1):");
    for i in 0..4 {
        let want = data[i] * data[i] + data[i + 1] * data[i + 1];
        println!("  slot {i}: {:.4} (plaintext {:.4})", got[i], want);
        assert!((got[i] - want).abs() < 0.05);
    }
    println!("round trip through serialization + hardware model verified ✓");
    Ok(())
}
