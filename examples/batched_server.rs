//! Batched encrypted service — the Figure 7 deployment story end to
//! end, now served by the real `heax::server` subsystem: the client
//! serializes its ciphertext and evaluation keys, opens a session over
//! the framed wire protocol, registers its keys once (Shoup tables
//! rebuilt once, not per request), and submits a pipeline whose
//! intermediates stay **parked in board DRAM** between steps — no
//! serialize/ship/deserialize round trip until the final result.
//!
//! ```text
//! cargo run --release --example batched_server
//! ```

use heax::ckks::serialize::{
    deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys, serialize_relin_key,
};
use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, GaloisKeys, ParamSet, PublicKey,
    RelinKey, SecretKey,
};
use heax::hw::board::Board;
use heax::server::wire::client::{self, Reply};
use heax::server::wire::{OpCode, Request, WireOperand};
use heax::server::HeaxServer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Client ---------------------------------------------------------
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    let mut rng = StdRng::seed_from_u64(314);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(&ctx, &sk, &[1], &mut rng);

    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let data: Vec<f64> = (0..16).map(|i| (i as f64) / 4.0).collect();
    let ct = Encryptor::new(&ctx, &pk).encrypt(
        &encoder.encode_real(&data, scale, ctx.max_level())?,
        &mut rng,
    )?;

    // Everything that crosses the wire is bytes.
    let wire_ct = serialize_ciphertext(&ct);
    let wire_rlk = serialize_relin_key(&rlk);
    let wire_gks = serialize_galois_keys(&gks);
    println!(
        "client -> server: ciphertext {} KiB, relin key {} KiB, galois keys {} KiB",
        wire_ct.len() / 1024,
        wire_rlk.len() / 1024,
        wire_gks.len() / 1024
    );

    // ---- Server (host CPU + modeled FPGA board) -------------------------
    let server_ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    let mut server = HeaxServer::new(&server_ctx, Board::stratix10())?;

    // Session + keys: deserialization (and Shoup-table rebuild) happens
    // exactly once, at registration.
    let reply = server.handle_frame(&client::open_session()).unwrap();
    let (session, _, _) = client::parse_reply(&reply)?;
    for frame in [
        client::register_relin_key(session, &wire_rlk),
        client::register_galois_keys(session, &wire_gks),
    ] {
        let reply = server.handle_frame(&frame).unwrap();
        assert_eq!(client::parse_reply(&reply)?.2, Reply::KeyRegistered);
    }

    // The pipeline: x² parked, rot(x², 1) parked, x² + rot(x², 1) back.
    // Intermediates reference DRAM-parked handles — no PCIe-sized wire
    // payloads between steps.
    let requests = [
        Request {
            op: OpCode::SquareRelin,
            step: 0,
            compress_reply: false,
            park_as: Some("x2"),
            operands: vec![WireOperand::Inline(&wire_ct)],
        },
        Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: Some("x2_rot"),
            operands: vec![WireOperand::Parked("x2")],
        },
        Request {
            op: OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("x2"), WireOperand::Parked("x2_rot")],
        },
    ];
    for (i, req) in requests.iter().enumerate() {
        assert!(server
            .handle_frame(&client::request(session, i as u64 + 1, req))
            .is_none());
    }
    let replies = server.flush();

    let stats = server.stats();
    println!(
        "server: {} requests in 1 flush, {} parked intermediates ({} KiB board DRAM), \
         queue high-water {}",
        stats.batched_requests,
        stats.parked_entries,
        stats.parked_bytes / 1024,
        stats.queue_high_water,
    );

    // ---- Client again ----------------------------------------------------
    let (_, _, last) = client::parse_reply(replies.last().expect("three replies"))?;
    let Reply::Ciphertext(result_bytes) = last else {
        panic!("expected the final sum inline, got {last:?}");
    };
    println!(
        "server -> client: result {} KiB (intermediates never crossed the wire)",
        result_bytes.len() / 1024
    );
    let result = deserialize_ciphertext(&result_bytes, &ctx)?;
    let got = encoder.decode_real(&Decryptor::new(&ctx, &sk).decrypt(&result)?)?;
    println!("\nclient receives x^2 + rot(x^2, 1):");
    for i in 0..4 {
        let want = data[i] * data[i] + data[i + 1] * data[i + 1];
        println!("  slot {i}: {:.4} (plaintext {:.4})", got[i], want);
        assert!((got[i] - want).abs() < 0.05);
    }
    println!("round trip through the wire protocol + server subsystem verified ✓");
    Ok(())
}
