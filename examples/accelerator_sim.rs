//! Accelerator deep-dive: derive the HEAX design for every board/set,
//! run a real KeySwitch through the cycle-accurate hardware model with
//! bit-exact verification (exits nonzero on any model/evaluator
//! mismatch), and schedule a served workload on the board-level
//! pipeline, printing its full `PipelineReport` (Figure 7).
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use heax::accel::accel::HeaxAccelerator;
use heax::accel::arch::DesignPoint;
use heax::accel::perf::{estimate, estimate_stream, HeaxOp};
use heax::accel::system::{HeaxSystem, OperandLocation};
use heax::ckks::{
    CkksContext, CkksEncoder, CkksParams, Encryptor, Evaluator, ParamSet, PublicKey, RelinKey,
    SecretKey,
};
use heax::hw::board::Board;
use heax::hw::keyswitch_pipeline::schedule;
use heax::hw::scheduler::BoardOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Architecture derivation for all paper design points.
    println!("== derived HEAX design points (Table 5) ==");
    for dp in DesignPoint::paper_rows() {
        let r = dp.resources();
        let u = r.utilization_pct(dp.board.budget());
        println!(
            "{} / {}: {}\n    DSP {:.0}%  ALM {:.0}%  M20K {:.0}%  | ksk in {:?}",
            dp.board.name(),
            dp.set,
            dp.arch.summary(),
            u.dsp,
            u.alm,
            u.m20k,
            dp.ksk_placement
        );
    }

    // 2. Functional KeySwitch through the hardware, verified bit-exactly.
    println!("\n== functional hardware KeySwitch on Set-A (Stratix 10) ==");
    let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
    let mut rng = StdRng::seed_from_u64(7);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let encoder = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let ct = Encryptor::new(&ctx, &pk).encrypt(
        &encoder.encode_real(&[1.0, 2.0], scale, ctx.max_level())?,
        &mut rng,
    )?;
    let eval = Evaluator::new(&ctx);
    let prod = eval.multiply(&ct, &ct)?;

    let accel = HeaxAccelerator::new(&ctx, Board::stratix10())?;
    let ((f0, f1), _) = accel.key_switch(prod.component(2), rlk.ksk(), prod.level())?;
    let (g0, g1) = eval.key_switch(prod.component(2), rlk.ksk(), prod.level())?;
    if (&f0, &f1) != (&g0, &g1) {
        eprintln!("error: hardware KeySwitch disagrees with the golden model");
        std::process::exit(1);
    }
    println!("hardware == golden model ✓");

    // 3. Pipeline schedule (Figure 6 for this configuration).
    let sched = schedule(accel.arch(), 3)?;
    println!("\npipeline ({}):", accel.arch().summary());
    print!("{}", sched.gantt(sched.op_completion[2], 100));

    // 4. Board-level pipeline: the 8-client x 8-rotation serving
    // workload scheduled across 1 and 4 HEAX cores with overlapped
    // PCIe transfers (Figure 7).
    println!("\n== board-level pipeline (8 clients x 8 hoisted rotations) ==");
    let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetA)?;
    let workload = vec![BoardOp::rotate_many(8); 8];
    for cores in [1usize, 4] {
        print!("\n{}", estimate_stream(&dp, &workload, cores)?.render());
    }

    // 5. System view: batched throughput with PCIe overlap (Figure 7).
    println!("\n== system batch model (1024 MULT+ReLin ops) ==");
    let (_, op_rep) = accel.multiply_relin(&ct, &ct, &rlk)?;
    let sys = HeaxSystem::new(HeaxAccelerator::new(&ctx, Board::stratix10())?);
    for (label, loc) in [
        ("operands from host (PCIe)", OperandLocation::Host),
        ("operands in board DRAM   ", OperandLocation::BoardDram),
    ] {
        let r = sys.batch(&op_rep, 1024, loc);
        println!(
            "{label}: compute {:.1} ms, pcie {:.1} ms, wall {:.1} ms -> {:.0} ops/s",
            r.compute_us / 1e3,
            r.pcie_us / 1e3,
            r.total_us / 1e3,
            r.ops_per_sec
        );
    }

    // 6. Table 8 summary for this set.
    let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetA)?;
    let e = estimate(&dp, HeaxOp::KeySwitch);
    println!(
        "\nmodel KeySwitch rate: {:.0} ops/s (paper: 97656 ops/s; 200.5x over its Xeon baseline)",
        e.ops_per_sec
    );
    Ok(())
}
