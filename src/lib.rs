//! # heax — facade crate
//!
//! Re-exports the four layers of the HEAX (ASPLOS 2020) reproduction
//! under one roof:
//!
//! * [`math`] — modular arithmetic, NTT, RNS, FFT, sampling;
//! * [`ckks`] — the full RNS-CKKS scheme (CPU baseline / golden model);
//! * [`hw`] — FPGA component models, cycle-accurate dataflow simulators,
//!   and the board-level pipeline scheduler (`hw::scheduler`) composing
//!   them into multi-core schedules with overlapped transfers;
//! * [`accel`] — the HEAX accelerator (architecture derivation, resource
//!   and performance models, functional execution);
//! * [`server`] — the multi-session serving layer (framed wire protocol,
//!   session key cache, batch scheduler with hoisted rotations, metrics,
//!   optional modeled board cost per request — the paper's Figure 7
//!   deployment).
//!
//! `ARCHITECTURE.md` in the repository root maps the crates onto the
//! paper's machine end to end.
//!
//! The accelerator layer is re-exported as `accel` (not `core`, its crate
//! name) so the facade never shadows the built-in `core` prelude path.
//!
//! Limb-level work can run in parallel across RNS residues: see
//! [`exec`] (sequential by default; opt in with the `HEAX_THREADS`
//! environment variable or the `with_executor` builders on
//! `ckks::Evaluator` / `accel::HeaxAccelerator`).
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md`
//! for the paper-vs-measured evaluation index.
//!
//! ```
//! use heax::accel::arch::DesignPoint;
//! use heax::accel::perf::{estimate, HeaxOp};
//!
//! # fn main() -> Result<(), heax::hw::HwError> {
//! let dp = DesignPoint::derive(heax::hw::board::Board::stratix10(), heax::ckks::ParamSet::SetA)?;
//! assert_eq!(estimate(&dp, HeaxOp::KeySwitch).cycles, 3072); // Table 8
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use heax_ckks as ckks;
pub use heax_core as accel;
pub use heax_hw as hw;
pub use heax_math as math;
pub use heax_server as server;

pub use heax_math::exec;
