//! Offline stand-in: a minimal, `libc`-free readiness poller.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the only readiness primitive `heax-server`'s socket
//! runtime needs: a [`Poller`] with `add` / `modify` / `delete` /
//! `wait`, in the spirit of `mio`'s `Poll` but a few hundred lines
//! instead of a dependency tree.
//!
//! On Linux x86_64/aarch64 the implementation is the real thing — raw
//! `epoll_create1` / `epoll_ctl` / `epoll_wait` syscalls issued with
//! inline assembly (no `libc`, matching `heax_math::exec`'s policy of
//! owning its own low-level substrate). Every other target gets a
//! portable degraded fallback that reports every registered descriptor
//! as ready on each `wait`; since all sockets driven through the
//! poller are nonblocking, callers remain correct (reads/writes answer
//! `WouldBlock`) and merely busy-poll.
//!
//! This crate is intentionally *not* a general epoll binding: no
//! edge-triggered mode, no `EPOLLONESHOT`, no timerfd/eventfd helpers —
//! exactly the level-triggered subset the server event loop uses.

use std::io;

/// Readiness bit: the descriptor has bytes to read (`EPOLLIN`).
pub const READABLE: u32 = 0x001;
/// Readiness bit: the descriptor accepts writes (`EPOLLOUT`).
pub const WRITABLE: u32 = 0x004;
/// Readiness bit: error condition on the descriptor (`EPOLLERR`).
/// Always reported by the kernel; never needs to be requested.
pub const ERROR: u32 = 0x008;
/// Readiness bit: peer hung up (`EPOLLHUP`). Always reported by the
/// kernel; never needs to be requested.
pub const HANGUP: u32 = 0x010;

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Event {
    /// Bitwise OR of the readiness bits above.
    pub readiness: u32,
    /// The caller-chosen token registered with the descriptor.
    pub token: u64,
}

impl Event {
    /// Whether the descriptor is readable (or in an always-reported
    /// error/hangup state, which a read will surface).
    pub fn is_readable(self) -> bool {
        self.readiness & (READABLE | ERROR | HANGUP) != 0
    }

    /// Whether the descriptor is writable.
    pub fn is_writable(self) -> bool {
        self.readiness & WRITABLE != 0
    }

    /// Whether the kernel flagged an error or hangup.
    pub fn is_closed(self) -> bool {
        self.readiness & (ERROR | HANGUP) != 0
    }
}

/// Upper bound on events returned by one [`Poller::wait`] call.
pub const MAX_EVENTS: usize = 256;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Real epoll over raw syscalls (no libc).

    use super::{Event, MAX_EVENTS};
    use std::io;
    use std::os::unix::io::RawFd;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_WAIT: usize = 232;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const CLOSE: usize = 57;
        // aarch64 has no plain epoll_wait; epoll_pwait with a null
        // sigmask is the kernel-blessed equivalent.
        pub const EPOLL_WAIT: usize = 22;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_CREATE1: usize = 20;
    }

    const EPOLL_CLOEXEC: usize = 0x8_0000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EINTR: i32 = 4;

    /// The kernel's `struct epoll_event`. x86_64 declares it packed
    /// (12 bytes); every other architecture uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    struct RawEvent {
        events: u32,
        data: u64,
    }

    /// Issues one Linux syscall with up to four arguments.
    ///
    /// Returns the raw kernel result: `>= 0` on success, `-errno` on
    /// failure (the Linux convention; no errno thread-local involved).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction with the x86_64 Linux
        // calling convention (number in rax, args in rdi/rsi/rdx/r10,
        // result in rax; rcx/r11 clobbered by the instruction). All
        // pointers passed through this wrapper reference live,
        // correctly-sized buffers owned by the caller for the duration
        // of the call, so the kernel never reads or writes out of
        // bounds.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Issues one Linux syscall with up to four arguments.
    ///
    /// Returns the raw kernel result: `>= 0` on success, `-errno` on
    /// failure.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        // SAFETY: the `svc 0` instruction with the aarch64 Linux
        // calling convention (number in x8, args in x0..x3, result in
        // x0). All pointers passed through this wrapper reference
        // live, correctly-sized buffers owned by the caller for the
        // duration of the call, so the kernel never reads or writes
        // out of bounds.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                options(nostack),
            );
        }
        ret
    }

    /// Issues one Linux syscall with up to six arguments.
    ///
    /// Returns the raw kernel result: `>= 0` on success, `-errno` on
    /// failure.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the `svc 0` instruction with the aarch64 Linux
        // calling convention (number in x8, args in x0..x5, result in
        // x0). All pointers passed through this wrapper reference
        // live, correctly-sized buffers owned by the caller for the
        // duration of the call, so the kernel never reads or writes
        // out of bounds.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Raw epoll wait at the architecture's ABI. x86_64 has the
    /// 4-argument `epoll_wait`; aarch64 only ships the 6-argument
    /// `epoll_pwait`, whose sigmask and sigsetsize arguments must be
    /// pinned to zero explicitly — a 4-register call would leave x4/x5
    /// holding whatever the compiler last put there, handing the
    /// kernel a garbage signal mask.
    ///
    /// # Safety
    ///
    /// `events` must point to a live array of at least `maxevents`
    /// kernel-layout `epoll_event` slots for the duration of the call.
    unsafe fn sys_epoll_wait(
        epfd: usize,
        events: usize,
        maxevents: usize,
        timeout: usize,
    ) -> isize {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: caller upholds the buffer contract; plain forward.
        unsafe {
            syscall4(nr::EPOLL_WAIT, epfd, events, maxevents, timeout)
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: caller upholds the buffer contract; sigmask is NULL
        // (so the kernel touches no mask and ignores sigsetsize).
        unsafe {
            syscall6(nr::EPOLL_WAIT, epfd, events, maxevents, timeout, 0, 0)
        }
    }

    /// Converts a raw kernel result to `io::Result<usize>`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// A level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes no pointers; flags-only call.
            let epfd = check(unsafe { syscall4(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Poller {
                epfd: epfd as RawFd,
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            let ev = RawEvent {
                events: interest,
                data: token,
            };
            // SAFETY: `ev` is a live, correctly-laid-out epoll_event
            // for the duration of the call; the kernel only reads it
            // (and ignores the pointer entirely for EPOLL_CTL_DEL).
            check(unsafe {
                syscall4(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    &ev as *const RawEvent as usize,
                )
            })
            .map(|_| ())
        }

        /// Registers `fd` with the given interest bits and token.
        pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Re-arms `fd` with new interest bits (same or new token).
        pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (`0` = poll, `-1` = forever) and
        /// appends up to [`MAX_EVENTS`] readiness reports to `out`
        /// (cleared first). An interrupted wait (`EINTR`) reports zero
        /// events instead of an error.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut buf = [RawEvent::default(); MAX_EVENTS];
            // SAFETY: `buf` is a live array of MAX_EVENTS kernel-layout
            // epoll_event slots for the duration of the call, and the
            // maxevents argument passed equals its length, so the
            // kernel writes in bounds only.
            let ret = unsafe {
                sys_epoll_wait(
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    MAX_EVENTS,
                    timeout_ms as usize,
                )
            };
            let n = match check(ret) {
                Ok(n) => n,
                Err(e) if e.raw_os_error() == Some(EINTR) => 0,
                Err(e) => return Err(e),
            };
            for raw in buf.iter().take(n) {
                // Copy out of the (possibly packed) kernel struct
                // before forming references.
                let (events, data) = (raw.events, raw.data);
                out.push(Event {
                    readiness: events,
                    token: data,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing a file descriptor this struct exclusively
            // owns; no pointer arguments.
            let _ = unsafe { syscall4(nr::CLOSE, self.epfd as usize, 0, 0, 0) };
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Portable degraded fallback: every registered descriptor is
    //! reported ready on each wait. Correct (callers use nonblocking
    //! descriptors and handle `WouldBlock`) but busy-polling; only
    //! compiled on targets without the raw-syscall epoll backend.

    use super::{Event, MAX_EVENTS, READABLE, WRITABLE};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// A registry-backed stand-in for an epoll instance.
    #[derive(Debug, Default)]
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, u32)>>,
        /// Round-robin start of the next wait's reporting window, so
        /// registrations beyond [`MAX_EVENTS`] still get reported.
        cursor: AtomicUsize,
    }

    impl Poller {
        /// Creates the (registry-only) poller.
        pub fn new() -> io::Result<Self> {
            Ok(Poller::default())
        }

        /// Registers `fd` with the given interest bits and token.
        pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            let mut reg = self
                .registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            reg.retain(|&(f, _, _)| f != fd);
            reg.push((fd, token, interest));
            Ok(())
        }

        /// Re-arms `fd` with new interest bits.
        pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.add(fd, token, interest)
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        /// Reports every registered descriptor as ready, sleeping
        /// briefly first when asked to block (so callers don't spin a
        /// core while idle).
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            if timeout_ms != 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let reg = self
                .registered
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let len = reg.len();
            if len == 0 {
                return Ok(());
            }
            // Rotate the reporting window across wait() calls: with
            // more than MAX_EVENTS registrations a fixed window would
            // starve the tail of the registry forever.
            let take = len.min(MAX_EVENTS);
            let start = self.cursor.fetch_add(take, Ordering::Relaxed) % len;
            for i in 0..take {
                let (_, token, interest) = reg[(start + i) % len];
                out.push(Event {
                    readiness: interest & (READABLE | WRITABLE),
                    token,
                });
            }
            Ok(())
        }
    }
}

/// A level-triggered readiness poller over nonblocking descriptors.
///
/// Real epoll on Linux x86_64/aarch64; a degraded always-ready
/// fallback elsewhere (see the crate docs).
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` failure, if any (resource limits).
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers a descriptor with an interest set and a token that
    /// [`Poller::wait`] hands back on readiness.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure (bad descriptor, double add).
    pub fn add(&self, fd: std::os::unix::io::RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Replaces a registered descriptor's interest set.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure (descriptor not registered).
    pub fn modify(
        &self,
        fd: std::os::unix::io::RawFd,
        token: u64,
        interest: u32,
    ) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Deregisters a descriptor.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure (descriptor not registered).
    pub fn delete(&self, fd: std::os::unix::io::RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Waits up to `timeout_ms` milliseconds (`0` = nonblocking poll,
    /// `-1` = block until an event) and fills `out` (cleared first)
    /// with up to [`MAX_EVENTS`] readiness reports.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure; `EINTR` is absorbed and reports
    /// zero events.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.inner.wait(out, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn readiness_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, READABLE).unwrap();

        let mut events = Vec::new();
        // Nothing connected yet: a nonblocking wait reports no
        // readiness (fallback backends may over-report; accept either
        // but require the real backend's silence to be WouldBlock-safe).
        poller.wait(&mut events, 0).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        // The pending connection must surface as listener readability.
        let mut accepted = None;
        for _ in 0..500 {
            poller.wait(&mut events, 10).unwrap();
            if events.iter().any(|e| e.token == 1 && e.is_readable()) {
                let (s, _) = listener.accept().unwrap();
                accepted = Some(s);
                break;
            }
        }
        let server = accepted.expect("listener never became readable");
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), 2, READABLE).unwrap();

        client.write_all(b"ping").unwrap();
        let mut got = None;
        for _ in 0..500 {
            poller.wait(&mut events, 10).unwrap();
            if events.iter().any(|e| e.token == 2 && e.is_readable()) {
                let mut buf = [0u8; 8];
                let mut s = &server;
                match s.read(&mut buf) {
                    Ok(n) if n > 0 => {
                        got = Some(buf[..n].to_vec());
                        break;
                    }
                    Ok(_) => break,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
        assert_eq!(got.as_deref(), Some(&b"ping"[..]));

        // Re-arm for writability: a fresh socket's send buffer is
        // empty, so WRITABLE must be reported promptly.
        poller
            .modify(server.as_raw_fd(), 2, READABLE | WRITABLE)
            .unwrap();
        let mut writable = false;
        for _ in 0..500 {
            poller.wait(&mut events, 10).unwrap();
            if events.iter().any(|e| e.token == 2 && e.is_writable()) {
                writable = true;
                break;
            }
        }
        assert!(writable, "socket never reported writable");

        poller.delete(server.as_raw_fd()).unwrap();
        drop(client);
    }
}
