//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion 0.5 API the workspace's
//! benches use — [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain
//! wall-clock harness: fixed warm-up, then `sample_size` samples each
//! running for `measurement_time / sample_size`, reporting the mean and
//! the best sample's per-iteration time. No statistics, plots, or
//! baseline storage.

use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("", &mut f);
        group.finish();
    }
}

/// A set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the total measurement duration.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, &mut f);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; we print nothing).
    pub fn finish(&mut self) {}

    fn run(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up_time,
            },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_sample = self.measurement_time / self.sample_size as u32;
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            b.mode = Mode::Measure { until: per_sample };
            b.total = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                best = best.min(b.total / b.iters as u32);
                total += b.total;
                iters += b.iters;
            }
        }
        if iters == 0 {
            println!("  {name:<40} (no iterations)");
            return;
        }
        let mean = total.as_nanos() as f64 / iters as f64;
        println!(
            "  {name:<40} mean {:>12} best {:>12} ({iters} iters)",
            format_ns(mean),
            format_ns(best.as_nanos() as f64),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { until: Duration },
}

/// Passed to bench closures; call [`Bencher::iter`] with the hot loop body.
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly for the current sample's time slice.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let until = match self.mode {
            Mode::WarmUp { until } | Mode::Measure { until } => until,
        };
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(body());
            self.total += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= until {
                break;
            }
        }
    }
}

/// Benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `BenchmarkId::new("ntt", "SetA")` renders as `ntt/SetA`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

/// Declares a benchmark group entry point callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
