//! Deterministic case runner.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed base seed: cases are derived from this plus the test name and
/// case index, so runs are reproducible without persisted regressions.
const BASE_SEED: u64 = 0x4845_4158_2042_4153; // "HEAX BAS"

/// Runner configuration (only `cases` is meaningful in this stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// Precondition not met (`prop_assume!`): case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Executes a property over `config.cases` deterministic random cases.
pub struct TestRunner {
    name: &'static str,
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(name: &'static str, config: ProptestConfig) -> Self {
        TestRunner { name, config }
    }

    /// Runs the property, panicking on the first failing case with the
    /// case index and derived seed (rerun is deterministic by design).
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let name_tag: u64 = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rejected = 0u32;
        for i in 0..self.config.cases {
            let seed = BASE_SEED ^ name_tag ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{}` failed at case {}/{} (seed {:#x}):\n{}",
                    self.name, i, self.config.cases, seed, msg
                ),
            }
        }
        assert!(
            rejected < self.config.cases,
            "property `{}`: every case was rejected by prop_assume!",
            self.name
        );
    }
}
