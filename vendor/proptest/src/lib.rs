//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, `prop_assert*` / `prop_assume!`, range and
//! tuple strategies, `any::<T>()`, `prop::sample::select`,
//! `prop::collection::vec`, `Strategy::prop_map`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via `Debug`
//!   in `prop_assert_eq!`) and the deterministic case seed, but is not
//!   minimized.
//! * **Fully deterministic** — cases are derived from a fixed seed plus
//!   the case index, so `cargo test` is reproducible in CI by
//!   construction and no `proptest-regressions` files are ever written.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Lengths acceptable to [`vec()`]: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut rand::rngs::StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Strategy constructors that sample from explicit value sets.
pub mod sample {
    use crate::strategy::Select;

    /// `prop::sample::select(values)`: uniform choice from a `Vec`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select: empty choice set");
        Select { values }
    }
}

/// Mirrors upstream's `proptest::prelude::prop` module path.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal: expands each `fn name(arg in strategy, ...) { .. }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new(stringify!($name), $cfg);
            runner.run(|__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($cfg:expr;) => {};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body (reports both values).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
