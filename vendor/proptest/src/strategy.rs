//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, Standard};

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Distribution::sample(&Standard, rng)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32
);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by `prop::sample::select`.
pub struct Select<T: Clone> {
    pub(crate) values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}

/// Strategy returned by `prop::collection::vec`.
pub struct VecStrategy<S, L> {
    pub(crate) element: S,
    pub(crate) size: L,
}

impl<S: Strategy, L: crate::collection::SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_float_ranges!(f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
