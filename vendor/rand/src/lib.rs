//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand` 0.8 API that the
//! workspace actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, and `fill_bytes`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! It is **not** cryptographically secure and is not bit-compatible with
//! upstream `rand`; every consumer in this workspace seeds explicitly and
//! only relies on determinism and reasonable statistical quality.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling helpers layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard distribution: uniform over all values of the type (and
/// over `[0, 1)` for floats).
pub struct Standard;

/// Types samplable from a distribution.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v: u128 = Standard.sample(rng);
                let v = v % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v: u128 = Standard.sample(rng);
                let v = v % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (SplitMix64-seeded).
    ///
    /// Deliberately *not* bit-compatible with upstream `rand::rngs::StdRng`
    /// (which is ChaCha12); all users of this workspace seed explicitly and
    /// depend only on in-tree determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_across_instances() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..1000 {
                let v: i8 = rng.gen_range(-1i8..=1);
                assert!((-1..=1).contains(&v));
                let f: f64 = rng.gen_range(-1.0..1.0);
                assert!((-1.0..1.0).contains(&f));
                let u: u64 = rng.gen_range(10u64..20);
                assert!((10..20).contains(&u));
            }
        }

        #[test]
        fn fill_bytes_covers_partial_words() {
            let mut rng = StdRng::seed_from_u64(3);
            let mut buf = [0u8; 13];
            rng.fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        }
    }
}
