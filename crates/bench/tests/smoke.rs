//! Workspace smoke test: every `heax-bench` table/figure binary must run
//! to completion (exit 0) and print something, under a fast measurement
//! budget so the whole suite stays test-friendly.
//!
//! Each binary runs twice — once with `HEAX_THREADS=1` (sequential
//! backend) and once with `HEAX_THREADS=4` (thread-pool backend) — so a
//! racy parallel backend can never land green.
//!
//! Cargo builds each `[[bin]]` target for integration tests of this
//! package and exposes its path as `CARGO_BIN_EXE_<name>`, so this runs
//! the real binaries, not in-process approximations.

use std::process::Command;

/// Milliseconds of CPU-measurement budget handed to the binaries that
/// accept one (`table7`, `table8`, `ablation_ntt`, `bench_parallel`,
/// `repro`); the rest are pure model evaluations and ignore the argument.
const FAST_BUDGET_MS: &str = "25";

/// Backend lane counts every binary is exercised under.
const THREAD_CONFIGS: [&str; 2] = ["1", "4"];

fn run_binary(name: &str, path: &str) {
    for threads in THREAD_CONFIGS {
        let out = Command::new(path)
            .arg(FAST_BUDGET_MS)
            .env("HEAX_THREADS", threads)
            // Keep the heavy sweep binaries (bench_keyswitch) on their
            // reduced CI-smoke problem sizes.
            .env("HEAX_BENCH_QUICK", "1")
            // Keep perf snapshots (bench_parallel / bench_keyswitch) out
            // of the source tree; one file per binary and thread count so
            // concurrently running smoke tests never race on a path.
            .env(
                "HEAX_BENCH_JSON",
                format!(
                    "{}/BENCH_parallel_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .env(
                "HEAX_BENCH_KS_JSON",
                format!(
                    "{}/BENCH_keyswitch_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .env(
                "HEAX_BENCH_SERVER_JSON",
                format!(
                    "{}/BENCH_server_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .env(
                "HEAX_BENCH_PIPELINE_JSON",
                format!(
                    "{}/BENCH_pipeline_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .env(
                "HEAX_BENCH_CLUSTER_JSON",
                format!(
                    "{}/BENCH_cluster_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .env(
                "HEAX_BENCH_FAULTS_JSON",
                format!(
                    "{}/BENCH_faults_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .env(
                "HEAX_BENCH_SOCKETS_JSON",
                format!(
                    "{}/BENCH_sockets_smoke_{threads}.json",
                    env!("CARGO_TARGET_TMPDIR")
                ),
            )
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name} ({path}): {e}"));
        assert!(
            out.status.success(),
            "{name} (HEAX_THREADS={threads}) exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "{name} (HEAX_THREADS={threads}) succeeded but printed nothing on stdout"
        );
    }
}

macro_rules! smoke {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            run_binary(
                stringify!($name),
                env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
            );
        }
    )+};
}

smoke!(
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    figure2,
    figure4,
    figure6,
    ablation_modules,
    ablation_ntt,
    ablation_wordsize,
    bench_parallel,
    bench_keyswitch,
    bench_server,
    bench_pipeline,
    bench_cluster,
    bench_faults,
    bench_sockets,
    extension_scaling,
    noise_growth,
);

/// `repro` drives every sibling binary in sequence; keep it separate so a
/// failure points here rather than at an individual table test.
#[test]
fn repro_runs_all_tables_and_figures() {
    run_binary("repro", env!("CARGO_BIN_EXE_repro"));
}
