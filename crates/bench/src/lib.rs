//! # heax-bench
//!
//! Harness regenerating every table and figure of the HEAX paper's
//! evaluation (Section 6). Each `table*`/`figure*` binary prints the
//! paper's artifact next to this reproduction's model/measurement:
//!
//! ```text
//! cargo run -p heax-bench --release --bin table5
//! cargo run -p heax-bench --release --bin table7
//! cargo bench -p heax-bench --bench cpu_highlevel   # CPU-side of Tables 7/8
//! ```
//!
//! The library part holds shared table formatting and the CPU-side
//! measurement loop reused by both the binaries and the Criterion benches.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Renders an ASCII table with a title.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = format!("\n== {title} ==\n");
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats an ops/second figure compactly.
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats a ratio as `N.N×`.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Measures the steady-state rate of `f` in operations/second: warms up,
/// then runs batches until `budget_ms` elapses.
pub fn measure_ops_per_sec<F: FnMut()>(mut f: F, budget_ms: u64) -> f64 {
    // Warm-up.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        f();
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Relative delta of `got` against `reference`, as a signed percent string.
pub fn fmt_delta(got: f64, reference: f64) -> String {
    format!("{:+.1}%", 100.0 * (got - reference) / reference)
}

/// Shared CPU-baseline workloads for the Table 7/8 binaries and the
/// Criterion benches.
pub mod workloads {
    use heax_ckks::{
        Ciphertext, CkksContext, CkksEncoder, CkksParams, Encryptor, ParamSet, PublicKey, RelinKey,
        SecretKey,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Everything needed to measure the CPU baseline for one set.
    pub struct SetWorkload {
        /// Context for the set.
        pub ctx: CkksContext,
        /// Secret key.
        pub sk: SecretKey,
        /// Relinearization key.
        pub rlk: RelinKey,
        /// Two fresh sample ciphertexts at top level.
        pub ct_a: Ciphertext,
        /// Second operand.
        pub ct_b: Ciphertext,
        /// An un-relinearized product (3 components).
        pub ct_prod: Ciphertext,
        /// A sample single-residue polynomial (coefficient form).
        pub residue: Vec<u64>,
        /// The same residue in NTT form.
        pub residue_ntt: Vec<u64>,
    }

    /// Builds keys, ciphertexts, and sample polynomials for `set`.
    ///
    /// # Panics
    ///
    /// Panics on internal errors (cannot happen for the built-in sets).
    pub fn prepare(set: ParamSet) -> SetWorkload {
        let ctx = CkksContext::new(CkksParams::from_set(set).expect("params")).expect("ctx");
        let mut rng = StdRng::seed_from_u64(0x4845_4158); // "HEAX"
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let scale = ctx.params().scale();
        let vals_a: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 + 1.0).collect();
        let vals_b: Vec<f64> = (0..8).map(|i| 2.0 - i as f64 * 0.25).collect();
        let pt_a = enc
            .encode_real(&vals_a, scale, ctx.max_level())
            .expect("encode");
        let pt_b = enc
            .encode_real(&vals_b, scale, ctx.max_level())
            .expect("encode");
        let encryptor = Encryptor::new(&ctx, &pk);
        let ct_a = encryptor.encrypt(&pt_a, &mut rng).expect("encrypt");
        let ct_b = encryptor.encrypt(&pt_b, &mut rng).expect("encrypt");
        let ct_prod = heax_ckks::Evaluator::new(&ctx)
            .multiply(&ct_a, &ct_b)
            .expect("multiply");

        let p0 = ctx.moduli()[0].value();
        let residue: Vec<u64> = (0..ctx.n() as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p0)
            .collect();
        let mut residue_ntt = residue.clone();
        ctx.ntt_table(0).forward(&mut residue_ntt);
        SetWorkload {
            ctx,
            sk,
            rlk,
            ct_a,
            ct_b,
            ct_prod,
            residue,
            residue_ntt,
        }
    }
}

/// Workloads and measurement helpers for the parallel execution backend
/// (`heax_math::exec`): sequential vs thread-pool NTT round-trips and key
/// switching, shared by the `parallel_backend` Criterion bench and the
/// `bench_parallel` snapshot binary.
pub mod parallel {
    use std::sync::Arc;

    use heax_ckks::{Evaluator, ParamSet};
    use heax_math::exec::{self, Executor};
    use heax_math::poly::{Representation, RnsPoly};

    use crate::workloads::{self, SetWorkload};

    /// Ring degrees the backend is benchmarked at (the paper's Set-A/B/C).
    pub const SIZES: [usize; 3] = [4096, 8192, 16384];

    /// Lane counts compared against [`exec::Sequential`].
    pub const THREADS: [usize; 3] = [2, 4, 8];

    /// The paper parameter set with ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 4096, 8192, or 16384.
    pub fn set_for_n(n: usize) -> ParamSet {
        match n {
            4096 => ParamSet::SetA,
            8192 => ParamSet::SetB,
            16384 => ParamSet::SetC,
            other => panic!("no paper parameter set with n = {other}"),
        }
    }

    /// A prepared parameter set plus a full-width coefficient-form
    /// polynomial for NTT round-trips.
    pub struct ParallelWorkload {
        /// Keys, ciphertexts, and context for the set.
        pub w: SetWorkload,
        /// All-limb polynomial in coefficient form (top level).
        pub poly: RnsPoly,
    }

    /// Builds the workload for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a paper ring degree.
    pub fn prepare(n: usize) -> ParallelWorkload {
        let w = workloads::prepare(set_for_n(n));
        let moduli = w.ctx.level_moduli(w.ctx.max_level()).to_vec();
        let mut poly = RnsPoly::zero(n, &moduli, Representation::Coefficient);
        for (i, m) in moduli.iter().enumerate() {
            for (j, c) in poly.residue_mut(i).iter_mut().enumerate() {
                *c = (j as u64).wrapping_mul(0x9e3779b97f4a7c15 + i as u64) % m.value();
            }
        }
        ParallelWorkload { w, poly }
    }

    /// One benchmark operation: forward + inverse NTT of every limb
    /// through `exec` (returns the polynomial to its original state, so
    /// it can be iterated in place).
    ///
    /// # Panics
    ///
    /// Panics on representation errors (cannot happen from [`prepare`]).
    pub fn ntt_roundtrip(wl: &mut ParallelWorkload, exec: &dyn Executor) {
        let tables = wl.w.ctx.ntt_tables();
        wl.poly.ntt_forward_with(tables, exec).expect("forward");
        wl.poly.ntt_inverse_with(tables, exec).expect("inverse");
    }

    /// One benchmark operation: the full key-switch inner primitive on
    /// the workload's 3-component product, through an evaluator pinned to
    /// `exec`.
    ///
    /// # Panics
    ///
    /// Panics on evaluation errors (cannot happen from [`prepare`]).
    pub fn key_switch_once(wl: &ParallelWorkload, eval: &Evaluator<'_>) {
        let _ = eval
            .key_switch(
                wl.w.ct_prod.component(2),
                wl.w.rlk.ksk(),
                wl.w.ct_prod.level(),
            )
            .expect("key_switch");
    }

    /// Measures ops/second of the NTT round-trip and key switch for one
    /// executor, using the shared wall-clock loop.
    pub fn measure_one(
        wl: &mut ParallelWorkload,
        exec: &Arc<dyn Executor>,
        budget_ms: u64,
    ) -> (f64, f64) {
        let ntt = crate::measure_ops_per_sec(|| ntt_roundtrip(wl, exec.as_ref()), budget_ms);
        let eval = Evaluator::with_executor(&wl.w.ctx, exec.clone());
        let ks = crate::measure_ops_per_sec(|| key_switch_once(wl, &eval), budget_ms);
        (ntt, ks)
    }

    /// Runs the full sequential-vs-parallel sweep, returning one record
    /// per `(op, n, threads)` point with speedups relative to the
    /// sequential backend at the same `n`.
    pub fn measure_suite(budget_ms: u64) -> Vec<crate::bench_json::BenchRecord> {
        use crate::bench_json::BenchRecord;
        let mut records = Vec::new();
        for n in SIZES {
            eprintln!("preparing n = {n} ...");
            let mut wl = prepare(n);
            let seq: Arc<dyn Executor> = Arc::new(exec::Sequential);
            let (ntt_seq, ks_seq) = measure_one(&mut wl, &seq, budget_ms);
            records.push(BenchRecord::new("ntt_roundtrip", n, 1, ntt_seq, 1.0));
            records.push(BenchRecord::new("key_switch", n, 1, ks_seq, 1.0));
            for k in THREADS {
                let pool = exec::with_threads(k);
                let (ntt_k, ks_k) = measure_one(&mut wl, &pool, budget_ms);
                records.push(BenchRecord::new(
                    "ntt_roundtrip",
                    n,
                    k,
                    ntt_k,
                    ntt_k / ntt_seq,
                ));
                records.push(BenchRecord::new("key_switch", n, k, ks_k, ks_k / ks_seq));
            }
        }
        records
    }
}

/// Workloads and measurement helpers for the key-switch hot path (PR 3):
/// Shoup-path vs seed-Barrett key switching, single rotation, and the
/// hoisted [`heax_ckks::Evaluator::rotate_many`] batch, shared by the
/// `bench_keyswitch` snapshot binary.
pub mod keyswitch {
    use heax_ckks::{Evaluator, GaloisKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::bench_json::KsRecord;
    use crate::parallel::{set_for_n, SIZES};
    use crate::workloads::{self, SetWorkload};

    /// Rotation steps in the hoisted batch (the acceptance criterion
    /// compares `rotate_many(8)` against 8 sequential rotations).
    pub const ROTATE_STEPS: usize = 8;

    /// Ring degrees measured: all paper sets, or just Set-A when
    /// `HEAX_BENCH_QUICK` is set (CI smoke budget).
    pub fn sizes() -> Vec<usize> {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            vec![SIZES[0]]
        } else {
            SIZES.to_vec()
        }
    }

    /// Keys, ciphertexts, and rotation keys for one ring degree.
    pub struct KsWorkload {
        /// Context, secret/relin keys, sample ciphertexts.
        pub w: SetWorkload,
        /// Galois keys for steps `1..=ROTATE_STEPS`.
        pub gks: GaloisKeys,
        /// The step list handed to `rotate_many`.
        pub steps: Vec<i64>,
    }

    /// Builds the workload for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a paper ring degree.
    pub fn prepare(n: usize) -> KsWorkload {
        let w = workloads::prepare(set_for_n(n));
        let steps: Vec<i64> = (1..=ROTATE_STEPS as i64).collect();
        let mut rng = StdRng::seed_from_u64(0x524F54); // "ROT"
        let gks = GaloisKeys::generate(&w.ctx, &w.sk, &steps, &mut rng);
        KsWorkload { w, gks, steps }
    }

    /// Measures the full suite for every size, returning records whose
    /// `speedup_vs_baseline` compares: Shoup key switch vs the seed
    /// Barrett path, and hoisted per-rotation throughput vs sequential
    /// `rotate`.
    pub fn measure_suite(budget_ms: u64) -> Vec<KsRecord> {
        let threads = heax_math::exec::env_threads();
        let mut records = Vec::new();
        for n in sizes() {
            eprintln!("preparing n = {n} ...");
            let wl = prepare(n);
            let eval = Evaluator::new(&wl.w.ctx);
            let target = wl.w.ct_prod.component(2);
            let level = wl.w.ct_prod.level();

            let barrett = crate::measure_ops_per_sec(
                || {
                    let _ = eval
                        .key_switch_reference(target, wl.w.rlk.ksk(), level)
                        .expect("reference key switch");
                },
                budget_ms,
            );
            records.push(KsRecord::new(
                "key_switch_barrett",
                n,
                threads,
                barrett,
                1.0,
            ));

            let shoup = crate::measure_ops_per_sec(
                || {
                    let _ = eval
                        .key_switch(target, wl.w.rlk.ksk(), level)
                        .expect("key switch");
                },
                budget_ms,
            );
            records.push(KsRecord::new(
                "key_switch_shoup",
                n,
                threads,
                shoup,
                shoup / barrett,
            ));

            let rotate = crate::measure_ops_per_sec(
                || {
                    let _ = eval.rotate(&wl.w.ct_a, 1, &wl.gks).expect("rotate");
                },
                budget_ms,
            );
            records.push(KsRecord::new("rotate", n, threads, rotate, 1.0));

            let batches = crate::measure_ops_per_sec(
                || {
                    let _ = eval
                        .rotate_many(&wl.w.ct_a, &wl.steps, &wl.gks)
                        .expect("rotate_many");
                },
                budget_ms,
            );
            let per_rotation = batches * wl.steps.len() as f64;
            records.push(KsRecord::new(
                &format!("rotate_many{}_per_rotation", wl.steps.len()),
                n,
                threads,
                per_rotation,
                per_rotation / rotate,
            ));
        }
        records
    }
}

/// Workloads and measurement helpers for the `heax-server` subsystem
/// (`bench_server`): an 8-client rotation-heavy workload served by the
/// batch-scheduled multi-session server versus the seed's
/// one-request-at-a-time loop (keys deserialized per work unit, no
/// hoisting). Results are verified decrypt-identical before timing.
pub mod server {
    use heax_ckks::serialize::{
        deserialize_ciphertext, deserialize_galois_keys, serialize_ciphertext,
        serialize_galois_keys,
    };
    use heax_ckks::{
        Ciphertext, CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator,
        GaloisKeys, PublicKey, SecretKey,
    };
    use heax_hw::board::Board;
    use heax_server::wire::client::{self, Reply};
    use heax_server::HeaxServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::bench_json::SrvRecord;
    use crate::parallel::set_for_n;

    /// Concurrent client sessions in the workload (the acceptance
    /// criterion's 8-client scenario).
    pub const CLIENTS: usize = 8;
    /// Rotations each client requests of its own ciphertext per pass.
    pub const ROTATIONS_PER_CLIENT: usize = 8;

    /// Ring degrees measured: Set-A and Set-B, or Set-A only under
    /// `HEAX_BENCH_QUICK` (CI smoke budget).
    pub fn sizes() -> Vec<usize> {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            vec![4096]
        } else {
            vec![4096, 8192]
        }
    }

    /// One simulated client: its keys and sample ciphertext, plus the
    /// serialized forms that cross the wire.
    pub struct ClientRig {
        /// Secret key (for result verification only).
        pub sk: SecretKey,
        /// Serialized rotation keys, as shipped to the server.
        pub gks_bytes: Vec<u8>,
        /// Serialized sample ciphertext.
        pub ct_bytes: Vec<u8>,
    }

    /// The prepared multi-client workload for one ring degree.
    pub struct ServerWorkload {
        /// Shared context (client and server agree on parameters).
        pub ctx: CkksContext,
        /// The simulated clients.
        pub clients: Vec<ClientRig>,
        /// Rotation steps each client requests.
        pub steps: Vec<i64>,
    }

    impl ServerWorkload {
        /// Requests per pass (`CLIENTS × ROTATIONS_PER_CLIENT`).
        pub fn requests_per_pass(&self) -> usize {
            self.clients.len() * self.steps.len()
        }
    }

    /// Builds the workload for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a paper ring degree.
    pub fn prepare(n: usize) -> ServerWorkload {
        let ctx =
            CkksContext::new(CkksParams::from_set(set_for_n(n)).expect("params")).expect("ctx");
        let steps: Vec<i64> = (1..=ROTATIONS_PER_CLIENT as i64).collect();
        let enc = CkksEncoder::new(&ctx);
        let scale = ctx.params().scale();
        let clients = (0..CLIENTS)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(0x5345_5256 + i as u64); // "SERV"
                let sk = SecretKey::generate(&ctx, &mut rng);
                let pk = PublicKey::generate(&ctx, &sk, &mut rng);
                let gks = GaloisKeys::generate(&ctx, &sk, &steps, &mut rng);
                let vals: Vec<f64> = (0..16).map(|j| j as f64 * 0.5 - 3.0 + i as f64).collect();
                let ct = Encryptor::new(&ctx, &pk)
                    .encrypt(
                        &enc.encode_real(&vals, scale, ctx.max_level())
                            .expect("encode"),
                        &mut rng,
                    )
                    .expect("encrypt");
                ClientRig {
                    sk,
                    gks_bytes: serialize_galois_keys(&gks),
                    ct_bytes: serialize_ciphertext(&ct),
                }
            })
            .collect();
        ServerWorkload {
            ctx,
            clients,
            steps,
        }
    }

    /// The baseline pass: one request at a time, no session registry —
    /// each client's evaluation keys are deserialized (Shoup tables
    /// rebuilt) for its work unit, and every rotation is a full
    /// deserialize → rotate → serialize round trip, exactly the shape of
    /// the seed's `batched_server` example. Returns the serialized
    /// results in request order.
    pub fn sequential_pass(w: &ServerWorkload, eval: &Evaluator<'_>) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(w.requests_per_pass());
        for c in &w.clients {
            let gks = deserialize_galois_keys(&c.gks_bytes, &w.ctx).expect("keys");
            for &step in &w.steps {
                let ct = deserialize_ciphertext(&c.ct_bytes, &w.ctx).expect("ct");
                let rotated = eval.rotate(&ct, step, &gks).expect("rotate");
                out.push(serialize_ciphertext(&rotated));
            }
        }
        out
    }

    /// Builds a server with one registered session per client
    /// (key deserialization paid once, not per pass).
    pub fn build_server<'w>(w: &'w ServerWorkload) -> (HeaxServer<'w>, Vec<u64>) {
        let mut server = HeaxServer::new(&w.ctx, Board::stratix10()).expect("paper set");
        let sessions = w
            .clients
            .iter()
            .map(|c| {
                let reply = server
                    .handle_frame(&client::open_session())
                    .expect("session reply");
                let (session, _, _) = client::parse_reply(&reply).expect("parse");
                server
                    .handle_frame(&client::register_galois_keys(session, &c.gks_bytes))
                    .expect("registered");
                session
            })
            .collect();
        (server, sessions)
    }

    /// The batched pass: every client's rotation requests are submitted
    /// as frames and executed in one flush (per-ciphertext hoisted
    /// groups, cached keys). Returns the response frames in request
    /// order.
    pub fn batched_pass(
        server: &mut HeaxServer<'_>,
        sessions: &[u64],
        w: &ServerWorkload,
    ) -> Vec<Vec<u8>> {
        let mut request_id = 0u64;
        for (session, c) in sessions.iter().zip(&w.clients) {
            for &step in &w.steps {
                request_id += 1;
                let frame = client::rotate(*session, request_id, &c.ct_bytes, step);
                assert!(server.handle_frame(&frame).is_none(), "must queue");
            }
        }
        server.flush()
    }

    /// Decrypts both paths' results and asserts slot-wise agreement
    /// (hoisted rotation is decrypt-equal, not bit-equal).
    ///
    /// # Panics
    ///
    /// Panics on any disagreement beyond CKKS noise tolerance.
    pub fn verify_equivalent(w: &ServerWorkload, seq: &[Vec<u8>], batched: &[Vec<u8>]) {
        assert_eq!(seq.len(), batched.len());
        let enc = CkksEncoder::new(&w.ctx);
        let decrypt = |sk: &SecretKey, ct: &Ciphertext| -> Vec<f64> {
            enc.decode_real(&Decryptor::new(&w.ctx, sk).decrypt(ct).expect("decrypt"))
                .expect("decode")
        };
        for (i, (s, b)) in seq.iter().zip(batched).enumerate() {
            let c = &w.clients[i / w.steps.len()];
            let seq_ct = deserialize_ciphertext(s, &w.ctx).expect("seq ct");
            let (_, _, reply) = client::parse_reply(b).expect("reply frame");
            let Reply::Ciphertext(bytes) = reply else {
                panic!("request {i}: expected ciphertext reply, got {reply:?}");
            };
            let bat_ct = deserialize_ciphertext(&bytes, &w.ctx).expect("batched ct");
            let want = decrypt(&c.sk, &seq_ct);
            let got = decrypt(&c.sk, &bat_ct);
            for (slot, (g, ww)) in got.iter().zip(&want).enumerate().take(16) {
                assert!(
                    (g - ww).abs() < 2e-2,
                    "request {i} slot {slot}: batched {g} vs sequential {ww}"
                );
            }
        }
    }

    /// Measures the suite: for each ring degree, verifies batch ≡
    /// sequential, then times both paths and reports requests/second
    /// with the batched speedup. The returned occupancy is the server's
    /// measured batch occupancy.
    pub fn measure_suite(budget_ms: u64) -> (Vec<SrvRecord>, f64) {
        let threads = heax_math::exec::env_threads();
        let mut records = Vec::new();
        let mut occupancy = 0.0;
        for n in sizes() {
            eprintln!("preparing n = {n} ({CLIENTS} clients) ...");
            let w = prepare(n);
            let eval = Evaluator::new(&w.ctx);
            let (mut server, sessions) = build_server(&w);
            let requests = w.requests_per_pass() as f64;

            // Correctness first: the batch scheduler must be
            // decrypt-identical to the one-at-a-time loop.
            let seq = sequential_pass(&w, &eval);
            let batched = batched_pass(&mut server, &sessions, &w);
            verify_equivalent(&w, &seq, &batched);

            let seq_passes =
                crate::measure_ops_per_sec(|| drop(sequential_pass(&w, &eval)), budget_ms);
            records.push(SrvRecord::new(
                "sequential_loop",
                n,
                CLIENTS,
                threads,
                seq_passes * requests,
                1.0,
            ));
            let bat_passes = crate::measure_ops_per_sec(
                || drop(batched_pass(&mut server, &sessions, &w)),
                budget_ms,
            );
            records.push(SrvRecord::new(
                "batched_server",
                n,
                CLIENTS,
                threads,
                bat_passes * requests,
                bat_passes / seq_passes,
            ));
            occupancy = server.stats().batch_occupancy();
        }
        (records, occupancy)
    }
}

/// Workloads and helpers for the board-level pipeline scheduler
/// (`bench_pipeline`): the 8-client × 8-rotation server workload
/// modeled on 1/2/4 HEAX cores at every paper design point (wire
/// return and DRAM-parked variants), plus a functional leg that serves
/// the same workload through a modeled-backend [`heax_server::HeaxServer`]
/// and verifies it decrypt-identical to the one-request-at-a-time loop
/// before reporting any model figure.
pub mod pipeline {
    use heax_ckks::{Evaluator, ParamSet};
    use heax_core::arch::DesignPoint;
    use heax_core::perf::estimate_stream;
    use heax_hw::board::Board;
    use heax_hw::scheduler::BoardOp;
    use heax_server::ModeledBoardStats;

    use crate::bench_json::PipeRecord;
    use crate::server as srv;

    /// Modeled HEAX core counts swept by the suite.
    pub const CORES: [usize; 3] = [1, 2, 4];

    /// Transfer/return modes swept by the suite:
    /// * `"wire"` — v1 serving: full ciphertexts up, full ciphertexts
    ///   back over PCIe;
    /// * `"dram"` — results parked in board DRAM (`park_as`), no PCIe
    ///   return leg;
    /// * `"wire-v2"` — the v2 wire path: seeded uploads (a 32-byte
    ///   seed replaces the uniform polynomial, halving host→board) and
    ///   compressed replies (one RNS limb of `k` ships back).
    pub const MODES: [&str; 3] = ["wire", "dram", "wire-v2"];

    /// Ring degree of the decrypt-verified functional leg.
    pub const FUNCTIONAL_N: usize = 4096;

    /// The 8-client × 8-rotation server workload as a board op stream:
    /// one hoisted rotation group per client, shaped per [`MODES`]
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics on a mode label outside [`MODES`].
    pub fn workload(mode: &str) -> Vec<BoardOp> {
        let group = BoardOp::rotate_many(srv::ROTATIONS_PER_CLIENT);
        let group = match mode {
            "wire" => group,
            "dram" => group.with_parked_output(),
            "wire-v2" => group.with_seeded_input().with_reply_limbs(1),
            other => panic!("unknown pipeline mode {other:?}"),
        };
        vec![group; srv::CLIENTS]
    }

    /// Functional leg: serves the 8-client workload
    /// (n = [`FUNCTIONAL_N`]) through a `HeaxServer` with the board
    /// model attached at `cores` modeled cores, asserts the batched
    /// results decrypt-identical to the sequential loop, and returns
    /// the server's accumulated model stats.
    ///
    /// # Panics
    ///
    /// Panics if the batched results disagree with the sequential loop
    /// or the model observed a different request count.
    pub fn functional_pass(cores: usize) -> ModeledBoardStats {
        let w = srv::prepare(FUNCTIONAL_N);
        let eval = Evaluator::new(&w.ctx);
        let (server, sessions) = srv::build_server(&w);
        let mut server = server.with_board_model(cores).expect("board model");
        let seq = srv::sequential_pass(&w, &eval);
        let batched = srv::batched_pass(&mut server, &sessions, &w);
        srv::verify_equivalent(&w, &seq, &batched);
        let modeled = server.stats().modeled.expect("model enabled");
        assert_eq!(
            modeled.modeled_requests,
            w.requests_per_pass() as u64,
            "the board model must observe every served request"
        );
        modeled
    }

    /// The deterministic model sweep: every paper design point × core
    /// count × return mode, with speedups relative to the 1-core model
    /// of the same (set, mode).
    ///
    /// # Panics
    ///
    /// Panics on scheduler configuration errors (cannot happen for the
    /// paper design points).
    pub fn model_suite() -> Vec<PipeRecord> {
        let mut records = Vec::new();
        for set in ParamSet::ALL {
            let dp = DesignPoint::derive(Board::stratix10(), set).expect("paper row");
            for mode in MODES {
                let ops = workload(mode);
                let base = estimate_stream(&dp, &ops, 1)
                    .expect("schedule")
                    .requests_per_sec();
                for cores in CORES {
                    let r = estimate_stream(&dp, &ops, cores).expect("schedule");
                    records.push(PipeRecord {
                        set: set.to_string(),
                        n: set.n(),
                        cores,
                        mode: mode.to_string(),
                        parked: mode == "dram",
                        requests_per_sec: r.requests_per_sec(),
                        speedup_vs_1core: r.requests_per_sec() / base,
                        bound: r.bound().to_string(),
                        core_utilization: r.core_utilization(),
                        fifo_high_water: r.fifo_high_water,
                    });
                }
            }
        }
        records
    }

    /// The acceptance figure: modeled 4-core over 1-core speedup on the
    /// wire-return workload at the paper's DRAM-streamed flagship set
    /// (Set-C).
    pub fn acceptance_speedup(records: &[PipeRecord]) -> f64 {
        records
            .iter()
            .find(|r| r.n == 16384 && r.cores == 4 && r.mode == "wire")
            .map(|r| r.speedup_vs_1core)
            .unwrap_or(0.0)
    }

    /// The v2 acceptance figure: how many `(set, cores)` points the v2
    /// wire path rescued from the PCIe return bottleneck. A point
    /// counts when its v1 `wire` row was `pcie-out`-bound and the
    /// `wire-v2` twin either became compute-bound or, where the v1
    /// speedup had collapsed to ≤ 1.12×, recovered at least 1.5× the
    /// v1 figure.
    pub fn v2_flip_count(records: &[PipeRecord]) -> usize {
        records
            .iter()
            .filter(|v1| v1.mode == "wire" && v1.bound == "pcie-out")
            .filter(|v1| {
                records
                    .iter()
                    .find(|v2| v2.mode == "wire-v2" && v2.n == v1.n && v2.cores == v1.cores)
                    .is_some_and(|v2| {
                        v2.bound == "compute"
                            || (v1.speedup_vs_1core <= 1.12
                                && v2.speedup_vs_1core >= 1.5 * v1.speedup_vs_1core)
                    })
            })
            .count()
    }
}

/// Workloads and helpers for the fleet-scale multi-board cluster model
/// (`bench_cluster`): a many-session rotation-serving stream routed
/// across 1/2/4 modeled HEAX boards under session→board key affinity
/// versus random spraying. The sweep runs at Set-B, where one
/// key-switching key (≈ 2.6 MB) is five ciphertexts' worth of PCIe
/// traffic, so every routing miss — a ksk replication — is the
/// dominant cost the router exists to avoid.
pub mod cluster {
    use heax_ckks::ParamSet;
    use heax_core::arch::DesignPoint;
    use heax_core::perf::estimate_cluster;
    use heax_hw::board::Board;
    use heax_hw::cluster::RoutingPolicy;
    use heax_hw::ir::OpKind;
    use heax_hw::scheduler::BoardOp;

    use crate::bench_json::ClusterRecord;

    /// Parameter set of the sweep (ksk ≈ 5× a ciphertext over PCIe).
    pub const SET: ParamSet = ParamSet::SetB;
    /// Wire-return rotations each session submits across the stream —
    /// enough repeat traffic that key residency, not cold misses,
    /// decides throughput.
    pub const ROUNDS: usize = 4;
    /// Board counts swept.
    pub const BOARDS: [usize; 3] = [1, 2, 4];
    /// Cores-per-board counts swept.
    pub const CORES: [usize; 2] = [1, 4];
    /// Seed of the random-routing control.
    pub const RANDOM_SEED: u64 = 0x464C_4545; // "FLEE"

    /// Session counts swept: fleet scale, or a small count under
    /// `HEAX_BENCH_QUICK` (CI smoke budget).
    pub fn session_counts() -> Vec<usize> {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            vec![200]
        } else {
            vec![1_000, 10_000]
        }
    }

    /// The fleet workload: `sessions` sessions each submitting
    /// [`ROUNDS`] wire-return rotations, round-robin interleaved across
    /// sessions — the arrival order a front-end router actually sees.
    /// No op touches parked state, so the policies differ purely in
    /// where keys end up resident.
    pub fn workload(sessions: usize) -> Vec<BoardOp> {
        let mut ops = Vec::with_capacity(sessions * ROUNDS);
        for _ in 0..ROUNDS {
            for s in 0..sessions {
                ops.push(BoardOp::new(OpKind::Rotate).with_session(s as u64 + 1));
            }
        }
        ops
    }

    /// The deterministic routing sweep: sessions × boards × cores, each
    /// point routed under both policies, with affinity's speedup taken
    /// against random routing at the same point.
    ///
    /// # Panics
    ///
    /// Panics on scheduler configuration errors (cannot happen for the
    /// paper design point and the fixed sweep shapes).
    pub fn measure_suite() -> Vec<ClusterRecord> {
        let dp = DesignPoint::derive(Board::stratix10(), SET).expect("paper row");
        let mut records = Vec::new();
        for sessions in session_counts() {
            eprintln!("routing {sessions} sessions x {ROUNDS} rotations ...");
            let ops = workload(sessions);
            for boards in BOARDS {
                for cores in CORES {
                    let random = estimate_cluster(
                        &dp,
                        &ops,
                        boards,
                        cores,
                        RoutingPolicy::Random { seed: RANDOM_SEED },
                    )
                    .expect("schedule");
                    let affinity = estimate_cluster(
                        &dp,
                        &ops,
                        boards,
                        cores,
                        RoutingPolicy::Affinity { steal: true },
                    )
                    .expect("schedule");
                    let base = random.requests_per_sec();
                    for report in [&random, &affinity] {
                        records.push(ClusterRecord {
                            policy: report.policy.to_string(),
                            sessions,
                            boards,
                            cores,
                            requests_per_sec: report.requests_per_sec(),
                            speedup_vs_random: report.requests_per_sec() / base,
                            routing_hits: report.routing_hits,
                            routing_misses: report.routing_misses,
                            steals: report.steals,
                            replication_bytes: report.replication_bytes,
                            mean_utilization: report.mean_utilization(),
                        });
                    }
                }
            }
        }
        records
    }

    /// The acceptance figure: affinity over random requests/sec at the
    /// largest swept session count on the 4-board, 4-core point.
    pub fn acceptance_speedup(records: &[ClusterRecord]) -> f64 {
        let fleet = records.iter().map(|r| r.sessions).max().unwrap_or(0);
        records
            .iter()
            .find(|r| {
                r.sessions == fleet && r.boards == 4 && r.cores == 4 && r.policy == "affinity"
            })
            .map(|r| r.speedup_vs_random)
            .unwrap_or(0.0)
    }
}

/// Workloads and helpers for the fault-injection sweep (`bench_faults`):
/// the fleet rotation-serving stream of [`cluster`] routed across
/// modeled boards while a seeded [`heax_hw::faults::FaultPlan`] crashes
/// boards, slows them down, stalls links, degrades DMA channels and
/// corrupts resident keys — measuring how much throughput graceful
/// degradation retains versus the healthy baseline. The headline
/// scenario loses 1 of 4 boards mid-run; a functional leg serves the
/// 8-client workload through a fault-planned cluster-modeled
/// [`heax_server::HeaxServer`] and verifies it decrypt-identical before
/// any figure is reported.
pub mod faults {
    use heax_ckks::Evaluator;
    use heax_core::arch::DesignPoint;
    use heax_core::perf::{estimate_cluster, estimate_cluster_faulted};
    use heax_hw::board::Board;
    use heax_hw::cluster::RoutingPolicy;
    use heax_hw::faults::{FaultKind, FaultPlan, FaultRates};
    use heax_hw::scheduler::BoardOp;
    use heax_server::ModeledClusterStats;

    use crate::bench_json::FaultRecord;
    use crate::cluster;
    use crate::server as srv;

    /// Modeled HEAX cores per board in the sweep.
    pub const CORES: usize = 4;
    /// Board counts swept (graceful degradation needs a survivor, so
    /// the sweep starts at 2).
    pub const BOARDS: [usize; 2] = [2, 4];
    /// Seeded fault-rate levels swept per board count: each level is
    /// the per-board draw probability for the degradation fault
    /// classes (crash draws at 0.3× the level).
    pub const RATES: [f64; 3] = [0.1, 0.3, 0.5];
    /// Seed of every generated fault schedule (xored with the board
    /// count so each sweep point gets an independent schedule).
    pub const FAULT_SEED: u64 = 0x4641_554C; // "FAUL"
    /// Ring degree of the decrypt-verified functional leg.
    pub const FUNCTIONAL_N: usize = 4096;
    /// Label of the headline scenario: board 0 of 4 crashes at half the
    /// healthy makespan.
    pub const HEADLINE: &str = "lose-1-of-4-mid-run";

    /// Sessions in the sweep workload: fleet scale, or a small count
    /// under `HEAX_BENCH_QUICK` (CI smoke budget).
    pub fn sessions() -> usize {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            200
        } else {
            1_000
        }
    }

    /// The deterministic fault sweep: for each board count, the healthy
    /// affinity-routed baseline, the seeded [`RATES`] levels, and (at 4
    /// boards) the pinned headline crash — every row carrying its
    /// throughput retention against the healthy baseline of the same
    /// shape.
    ///
    /// # Panics
    ///
    /// Panics on scheduler configuration errors (cannot happen for the
    /// paper design point and the fixed sweep shapes).
    pub fn measure_suite() -> Vec<FaultRecord> {
        let dp = DesignPoint::derive(Board::stratix10(), cluster::SET).expect("paper row");
        let sessions = sessions();
        let ops = cluster::workload(sessions);
        let session_ids: Vec<u64> = (1..=sessions as u64).collect();
        let policy = RoutingPolicy::Affinity { steal: true };
        let mut records = Vec::new();
        for boards in BOARDS {
            eprintln!("fault sweep: {sessions} sessions on {boards} boards x {CORES} cores ...");
            let healthy = estimate_cluster(&dp, &ops, boards, CORES, policy).expect("schedule");
            let base = healthy.requests_per_sec();
            records.push(FaultRecord {
                scenario: "healthy".to_string(),
                rate: 0.0,
                boards,
                cores: CORES,
                boards_alive: boards,
                requests_per_sec: base,
                retention_vs_healthy: 1.0,
                failovers: 0,
                re_replications: 0,
                corrupt_ksk_evictions: 0,
                recovery_cycles: 0,
            });
            for rate in RATES {
                // Corruption draws at 2x the level: an event only fires
                // if its (board, session) pair matches where the key is
                // actually resident (~1/boards odds), so an undersampled
                // draw would leave the eviction column structurally zero.
                let rates = FaultRates {
                    crash: 0.3 * rate,
                    slowdown: rate,
                    link: rate,
                    dma: rate,
                    ksk_corruption: (2.0 * rate).min(1.0),
                };
                let plan = FaultPlan::generate(
                    FAULT_SEED ^ boards as u64,
                    boards,
                    healthy.total_cycles,
                    &session_ids,
                    &rates,
                );
                records.push(faulted_record(
                    &dp,
                    &ops,
                    boards,
                    policy,
                    &plan,
                    format!("seeded-rate-{rate}"),
                    rate,
                    base,
                ));
            }
            if boards == 4 {
                let plan = FaultPlan::new().with_event(
                    0,
                    mid_run_crash_cycle(&healthy),
                    FaultKind::BoardCrash,
                );
                records.push(faulted_record(
                    &dp,
                    &ops,
                    boards,
                    policy,
                    &plan,
                    HEADLINE.to_string(),
                    0.0,
                    base,
                ));
            }
        }
        records
    }

    /// Half of board 0's accrued compute in the healthy run — the
    /// crash trigger compares against per-board routed *compute* load,
    /// so anchoring on the makespan (which includes transfer cycles)
    /// would push the "mid-run" crash to the tail of the stream.
    pub fn mid_run_crash_cycle(healthy: &heax_hw::cluster::ClusterReport) -> u64 {
        healthy.boards[0]
            .ops
            .iter()
            .map(|t| t.compute.1 - t.compute.0)
            .sum::<u64>()
            / 2
    }

    /// Routes `ops` under `plan` and folds the outcome into one record;
    /// a plan that crashes every board is reported honestly as a total
    /// outage (zero throughput, zero survivors) rather than skipped.
    #[allow(clippy::too_many_arguments)]
    fn faulted_record(
        dp: &DesignPoint,
        ops: &[BoardOp],
        boards: usize,
        policy: RoutingPolicy,
        plan: &FaultPlan,
        scenario: String,
        rate: f64,
        base: f64,
    ) -> FaultRecord {
        match estimate_cluster_faulted(dp, ops, boards, CORES, policy, plan) {
            Ok(r) => FaultRecord {
                scenario,
                rate,
                boards,
                cores: CORES,
                boards_alive: r.boards_alive(),
                requests_per_sec: r.requests_per_sec(),
                retention_vs_healthy: if base > 0.0 {
                    r.requests_per_sec() / base
                } else {
                    0.0
                },
                failovers: r.failovers,
                re_replications: r.re_replications,
                corrupt_ksk_evictions: r.corrupt_ksk_evictions,
                recovery_cycles: r.recovery_cycles,
            },
            Err(_) => FaultRecord {
                scenario,
                rate,
                boards,
                cores: CORES,
                boards_alive: 0,
                requests_per_sec: 0.0,
                retention_vs_healthy: 0.0,
                failovers: 0,
                re_replications: 0,
                corrupt_ksk_evictions: 0,
                recovery_cycles: 0,
            },
        }
    }

    /// The functional leg's fault plan: board 0 crashes as soon as it
    /// has accrued any load, so the remaining boards absorb the flush
    /// mid-stream. (The 8 rotations per client fuse into one hoisted
    /// group per session, so a single flush never revisits a session —
    /// crash drainage is the fault class observable here; failover and
    /// checksum-eviction *recovery* are exercised by the hw/server unit
    /// tests and the fault proptest.)
    pub fn functional_plan() -> FaultPlan {
        FaultPlan::new().with_event(0, 1, FaultKind::BoardCrash)
    }

    /// Functional leg: serves the 8-client workload
    /// (n = [`FUNCTIONAL_N`]) through a `HeaxServer` with the cluster
    /// model attached at `boards` × `cores` and `plan` injected, asserts
    /// the batched results decrypt-identical to the sequential loop, and
    /// returns the server's accumulated cluster stats.
    ///
    /// # Panics
    ///
    /// Panics if the batched results disagree with the sequential loop
    /// or the model observed a different request count.
    pub fn functional_pass(boards: usize, cores: usize, plan: FaultPlan) -> ModeledClusterStats {
        let w = srv::prepare(FUNCTIONAL_N);
        let eval = Evaluator::new(&w.ctx);
        let (server, sessions) = srv::build_server(&w);
        let mut server = server
            .with_cluster_model(boards, cores)
            .expect("cluster model")
            .with_fault_plan(plan);
        let seq = srv::sequential_pass(&w, &eval);
        let batched = srv::batched_pass(&mut server, &sessions, &w);
        srv::verify_equivalent(&w, &seq, &batched);
        let stats = server.stats().cluster.expect("model enabled");
        assert_eq!(
            stats.modeled_requests,
            w.requests_per_pass() as u64,
            "the cluster model must observe every served request"
        );
        stats
    }

    /// The acceptance figure: throughput retention of the headline
    /// lose-1-of-4-boards-mid-run scenario against its healthy
    /// baseline.
    pub fn acceptance_retention(records: &[FaultRecord]) -> f64 {
        records
            .iter()
            .find(|r| r.scenario == HEADLINE && r.boards == 4)
            .map(|r| r.retention_vs_healthy)
            .unwrap_or(0.0)
    }
}

/// Workloads and measurement helpers for the real-socket serving path
/// (`bench_sockets`): a fleet of virtual sessions multiplexed over a
/// pool of loopback TCP connections into the epoll-driven
/// [`heax_server::net::NetServer`], measuring closed-loop and
/// Poisson-arrival request latency (p50/p99) plus the saturation
/// throughput of the event loop. A functional leg first serves
/// fragmented frames over a real socket and verifies every reply
/// byte-identical to the same frames driven through an in-process
/// [`heax_server::HeaxServer`], then decrypt-checks the result —
/// transport must be invisible to the protocol before any figure is
/// reported.
pub mod sockets {
    use std::io::{self, Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    use heax_ckks::serialize::{deserialize_ciphertext, serialize_ciphertext};
    use heax_ckks::{
        CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, ParamSet, PublicKey, SecretKey,
    };
    use heax_hw::board::Board;
    use heax_server::net::{FrameAssembler, NetConfig, NetServer};
    use heax_server::wire::client::{self, Reply};
    use heax_server::wire::{Request, WireOperand};
    use heax_server::{HeaxServer, OpCode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Parameter set of the socket workload. `Add` requests carry two
    /// inline Set-A ciphertexts (~200 KB each), so every request really
    /// exercises the read path, the assembler, and the reply writer —
    /// without needing per-session evaluation keys, which is what lets
    /// the rig open a thousand sessions in one setup pass.
    pub const SET: ParamSet = ParamSet::SetA;
    /// Requests verified byte-identical in the functional leg.
    pub const FUNCTIONAL_REQUESTS: usize = 4;

    /// Virtual sessions in the fleet: the acceptance scale, or a small
    /// fleet under `HEAX_BENCH_QUICK` (CI smoke budget).
    pub fn sessions() -> usize {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            128
        } else {
            1_024
        }
    }

    /// Loopback connections the fleet is multiplexed over.
    pub fn conns() -> usize {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            8
        } else {
            64
        }
    }

    /// Requests in the saturation (zero-think closed-loop) scenario.
    pub fn saturation_requests() -> usize {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            96
        } else {
            4_096
        }
    }

    /// Requests in each latency-oriented scenario.
    pub fn latency_requests() -> usize {
        if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
            48
        } else {
            1_024
        }
    }

    /// The prepared socket workload: one client key set and one
    /// serialized ciphertext every virtual session's `Add` requests
    /// reuse (the op needs no session keys, so the fleet shares it).
    pub struct SocketWorkload {
        /// Shared context (client and server agree on parameters).
        pub ctx: CkksContext,
        /// Secret key, for the functional leg's decrypt check.
        pub sk: SecretKey,
        /// Serialized sample ciphertext, the inline operand of every
        /// request.
        pub ct_bytes: Vec<u8>,
        /// Slot values the functional leg expects from `ct + ct`.
        pub expected: Vec<f64>,
    }

    /// Builds the shared workload.
    ///
    /// # Panics
    ///
    /// Panics on internal errors (cannot happen for the built-in set).
    pub fn prepare() -> SocketWorkload {
        let ctx = CkksContext::new(CkksParams::from_set(SET).expect("params")).expect("ctx");
        let mut rng = StdRng::seed_from_u64(0x534F_434B); // "SOCK"
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let vals: Vec<f64> = (0..8).map(|i| i as f64 * 0.25 - 1.0).collect();
        let ct = Encryptor::new(&ctx, &pk)
            .encrypt(
                &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                    .expect("encode"),
                &mut rng,
            )
            .expect("encrypt");
        SocketWorkload {
            ctx,
            sk,
            ct_bytes: serialize_ciphertext(&ct),
            expected: vals.iter().map(|v| 2.0 * v).collect(),
        }
    }

    /// One `Add` request frame for `session`/`request` over the shared
    /// operand.
    pub fn add_frame(w: &SocketWorkload, session: u64, request: u64) -> Vec<u8> {
        client::request(
            session,
            request,
            &Request {
                op: OpCode::Add,
                step: 0,
                compress_reply: false,
                park_as: None,
                operands: vec![
                    WireOperand::Inline(&w.ct_bytes),
                    WireOperand::Inline(&w.ct_bytes),
                ],
            },
        )
    }

    /// One driver-side connection: its share of the virtual sessions,
    /// a partial-write outbox, and the single in-flight request slot.
    struct BenchConn {
        stream: TcpStream,
        asm: FrameAssembler,
        out: Vec<u8>,
        out_at: usize,
        sessions: Vec<u64>,
        next_session: usize,
        in_flight: Option<Instant>,
        next_send_at: Instant,
        sent: usize,
        quota: usize,
    }

    impl BenchConn {
        /// Drains the outbox as far as the socket accepts.
        fn pump_out(&mut self) -> io::Result<()> {
            while self.out_at < self.out.len() {
                match self.stream.write(&self.out[self.out_at..]) {
                    Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                    Ok(n) => self.out_at += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
            if self.out_at == self.out.len() {
                self.out.clear();
                self.out_at = 0;
            }
            Ok(())
        }

        /// Reads everything available and returns the completed frames.
        fn drain_in(&mut self) -> io::Result<Vec<Vec<u8>>> {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => self.asm.push(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
            let mut frames = Vec::new();
            while let Some(f) = self.asm.next_frame().expect("server frames are clean") {
                frames.push(f);
            }
            Ok(frames)
        }
    }

    /// The bound server plus its pool of driver connections, sessions
    /// already opened.
    pub struct Rig<'w> {
        /// The epoll-driven server under measurement.
        pub net: NetServer<'w>,
        conns: Vec<BenchConn>,
    }

    /// Binds a `NetServer`, connects `conn_count` loopback connections,
    /// and opens `session_count` sessions round-robin across them.
    ///
    /// # Errors
    ///
    /// Propagates socket/poller failures.
    ///
    /// # Panics
    ///
    /// Panics if the server answers a session-open with anything but
    /// `SessionOpened`.
    pub fn rig(w: &SocketWorkload, session_count: usize, conn_count: usize) -> io::Result<Rig<'_>> {
        let inner = HeaxServer::new(&w.ctx, Board::stratix10()).expect("paper set");
        let mut net = NetServer::bind("127.0.0.1:0", inner, NetConfig::default())?;
        let addr = net.local_addr()?;
        let mut conns = Vec::with_capacity(conn_count);
        for c in 0..conn_count {
            let stream = TcpStream::connect(addr)?;
            stream.set_nonblocking(true)?;
            while net.connections() < c + 1 {
                net.poll(1)?;
            }
            let share = session_count / conn_count + usize::from(c < session_count % conn_count);
            let mut out = Vec::with_capacity(share * 32);
            for _ in 0..share {
                out.extend_from_slice(&client::open_session());
            }
            conns.push(BenchConn {
                stream,
                asm: FrameAssembler::new(),
                out,
                out_at: 0,
                sessions: Vec::with_capacity(share),
                next_session: 0,
                in_flight: None,
                next_send_at: Instant::now(),
                sent: 0,
                quota: 0,
            });
        }
        let mut opened = 0;
        while opened < session_count {
            for conn in &mut conns {
                conn.pump_out()?;
            }
            net.poll(1)?;
            for conn in &mut conns {
                for frame in conn.drain_in()? {
                    let (sid, _, reply) = client::parse_reply(&frame).expect("reply");
                    assert!(
                        matches!(reply, Reply::SessionOpened),
                        "expected SessionOpened, got {reply:?}"
                    );
                    conn.sessions.push(sid);
                    opened += 1;
                }
            }
        }
        Ok(Rig { net, conns })
    }

    /// Outcome of one scenario run.
    pub struct ScenarioOutcome {
        /// Per-request latency samples in milliseconds, completion
        /// order.
        pub latencies_ms: Vec<f64>,
        /// Wall time from first send to last reply.
        pub elapsed: Duration,
        /// Error replies observed (load sheds surface here).
        pub errors: u64,
        /// Virtual sessions the run actually touched.
        pub sessions_touched: usize,
    }

    impl ScenarioOutcome {
        /// Completed requests per second of wall time.
        pub fn requests_per_sec(&self) -> f64 {
            self.latencies_ms.len() as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Runs one scenario: `total` `Add` requests over the first
    /// `active_conns` connections, each connection keeping at most one
    /// request in flight and cycling through its sessions round-robin.
    /// `think` is `None` for a zero-think closed loop, or
    /// `Some((seed, mean_ms))` for Poisson arrivals — after each reply
    /// the connection waits an exponentially distributed think time
    /// before its next send.
    ///
    /// # Errors
    ///
    /// Propagates socket/poller failures.
    ///
    /// # Panics
    ///
    /// Panics if `active_conns` exceeds the rig's pool or a reply frame
    /// fails to parse.
    pub fn run_scenario(
        rig: &mut Rig<'_>,
        w: &SocketWorkload,
        total: usize,
        active_conns: usize,
        think: Option<(u64, f64)>,
    ) -> io::Result<ScenarioOutcome> {
        assert!(active_conns <= rig.conns.len());
        let conns = &mut rig.conns[..active_conns];
        let mut rng = think.map(|(seed, _)| StdRng::seed_from_u64(seed));
        let mean_ms = think.map_or(0.0, |(_, m)| m);
        let start = Instant::now();
        for (c, conn) in conns.iter_mut().enumerate() {
            conn.in_flight = None;
            conn.next_send_at = start;
            conn.sent = 0;
            conn.quota = total / active_conns + usize::from(c < total % active_conns);
        }
        let mut request_id = 1u64;
        let mut latencies_ms = Vec::with_capacity(total);
        let mut errors = 0u64;
        let mut done = 0usize;
        while done < total {
            let now = Instant::now();
            for conn in conns.iter_mut() {
                if conn.in_flight.is_none()
                    && conn.sent < conn.quota
                    && conn.out.is_empty()
                    && now >= conn.next_send_at
                {
                    let session = conn.sessions[conn.next_session];
                    conn.next_session = (conn.next_session + 1) % conn.sessions.len();
                    conn.out = add_frame(w, session, request_id);
                    conn.out_at = 0;
                    request_id += 1;
                    conn.sent += 1;
                    conn.in_flight = Some(Instant::now());
                }
                conn.pump_out()?;
            }
            rig.net.poll(0)?;
            for conn in conns.iter_mut() {
                for frame in conn.drain_in()? {
                    let (_, _, reply) = client::parse_reply(&frame).expect("reply");
                    if matches!(reply, Reply::Error { .. }) {
                        errors += 1;
                    }
                    let sent_at = conn.in_flight.take().expect("reply matches an in-flight");
                    latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
                    done += 1;
                    if let Some(rng) = rng.as_mut() {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let wait_ms = -mean_ms * (1.0 - u).ln();
                        conn.next_send_at = Instant::now() + Duration::from_secs_f64(wait_ms / 1e3);
                    }
                }
            }
        }
        let sessions_touched = conns
            .iter()
            .map(|c| c.sessions.len().min(c.sent))
            .sum::<usize>();
        Ok(ScenarioOutcome {
            latencies_ms,
            elapsed: start.elapsed(),
            errors,
            sessions_touched,
        })
    }

    /// Nearest-rank percentile of a latency sample (`p` in `0..=100`).
    pub fn percentile(samples: &[f64], p: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Functional leg: serves [`FUNCTIONAL_REQUESTS`] `Add` requests
    /// over a real loopback socket — the first request's bytes
    /// delivered in deliberately misaligned 3 791-byte chunks with a
    /// server poll between each, so frames straddle reads — and asserts
    /// every reply **byte-identical** to the same frames driven through
    /// an in-process [`HeaxServer`], then decrypt-checks the sum.
    /// Returns the number of verified replies.
    ///
    /// # Panics
    ///
    /// Panics on any byte or slot disagreement.
    pub fn functional_pass(w: &SocketWorkload) -> usize {
        let inner = HeaxServer::new(&w.ctx, Board::stratix10()).expect("paper set");
        let mut net = NetServer::bind("127.0.0.1:0", inner, NetConfig::default()).expect("bind");
        let mut mirror = HeaxServer::new(&w.ctx, Board::stratix10()).expect("paper set");
        let mut stream = TcpStream::connect(net.local_addr().expect("addr")).expect("connect");
        while net.connections() < 1 {
            net.poll(1).expect("poll");
        }

        // Sends `bytes` in `chunk`-sized pieces, polling the server
        // until the whole buffer is ingested before returning.
        let mut send = |net: &mut NetServer<'_>, bytes: &[u8], chunk: usize| {
            let target = net.stats().bytes_in + bytes.len() as u64;
            for piece in bytes.chunks(chunk) {
                stream.write_all(piece).expect("write");
                net.poll(0).expect("poll");
            }
            let mut settles = 0;
            while net.stats().bytes_in < target {
                net.poll(1).expect("poll");
                settles += 1;
                assert!(settles < 5_000, "server never ingested the frame");
            }
        };

        let open = client::open_session();
        send(&mut net, &open, open.len());
        let mirror_open = mirror.handle_frame(&open).expect("mirror opens");
        let (sid, _, _) = client::parse_reply(&mirror_open).expect("reply");

        let mut mirror_replies = vec![mirror_open];
        for r in 1..=FUNCTIONAL_REQUESTS as u64 {
            let frame = add_frame(w, sid, r);
            let chunk = if r == 1 { 3_791 } else { frame.len() };
            send(&mut net, &frame, chunk);
            assert!(mirror.handle_frame(&frame).is_none(), "mirror queues");
        }
        mirror_replies.extend(mirror.flush());

        let mut asm = FrameAssembler::new();
        let mut socket_replies = Vec::new();
        stream.set_nonblocking(true).expect("nonblocking");
        let mut settles = 0;
        while socket_replies.len() < mirror_replies.len() {
            net.poll(1).expect("poll");
            let mut buf = [0u8; 16 * 1024];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => panic!("server hung up mid-verification"),
                    Ok(n) => asm.push(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("read: {e}"),
                }
            }
            while let Some(f) = asm.next_frame().expect("clean frames") {
                socket_replies.push(f);
            }
            settles += 1;
            assert!(settles < 10_000, "replies never arrived");
        }
        assert_eq!(
            socket_replies, mirror_replies,
            "socket replies must be byte-identical to the in-process server"
        );

        let (_, _, reply) = client::parse_reply(&socket_replies[1]).expect("reply");
        let Reply::Ciphertext(bytes) = reply else {
            panic!("expected a ciphertext reply, got {reply:?}");
        };
        let ct = deserialize_ciphertext(&bytes, &w.ctx).expect("ct");
        let enc = CkksEncoder::new(&w.ctx);
        let got = enc
            .decode_real(&Decryptor::new(&w.ctx, &w.sk).decrypt(&ct).expect("decrypt"))
            .expect("decode");
        for (slot, want) in w.expected.iter().enumerate() {
            assert!(
                (got[slot] - want).abs() < 2e-2,
                "slot {slot}: {} vs {want}",
                got[slot]
            );
        }
        assert!(
            net.stats().partial_frame_reads > 0,
            "the chunked send must actually fragment frames"
        );
        FUNCTIONAL_REQUESTS
    }
}

/// Shared machinery for the `BENCH_*.json` snapshot binaries: CLI
/// budget parsing, per-binary snapshot paths, a tiny hand-rolled JSON
/// document builder (the workspace is offline; no serde), and the
/// write-or-exit tail every bin ends with. The per-suite record types
/// and their row formats live in [`crate::bench_json`]; this module
/// owns everything they have in common.
pub mod snapshot {
    use std::path::PathBuf;

    /// Measurement budget in milliseconds: `argv[1]` when parseable,
    /// `default_ms` otherwise — the argument convention every snapshot
    /// binary shares.
    pub fn budget_from_args(default_ms: u64) -> u64 {
        std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_ms)
    }

    /// Snapshot path from an environment-variable override with a
    /// per-binary default (each snapshot binary gets its own variable
    /// so concurrent smoke tests never race on one file).
    pub fn path_from_env(var: &str, default: &str) -> PathBuf {
        std::env::var_os(var)
            .map(Into::into)
            .unwrap_or_else(|| default.into())
    }

    /// Escapes a string for embedding inside a JSON string literal.
    pub fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect()
    }

    /// Writes a rendered snapshot document, printing the destination on
    /// success; on I/O failure prints the error and exits the process
    /// with status 1 (the shared tail of every snapshot binary).
    pub fn write_or_exit(path: &std::path::Path, json: &str) {
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    /// Runs a decrypt-verification leg and turns any assertion failure
    /// into a uniform diagnostic plus **exit status 1** — the shared
    /// gate every snapshot binary with a functional leg funnels
    /// through, so "verification failed" is one consistent, scriptable
    /// outcome across `bench_*` bins instead of a raw panic's status
    /// 101 in some and a clean exit in others.
    pub fn checked_functional<T>(label: &str, leg: impl FnOnce() -> T) -> T {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(leg)) {
            Ok(value) => value,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("verification panicked");
                eprintln!("error: {label}: decrypt-verification failed: {msg}");
                std::process::exit(1);
            }
        }
    }

    /// Builder for one snapshot document: a `schema` line, header
    /// fields, then a `results` array of pre-rendered row objects —
    /// with the indentation and trailing-comma discipline handled in
    /// one place instead of per emitter.
    #[derive(Debug)]
    pub struct Doc {
        head: String,
        rows: Vec<String>,
    }

    impl Doc {
        /// Starts a document with its schema identifier.
        pub fn new(schema: &str) -> Self {
            Doc {
                head: format!("  \"schema\": \"{}\",\n", esc(schema)),
                rows: Vec::new(),
            }
        }

        /// Adds a header field; `value` is embedded verbatim, so pass
        /// numbers, pre-formatted floats, or rendered JSON objects.
        #[must_use]
        pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.head
                .push_str(&format!("  \"{}\": {},\n", esc(key), value));
            self
        }

        /// Adds the standard `host_parallelism` header field.
        #[must_use]
        pub fn host_parallelism(self) -> Self {
            let lanes = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            self.field("host_parallelism", lanes)
        }

        /// Appends one pre-rendered `{...}` result row.
        pub fn push_row(&mut self, row: String) {
            self.rows.push(row);
        }

        /// Renders the complete document.
        pub fn render(self) -> String {
            let mut out = String::from("{\n");
            out.push_str(&self.head);
            out.push_str("  \"results\": [\n");
            for (i, row) in self.rows.iter().enumerate() {
                out.push_str("    ");
                out.push_str(row);
                out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ]\n}\n");
            out
        }
    }
}

/// Machine-readable perf snapshots (`BENCH_parallel.json`): a tiny
/// hand-rolled JSON emitter (the workspace is offline; no serde) so the
/// BENCH trajectory can be diffed and plotted across PRs and archived
/// from CI.
pub mod bench_json {
    use crate::snapshot::{esc, Doc};
    /// One measured `(op, n, threads)` point.
    #[derive(Clone, Debug, PartialEq)]
    pub struct BenchRecord {
        /// Operation name (`ntt_roundtrip`, `key_switch`).
        pub op: String,
        /// Ring degree.
        pub n: usize,
        /// Executor lanes (1 = sequential backend).
        pub threads: usize,
        /// Measured throughput.
        pub ops_per_sec: f64,
        /// Throughput relative to the sequential backend at the same `n`.
        pub speedup_vs_sequential: f64,
    }

    impl BenchRecord {
        /// Convenience constructor.
        pub fn new(op: &str, n: usize, threads: usize, ops_per_sec: f64, speedup: f64) -> Self {
            Self {
                op: op.to_string(),
                n,
                threads,
                ops_per_sec,
                speedup_vs_sequential: speedup,
            }
        }
    }

    /// Renders the snapshot document for a set of records.
    pub fn render(records: &[BenchRecord], budget_ms: u64) -> String {
        let mut doc = Doc::new("heax-bench-parallel/1")
            .host_parallelism()
            .field("budget_ms", budget_ms);
        for r in records {
            doc.push_row(format!(
                "{{\"op\": \"{}\", \"n\": {}, \"threads\": {}, \
                 \"ops_per_sec\": {:.3}, \"speedup_vs_sequential\": {:.3}}}",
                esc(&r.op),
                r.n,
                r.threads,
                r.ops_per_sec,
                r.speedup_vs_sequential,
            ));
        }
        doc.render()
    }

    /// Snapshot path: the `HEAX_BENCH_JSON` environment variable when
    /// set, `BENCH_parallel.json` in the working directory otherwise.
    pub fn default_path() -> std::path::PathBuf {
        path_from_env("HEAX_BENCH_JSON", "BENCH_parallel.json")
    }

    /// Re-export of [`crate::snapshot::path_from_env`] (historic home).
    pub use crate::snapshot::path_from_env;

    /// One measured key-switch-path point (`BENCH_keyswitch.json`).
    #[derive(Clone, Debug, PartialEq)]
    pub struct KsRecord {
        /// Operation name (`key_switch_shoup`, `rotate`, …).
        pub op: String,
        /// Ring degree.
        pub n: usize,
        /// Executor lanes of the global backend (`HEAX_THREADS`).
        pub threads: usize,
        /// Measured throughput (per-rotation for the hoisted batch).
        pub ops_per_sec: f64,
        /// Throughput relative to this op's baseline: the seed Barrett
        /// key switch for `key_switch_shoup`, sequential `rotate` for
        /// `rotate_manyN_per_rotation`, `1.0` for the baselines.
        pub speedup_vs_baseline: f64,
    }

    impl KsRecord {
        /// Convenience constructor.
        pub fn new(op: &str, n: usize, threads: usize, ops_per_sec: f64, speedup: f64) -> Self {
            Self {
                op: op.to_string(),
                n,
                threads,
                ops_per_sec,
                speedup_vs_baseline: speedup,
            }
        }
    }

    /// One measured serving-path point (`BENCH_server.json`).
    #[derive(Clone, Debug, PartialEq)]
    pub struct SrvRecord {
        /// Operation name (`sequential_loop`, `batched_server`).
        pub op: String,
        /// Ring degree.
        pub n: usize,
        /// Concurrent client sessions in the workload.
        pub clients: usize,
        /// Executor lanes of the global backend (`HEAX_THREADS`).
        pub threads: usize,
        /// Measured request throughput.
        pub requests_per_sec: f64,
        /// Throughput relative to the one-request-at-a-time loop at the
        /// same `n` (`1.0` for the baseline itself).
        pub speedup_vs_sequential: f64,
    }

    impl SrvRecord {
        /// Convenience constructor.
        pub fn new(
            op: &str,
            n: usize,
            clients: usize,
            threads: usize,
            requests_per_sec: f64,
            speedup: f64,
        ) -> Self {
            Self {
                op: op.to_string(),
                n,
                clients,
                threads,
                requests_per_sec,
                speedup_vs_sequential: speedup,
            }
        }
    }

    /// One modeled board-pipeline point (`BENCH_pipeline.json`).
    #[derive(Clone, Debug, PartialEq)]
    pub struct PipeRecord {
        /// Paper parameter set label (`Set-A` …).
        pub set: String,
        /// Ring degree.
        pub n: usize,
        /// Modeled HEAX cores.
        pub cores: usize,
        /// Transfer/return mode (`wire`, `dram`, `wire-v2` — see
        /// `pipeline::MODES`).
        pub mode: String,
        /// Whether results stay parked in board DRAM (no PCIe return);
        /// redundant with `mode == "dram"`, kept for `/1` consumers.
        pub parked: bool,
        /// Modeled sustained request throughput.
        pub requests_per_sec: f64,
        /// Throughput relative to the 1-core model of the same
        /// (set, mode).
        pub speedup_vs_1core: f64,
        /// What binds the makespan (`compute` / `pcie-in` / `pcie-out`).
        pub bound: String,
        /// Fraction of core-cycles spent computing.
        pub core_utilization: f64,
        /// Deepest any core's input FIFO got (operation buffers).
        pub fifo_high_water: u64,
    }

    /// Renders the pipeline snapshot document (schema
    /// `heax-bench-pipeline/2` — `/2` added the `mode` field and the
    /// `wire-v2` rows). `functional` carries the modeled stats of the
    /// decrypt-verified serving pass, which ran at ring degree
    /// `functional_n`.
    pub fn render_pipeline(
        records: &[PipeRecord],
        clients: usize,
        rotations_per_client: usize,
        functional_n: usize,
        functional: &heax_server::ModeledBoardStats,
    ) -> String {
        let mut doc = Doc::new("heax-bench-pipeline/2")
            .field("clients", clients)
            .field("rotations_per_client", rotations_per_client)
            .field(
                "functional",
                format!(
                    "{{\"n\": {functional_n}, \"cores\": {}, \
                     \"verified_decrypt_identical\": true, \"modeled_requests\": {}, \
                     \"modeled_requests_per_sec\": {:.3}}}",
                    functional.cores,
                    functional.modeled_requests,
                    functional.modeled_requests_per_sec(),
                ),
            );
        for r in records {
            doc.push_row(format!(
                "{{\"set\": \"{}\", \"n\": {}, \"cores\": {}, \"mode\": \"{}\", \
                 \"parked\": {}, \
                 \"requests_per_sec\": {:.3}, \"speedup_vs_1core\": {:.3}, \
                 \"bound\": \"{}\", \"core_utilization\": {:.3}, \
                 \"fifo_high_water\": {}}}",
                esc(&r.set),
                r.n,
                r.cores,
                esc(&r.mode),
                r.parked,
                r.requests_per_sec,
                r.speedup_vs_1core,
                esc(&r.bound),
                r.core_utilization,
                r.fifo_high_water,
            ));
        }
        doc.render()
    }

    /// Renders the server snapshot document (schema
    /// `heax-bench-server/1`).
    pub fn render_server(
        records: &[SrvRecord],
        budget_ms: u64,
        rotations_per_client: usize,
        batch_occupancy: f64,
    ) -> String {
        let mut doc = Doc::new("heax-bench-server/1")
            .host_parallelism()
            .field("budget_ms", budget_ms)
            .field("rotations_per_client", rotations_per_client)
            .field("batch_occupancy", format!("{batch_occupancy:.3}"));
        for r in records {
            doc.push_row(format!(
                "{{\"op\": \"{}\", \"n\": {}, \"clients\": {}, \"threads\": {}, \
                 \"requests_per_sec\": {:.3}, \"speedup_vs_sequential\": {:.3}}}",
                esc(&r.op),
                r.n,
                r.clients,
                r.threads,
                r.requests_per_sec,
                r.speedup_vs_sequential,
            ));
        }
        doc.render()
    }

    /// One modeled cluster routing point (`BENCH_cluster.json`).
    #[derive(Clone, Debug, PartialEq)]
    pub struct ClusterRecord {
        /// Routing policy label (`affinity`, `random`).
        pub policy: String,
        /// Sessions in the workload.
        pub sessions: usize,
        /// Boards in the modeled cluster.
        pub boards: usize,
        /// Modeled HEAX cores per board.
        pub cores: usize,
        /// Modeled sustained request throughput.
        pub requests_per_sec: f64,
        /// Throughput relative to random routing at the same
        /// (sessions, boards, cores) point (`1.0` for random itself).
        pub speedup_vs_random: f64,
        /// Key-consuming ops that found their ksk resident.
        pub routing_hits: u64,
        /// Key-consuming ops that had to replicate their ksk first.
        pub routing_misses: u64,
        /// Warm-session ops stolen to a less-loaded board.
        pub steals: u64,
        /// Total key bytes replicated across the host link.
        pub replication_bytes: u64,
        /// Mean per-board core utilization against the cluster makespan.
        pub mean_utilization: f64,
    }

    /// Renders the cluster snapshot document (schema
    /// `heax-bench-cluster/1`). The model is deterministic; `set` and
    /// `rounds_per_session` record the workload shape.
    pub fn render_cluster(
        records: &[ClusterRecord],
        set: &str,
        rounds_per_session: usize,
    ) -> String {
        let mut doc = Doc::new("heax-bench-cluster/1")
            .field("set", format!("\"{}\"", esc(set)))
            .field("rounds_per_session", rounds_per_session);
        for r in records {
            doc.push_row(format!(
                "{{\"policy\": \"{}\", \"sessions\": {}, \"boards\": {}, \"cores\": {}, \
                 \"requests_per_sec\": {:.3}, \"speedup_vs_random\": {:.3}, \
                 \"routing_hits\": {}, \"routing_misses\": {}, \"steals\": {}, \
                 \"replication_bytes\": {}, \"mean_utilization\": {:.3}}}",
                esc(&r.policy),
                r.sessions,
                r.boards,
                r.cores,
                r.requests_per_sec,
                r.speedup_vs_random,
                r.routing_hits,
                r.routing_misses,
                r.steals,
                r.replication_bytes,
                r.mean_utilization,
            ));
        }
        doc.render()
    }

    /// One fault-injection sweep point (`BENCH_faults.json`).
    #[derive(Clone, Debug, PartialEq)]
    pub struct FaultRecord {
        /// Scenario label (`healthy`, `seeded-rate-0.3`,
        /// `lose-1-of-4-mid-run`).
        pub scenario: String,
        /// Seeded per-board fault-draw level (0.0 for pinned scenarios).
        pub rate: f64,
        /// Boards in the modeled cluster.
        pub boards: usize,
        /// Modeled HEAX cores per board.
        pub cores: usize,
        /// Boards still alive at the end of the run.
        pub boards_alive: usize,
        /// Modeled sustained request throughput under the plan.
        pub requests_per_sec: f64,
        /// Throughput relative to the healthy baseline at the same
        /// (boards, cores) shape (`1.0` for the baseline itself).
        pub retention_vs_healthy: f64,
        /// Sessions that recovered their ksk on a healthy board after a
        /// crash.
        pub failovers: u64,
        /// Key re-replications forced by faults.
        pub re_replications: u64,
        /// Resident ksk copies evicted on checksum mismatch.
        pub corrupt_ksk_evictions: u64,
        /// Modeled cycles spent re-replicating key material.
        pub recovery_cycles: u64,
    }

    /// Renders the fault-injection snapshot document (schema
    /// `heax-bench-faults/1`). `functional` is the cluster stats of the
    /// decrypt-verified serving leg — the snapshot carries the proof
    /// that faults were injected into a run whose results still
    /// decrypted identically.
    pub fn render_faults(
        records: &[FaultRecord],
        set: &str,
        sessions: usize,
        rounds_per_session: usize,
        functional_n: usize,
        functional: &heax_server::ModeledClusterStats,
    ) -> String {
        let mut doc = Doc::new("heax-bench-faults/1")
            .field("set", format!("\"{}\"", esc(set)))
            .field("sessions", sessions)
            .field("rounds_per_session", rounds_per_session)
            .field(
                "functional",
                format!(
                    "{{\"n\": {}, \"boards\": {}, \"cores\": {}, \
                     \"verified_decrypt_identical\": true, \"modeled_requests\": {}, \
                     \"boards_alive\": {}}}",
                    functional_n,
                    functional.boards,
                    functional.cores_per_board,
                    functional.modeled_requests,
                    functional.boards_alive,
                ),
            );
        for r in records {
            doc.push_row(format!(
                "{{\"scenario\": \"{}\", \"rate\": {:.2}, \"boards\": {}, \"cores\": {}, \
                 \"boards_alive\": {}, \"requests_per_sec\": {:.3}, \
                 \"retention_vs_healthy\": {:.3}, \"failovers\": {}, \"re_replications\": {}, \
                 \"corrupt_ksk_evictions\": {}, \"recovery_cycles\": {}}}",
                esc(&r.scenario),
                r.rate,
                r.boards,
                r.cores,
                r.boards_alive,
                r.requests_per_sec,
                r.retention_vs_healthy,
                r.failovers,
                r.re_replications,
                r.corrupt_ksk_evictions,
                r.recovery_cycles,
            ));
        }
        doc.render()
    }

    /// One measured real-socket serving point (`BENCH_sockets.json`).
    #[derive(Clone, Debug, PartialEq)]
    pub struct SockRecord {
        /// Scenario label (`closed-loop-8`, `saturation`,
        /// `poisson-half-load`).
        pub scenario: String,
        /// Virtual sessions live on the server during the run.
        pub sessions: usize,
        /// Loopback connections driving the scenario.
        pub conns: usize,
        /// Executor lanes of the global backend (`HEAX_THREADS`).
        pub threads: usize,
        /// Requests completed in the run.
        pub requests: usize,
        /// Completed requests per second of wall time.
        pub requests_per_sec: f64,
        /// Median request latency, send to reply, in milliseconds.
        pub p50_ms: f64,
        /// 99th-percentile request latency in milliseconds.
        pub p99_ms: f64,
        /// Admission-control load sheds during the run.
        pub sheds: u64,
        /// Connections dropped during the run (overflow + hostile).
        pub drops: u64,
    }

    /// Renders the socket snapshot document (schema
    /// `heax-bench-sockets/1`). `functional_requests` is the size of
    /// the byte-identity leg that gated the run.
    pub fn render_sockets(
        records: &[SockRecord],
        set: &str,
        sessions: usize,
        functional_requests: usize,
    ) -> String {
        let mut doc = Doc::new("heax-bench-sockets/1")
            .host_parallelism()
            .field("set", format!("\"{}\"", esc(set)))
            .field("sessions", sessions)
            .field(
                "functional",
                format!(
                    "{{\"requests\": {functional_requests}, \
                     \"verified_byte_identical\": true}}"
                ),
            );
        for r in records {
            doc.push_row(format!(
                "{{\"scenario\": \"{}\", \"sessions\": {}, \"conns\": {}, \"threads\": {}, \
                 \"requests\": {}, \"requests_per_sec\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"sheds\": {}, \"drops\": {}}}",
                esc(&r.scenario),
                r.sessions,
                r.conns,
                r.threads,
                r.requests,
                r.requests_per_sec,
                r.p50_ms,
                r.p99_ms,
                r.sheds,
                r.drops,
            ));
        }
        doc.render()
    }

    /// Renders the key-switch snapshot document
    /// (schema `heax-bench-keyswitch/1`).
    pub fn render_keyswitch(records: &[KsRecord], budget_ms: u64, rotate_steps: usize) -> String {
        let mut doc = Doc::new("heax-bench-keyswitch/1")
            .host_parallelism()
            .field("budget_ms", budget_ms)
            .field("rotate_steps", rotate_steps);
        for r in records {
            doc.push_row(format!(
                "{{\"op\": \"{}\", \"n\": {}, \"threads\": {}, \
                 \"ops_per_sec\": {:.3}, \"speedup_vs_baseline\": {:.3}}}",
                esc(&r.op),
                r.n,
                r.threads,
                r.ops_per_sec,
                r.speedup_vs_baseline,
            ));
        }
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_renders_valid_shape() {
        use bench_json::BenchRecord;
        let records = vec![
            BenchRecord::new("ntt_roundtrip", 4096, 1, 1234.5, 1.0),
            BenchRecord::new("key_switch", 4096, 4, 99.25, 1.75),
        ];
        let json = bench_json::render(&records, 100);
        assert!(json.contains("\"schema\": \"heax-bench-parallel/1\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup_vs_sequential\": 1.750"));
        // Balanced braces/brackets, no trailing comma before the closer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn keyswitch_json_renders_valid_shape() {
        use bench_json::KsRecord;
        let records = vec![
            KsRecord::new("key_switch_barrett", 8192, 1, 100.0, 1.0),
            KsRecord::new("rotate_many8_per_rotation", 8192, 1, 250.0, 2.5),
        ];
        let json = bench_json::render_keyswitch(&records, 100, 8);
        assert!(json.contains("\"schema\": \"heax-bench-keyswitch/1\""));
        assert!(json.contains("\"rotate_steps\": 8"));
        assert!(json.contains("\"speedup_vs_baseline\": 2.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn server_json_renders_valid_shape() {
        use bench_json::SrvRecord;
        let records = vec![
            SrvRecord::new("sequential_loop", 4096, 8, 1, 120.0, 1.0),
            SrvRecord::new("batched_server", 4096, 8, 1, 260.0, 2.167),
        ];
        let json = bench_json::render_server(&records, 100, 8, 64.0);
        assert!(json.contains("\"schema\": \"heax-bench-server/1\""));
        assert!(json.contains("\"clients\": 8"));
        assert!(json.contains("\"batch_occupancy\": 64.000"));
        assert!(json.contains("\"speedup_vs_sequential\": 2.167"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn pipeline_json_renders_valid_shape() {
        use bench_json::PipeRecord;
        let records = vec![
            PipeRecord {
                set: "Set-C".into(),
                n: 16384,
                cores: 1,
                mode: "wire".into(),
                parked: false,
                requests_per_sec: 2500.0,
                speedup_vs_1core: 1.0,
                bound: "compute".into(),
                core_utilization: 0.97,
                fifo_high_water: 2,
            },
            PipeRecord {
                set: "Set-C".into(),
                n: 16384,
                cores: 4,
                mode: "wire-v2".into(),
                parked: false,
                requests_per_sec: 7200.0,
                speedup_vs_1core: 2.88,
                bound: "pcie-out".into(),
                core_utilization: 0.72,
                fifo_high_water: 2,
            },
        ];
        let functional = heax_server::ModeledBoardStats {
            cores: 4,
            freq_mhz: 300.0,
            modeled_requests: 64,
            modeled_cycles: 100_000,
            ..Default::default()
        };
        let json = bench_json::render_pipeline(&records, 8, 8, 16384, &functional);
        assert!(json.contains("\"n\": 16384,"));
        assert!(json.contains("\"schema\": \"heax-bench-pipeline/2\""));
        assert!(json.contains("\"mode\": \"wire-v2\""));
        assert!(json.contains("\"verified_decrypt_identical\": true"));
        assert!(json.contains("\"speedup_vs_1core\": 2.880"));
        assert!(json.contains("\"bound\": \"pcie-out\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn cluster_json_renders_valid_shape() {
        use bench_json::ClusterRecord;
        let records = vec![
            ClusterRecord {
                policy: "random".into(),
                sessions: 10_000,
                boards: 4,
                cores: 4,
                requests_per_sec: 40_000.0,
                speedup_vs_random: 1.0,
                routing_hits: 12_000,
                routing_misses: 28_000,
                steals: 0,
                replication_bytes: 73_000_000_000,
                mean_utilization: 0.41,
            },
            ClusterRecord {
                policy: "affinity".into(),
                sessions: 10_000,
                boards: 4,
                cores: 4,
                requests_per_sec: 75_000.0,
                speedup_vs_random: 1.875,
                routing_hits: 30_000,
                routing_misses: 10_000,
                steals: 3,
                replication_bytes: 26_000_000_000,
                mean_utilization: 0.77,
            },
        ];
        let json = bench_json::render_cluster(&records, "Set-B", 4);
        assert!(json.contains("\"schema\": \"heax-bench-cluster/1\""));
        assert!(json.contains("\"set\": \"Set-B\""));
        assert!(json.contains("\"policy\": \"affinity\""));
        assert!(json.contains("\"speedup_vs_random\": 1.875"));
        assert!(json.contains("\"routing_misses\": 10000"));
        assert!(json.contains("\"replication_bytes\": 26000000000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn cluster_affinity_beats_random_at_a_small_fleet_point() {
        // Deterministic model at a scaled-down fleet point: affinity
        // routing must clear the same >= 1.5x bar the committed
        // snapshot pins at 10k sessions.
        use heax_core::arch::DesignPoint;
        use heax_core::perf::estimate_cluster;
        use heax_hw::board::Board;
        use heax_hw::cluster::RoutingPolicy;

        let dp = DesignPoint::derive(Board::stratix10(), cluster::SET).expect("paper row");
        let ops = cluster::workload(200);
        let random = estimate_cluster(
            &dp,
            &ops,
            4,
            4,
            RoutingPolicy::Random {
                seed: cluster::RANDOM_SEED,
            },
        )
        .expect("schedule");
        let affinity = estimate_cluster(&dp, &ops, 4, 4, RoutingPolicy::Affinity { steal: true })
            .expect("schedule");
        assert_eq!(affinity.routing_misses, 200, "one replication per session");
        assert!(random.routing_misses > affinity.routing_misses);
        assert!(random.replication_bytes > affinity.replication_bytes);
        let speedup = affinity.requests_per_sec() / random.requests_per_sec();
        assert!(speedup >= 1.5, "affinity only {speedup:.2}x over random");
    }

    #[test]
    fn faults_json_renders_valid_shape() {
        use bench_json::FaultRecord;
        let records = vec![
            FaultRecord {
                scenario: "healthy".into(),
                rate: 0.0,
                boards: 4,
                cores: 4,
                boards_alive: 4,
                requests_per_sec: 75_000.0,
                retention_vs_healthy: 1.0,
                failovers: 0,
                re_replications: 0,
                corrupt_ksk_evictions: 0,
                recovery_cycles: 0,
            },
            FaultRecord {
                scenario: faults::HEADLINE.into(),
                rate: 0.0,
                boards: 4,
                cores: 4,
                boards_alive: 3,
                requests_per_sec: 52_000.0,
                retention_vs_healthy: 0.693,
                failovers: 48,
                re_replications: 51,
                corrupt_ksk_evictions: 3,
                recovery_cycles: 1_200_000,
            },
        ];
        let functional = heax_server::ModeledClusterStats {
            boards: 4,
            cores_per_board: 4,
            modeled_requests: 64,
            boards_alive: 3,
            failovers: 8,
            corrupt_ksk_evictions: 1,
            ..Default::default()
        };
        let json = bench_json::render_faults(&records, "Set-B", 1000, 4, 4096, &functional);
        assert!(json.contains("\"schema\": \"heax-bench-faults/1\""));
        assert!(json.contains("\"set\": \"Set-B\""));
        assert!(json.contains("\"verified_decrypt_identical\": true"));
        assert!(json.contains("\"scenario\": \"lose-1-of-4-mid-run\""));
        assert!(json.contains("\"retention_vs_healthy\": 0.693"));
        assert!(json.contains("\"recovery_cycles\": 1200000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        // The acceptance picker finds the headline row.
        assert!((faults::acceptance_retention(&records) - 0.693).abs() < 1e-9);
        assert_eq!(faults::acceptance_retention(&records[..1]), 0.0);
    }

    #[test]
    fn sockets_json_renders_valid_shape() {
        use bench_json::SockRecord;
        let records = vec![
            SockRecord {
                scenario: "closed-loop-8".into(),
                sessions: 1_024,
                conns: 8,
                threads: 1,
                requests: 1_024,
                requests_per_sec: 850.0,
                p50_ms: 8.4,
                p99_ms: 21.7,
                sheds: 0,
                drops: 0,
            },
            SockRecord {
                scenario: "saturation".into(),
                sessions: 1_024,
                conns: 64,
                threads: 1,
                requests: 4_096,
                requests_per_sec: 1_900.0,
                p50_ms: 31.0,
                p99_ms: 74.5,
                sheds: 2,
                drops: 0,
            },
        ];
        let json = bench_json::render_sockets(&records, "Set-A", 1_024, 4);
        assert!(json.contains("\"schema\": \"heax-bench-sockets/1\""));
        assert!(json.contains("\"set\": \"Set-A\""));
        assert!(json.contains("\"verified_byte_identical\": true"));
        assert!(json.contains("\"scenario\": \"saturation\""));
        assert!(json.contains("\"p99_ms\": 74.500"));
        assert!(json.contains("\"sheds\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn socket_percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(sockets::percentile(&samples, 50.0), 50.0);
        assert_eq!(sockets::percentile(&samples, 99.0), 99.0);
        assert_eq!(sockets::percentile(&samples, 100.0), 100.0);
        assert_eq!(sockets::percentile(&[7.5], 50.0), 7.5);
        assert_eq!(sockets::percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn losing_one_of_four_boards_mid_run_retains_most_throughput() {
        // Deterministic model at a scaled-down fleet point: the same
        // headline scenario the committed snapshot pins — one of four
        // boards crashes at half the healthy makespan — must keep at
        // least 55% of healthy throughput after failover.
        use heax_core::arch::DesignPoint;
        use heax_core::perf::{estimate_cluster, estimate_cluster_faulted};
        use heax_hw::board::Board;
        use heax_hw::cluster::RoutingPolicy;
        use heax_hw::faults::{FaultKind, FaultPlan};

        let dp = DesignPoint::derive(Board::stratix10(), cluster::SET).expect("paper row");
        let ops = cluster::workload(200);
        let policy = RoutingPolicy::Affinity { steal: true };
        let healthy = estimate_cluster(&dp, &ops, 4, 4, policy).expect("schedule");
        let plan = FaultPlan::new().with_event(
            0,
            faults::mid_run_crash_cycle(&healthy),
            FaultKind::BoardCrash,
        );
        let faulted = estimate_cluster_faulted(&dp, &ops, 4, 4, policy, &plan).expect("schedule");
        assert_eq!(faulted.boards_alive(), 3);
        assert!(faulted.failovers > 0, "crash must displace warm sessions");
        assert!(faulted.recovery_cycles > 0);
        let retention = faulted.requests_per_sec() / healthy.requests_per_sec();
        assert!(
            retention >= 0.55,
            "1-of-4 crash retained only {retention:.2} of healthy throughput"
        );
    }

    #[test]
    fn checked_functional_passes_values_through() {
        // The happy path of the shared verification gate is a plain
        // pass-through (the failure path exits the process, so only
        // the bin-level contract covers it).
        let value = snapshot::checked_functional("unit", || 41 + 1);
        assert_eq!(value, 42);
    }

    #[test]
    fn pipeline_model_suite_meets_the_acceptance_bar() {
        // Deterministic model: the full sweep must show 4-core >= 2x
        // 1-core on the wire-return 8-client workload at Set-C, and the
        // parked variants must scale at least as well as wire return.
        let records = pipeline::model_suite();
        assert_eq!(
            records.len(),
            3 * pipeline::MODES.len() * pipeline::CORES.len()
        );
        let bar = pipeline::acceptance_speedup(&records);
        assert!(bar >= 2.0, "modeled 4-core speedup only {bar:.2}x");
        for r in records.iter().filter(|r| r.cores == 1) {
            assert!((r.speedup_vs_1core - 1.0).abs() < 1e-9);
        }
        for wire in records.iter().filter(|r| r.mode == "wire") {
            let parked = records
                .iter()
                .find(|p| p.parked && p.n == wire.n && p.cores == wire.cores)
                .expect("parked twin");
            assert!(parked.speedup_vs_1core >= wire.speedup_vs_1core - 1e-9);
        }
    }

    #[test]
    fn wire_v2_flips_pcie_bound_rows_to_compute() {
        // The v2 acceptance bar: at least two (set, cores) points that
        // were pcie-out-bound under v1 wire return must be rescued by
        // seeded uploads + compressed replies.
        let records = pipeline::model_suite();
        let flips = pipeline::v2_flip_count(&records);
        assert!(
            flips >= 2,
            "only {flips} pcie-out rows flipped under wire-v2"
        );
        // The v2 path can never be slower than v1 at the same point.
        for v1 in records.iter().filter(|r| r.mode == "wire") {
            let v2 = records
                .iter()
                .find(|v| v.mode == "wire-v2" && v.n == v1.n && v.cores == v1.cores)
                .expect("wire-v2 twin");
            assert!(
                v2.requests_per_sec >= v1.requests_per_sec - 1e-9,
                "wire-v2 slower than wire at n={} cores={}",
                v1.n,
                v1.cores
            );
        }
    }

    #[test]
    fn v2_flip_count_judges_synthetic_records() {
        use bench_json::PipeRecord;
        let row = |mode: &str, cores: usize, bound: &str, speedup: f64| PipeRecord {
            set: "Set-X".into(),
            n: 8192,
            cores,
            mode: mode.into(),
            parked: false,
            requests_per_sec: 1000.0 * speedup,
            speedup_vs_1core: speedup,
            bound: bound.into(),
            core_utilization: 0.5,
            fifo_high_water: 2,
        };
        // pcie-out -> compute: counts.
        let flipped = vec![
            row("wire", 2, "pcie-out", 1.12),
            row("wire-v2", 2, "compute", 1.9),
        ];
        assert_eq!(pipeline::v2_flip_count(&flipped), 1);
        // Still pcie-out but speedup recovered >= 1.5x from <= 1.12x: counts.
        let recovered = vec![
            row("wire", 4, "pcie-out", 1.0),
            row("wire-v2", 4, "pcie-out", 1.6),
        ];
        assert_eq!(pipeline::v2_flip_count(&recovered), 1);
        // Compute-bound v1 rows never count, nor do unimproved twins.
        let unmoved = vec![
            row("wire", 1, "compute", 1.0),
            row("wire-v2", 1, "compute", 1.0),
            row("wire", 2, "pcie-out", 1.12),
            row("wire-v2", 2, "pcie-out", 1.2),
        ];
        assert_eq!(pipeline::v2_flip_count(&unmoved), 0);
    }

    #[test]
    fn table_renders() {
        let t = render_table(
            "Demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("30"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ops(1_500_000.0), "1.50M");
        assert_eq!(fmt_ops(22_536.0), "22.5k");
        assert_eq!(fmt_ops(488.0), "488.0");
        assert_eq!(fmt_speedup(232.3), "232.3x");
        assert_eq!(fmt_delta(110.0, 100.0), "+10.0%");
    }

    #[test]
    fn measure_runs() {
        let mut x = 0u64;
        let rate = measure_ops_per_sec(
            || {
                x = x.wrapping_add(1);
            },
            5,
        );
        assert!(rate > 0.0);
    }
}
