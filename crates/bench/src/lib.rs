//! # heax-bench
//!
//! Harness regenerating every table and figure of the HEAX paper's
//! evaluation (Section 6). Each `table*`/`figure*` binary prints the
//! paper's artifact next to this reproduction's model/measurement:
//!
//! ```text
//! cargo run -p heax-bench --release --bin table5
//! cargo run -p heax-bench --release --bin table7
//! cargo bench -p heax-bench --bench cpu_highlevel   # CPU-side of Tables 7/8
//! ```
//!
//! The library part holds shared table formatting and the CPU-side
//! measurement loop reused by both the binaries and the Criterion benches.

use std::time::Instant;

/// Renders an ASCII table with a title.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = format!("\n== {title} ==\n");
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats an ops/second figure compactly.
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats a ratio as `N.N×`.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Measures the steady-state rate of `f` in operations/second: warms up,
/// then runs batches until `budget_ms` elapses.
pub fn measure_ops_per_sec<F: FnMut()>(mut f: F, budget_ms: u64) -> f64 {
    // Warm-up.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        f();
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Relative delta of `got` against `reference`, as a signed percent string.
pub fn fmt_delta(got: f64, reference: f64) -> String {
    format!("{:+.1}%", 100.0 * (got - reference) / reference)
}

/// Shared CPU-baseline workloads for the Table 7/8 binaries and the
/// Criterion benches.
pub mod workloads {
    use heax_ckks::{
        Ciphertext, CkksContext, CkksEncoder, CkksParams, Encryptor, ParamSet, PublicKey, RelinKey,
        SecretKey,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Everything needed to measure the CPU baseline for one set.
    pub struct SetWorkload {
        /// Context for the set.
        pub ctx: CkksContext,
        /// Secret key.
        pub sk: SecretKey,
        /// Relinearization key.
        pub rlk: RelinKey,
        /// Two fresh sample ciphertexts at top level.
        pub ct_a: Ciphertext,
        /// Second operand.
        pub ct_b: Ciphertext,
        /// An un-relinearized product (3 components).
        pub ct_prod: Ciphertext,
        /// A sample single-residue polynomial (coefficient form).
        pub residue: Vec<u64>,
        /// The same residue in NTT form.
        pub residue_ntt: Vec<u64>,
    }

    /// Builds keys, ciphertexts, and sample polynomials for `set`.
    ///
    /// # Panics
    ///
    /// Panics on internal errors (cannot happen for the built-in sets).
    pub fn prepare(set: ParamSet) -> SetWorkload {
        let ctx = CkksContext::new(CkksParams::from_set(set).expect("params")).expect("ctx");
        let mut rng = StdRng::seed_from_u64(0x4845_4158); // "HEAX"
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let scale = ctx.params().scale();
        let vals_a: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 + 1.0).collect();
        let vals_b: Vec<f64> = (0..8).map(|i| 2.0 - i as f64 * 0.25).collect();
        let pt_a = enc
            .encode_real(&vals_a, scale, ctx.max_level())
            .expect("encode");
        let pt_b = enc
            .encode_real(&vals_b, scale, ctx.max_level())
            .expect("encode");
        let encryptor = Encryptor::new(&ctx, &pk);
        let ct_a = encryptor.encrypt(&pt_a, &mut rng).expect("encrypt");
        let ct_b = encryptor.encrypt(&pt_b, &mut rng).expect("encrypt");
        let ct_prod = heax_ckks::Evaluator::new(&ctx)
            .multiply(&ct_a, &ct_b)
            .expect("multiply");

        let p0 = ctx.moduli()[0].value();
        let residue: Vec<u64> = (0..ctx.n() as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p0)
            .collect();
        let mut residue_ntt = residue.clone();
        ctx.ntt_table(0).forward(&mut residue_ntt);
        SetWorkload {
            ctx,
            sk,
            rlk,
            ct_a,
            ct_b,
            ct_prod,
            residue,
            residue_ntt,
        }
    }
}

/// Workloads and measurement helpers for the parallel execution backend
/// (`heax_math::exec`): sequential vs thread-pool NTT round-trips and key
/// switching, shared by the `parallel_backend` Criterion bench and the
/// `bench_parallel` snapshot binary.
pub mod parallel {
    use std::sync::Arc;

    use heax_ckks::{Evaluator, ParamSet};
    use heax_math::exec::{self, Executor};
    use heax_math::poly::{Representation, RnsPoly};

    use crate::workloads::{self, SetWorkload};

    /// Ring degrees the backend is benchmarked at (the paper's Set-A/B/C).
    pub const SIZES: [usize; 3] = [4096, 8192, 16384];

    /// Lane counts compared against [`exec::Sequential`].
    pub const THREADS: [usize; 3] = [2, 4, 8];

    /// The paper parameter set with ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 4096, 8192, or 16384.
    pub fn set_for_n(n: usize) -> ParamSet {
        match n {
            4096 => ParamSet::SetA,
            8192 => ParamSet::SetB,
            16384 => ParamSet::SetC,
            other => panic!("no paper parameter set with n = {other}"),
        }
    }

    /// A prepared parameter set plus a full-width coefficient-form
    /// polynomial for NTT round-trips.
    pub struct ParallelWorkload {
        /// Keys, ciphertexts, and context for the set.
        pub w: SetWorkload,
        /// All-limb polynomial in coefficient form (top level).
        pub poly: RnsPoly,
    }

    /// Builds the workload for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a paper ring degree.
    pub fn prepare(n: usize) -> ParallelWorkload {
        let w = workloads::prepare(set_for_n(n));
        let moduli = w.ctx.level_moduli(w.ctx.max_level()).to_vec();
        let mut poly = RnsPoly::zero(n, &moduli, Representation::Coefficient);
        for (i, m) in moduli.iter().enumerate() {
            for (j, c) in poly.residue_mut(i).iter_mut().enumerate() {
                *c = (j as u64).wrapping_mul(0x9e3779b97f4a7c15 + i as u64) % m.value();
            }
        }
        ParallelWorkload { w, poly }
    }

    /// One benchmark operation: forward + inverse NTT of every limb
    /// through `exec` (returns the polynomial to its original state, so
    /// it can be iterated in place).
    ///
    /// # Panics
    ///
    /// Panics on representation errors (cannot happen from [`prepare`]).
    pub fn ntt_roundtrip(wl: &mut ParallelWorkload, exec: &dyn Executor) {
        let tables = wl.w.ctx.ntt_tables();
        wl.poly.ntt_forward_with(tables, exec).expect("forward");
        wl.poly.ntt_inverse_with(tables, exec).expect("inverse");
    }

    /// One benchmark operation: the full key-switch inner primitive on
    /// the workload's 3-component product, through an evaluator pinned to
    /// `exec`.
    ///
    /// # Panics
    ///
    /// Panics on evaluation errors (cannot happen from [`prepare`]).
    pub fn key_switch_once(wl: &ParallelWorkload, eval: &Evaluator<'_>) {
        let _ = eval
            .key_switch(
                wl.w.ct_prod.component(2),
                wl.w.rlk.ksk(),
                wl.w.ct_prod.level(),
            )
            .expect("key_switch");
    }

    /// Measures ops/second of the NTT round-trip and key switch for one
    /// executor, using the shared wall-clock loop.
    pub fn measure_one(
        wl: &mut ParallelWorkload,
        exec: &Arc<dyn Executor>,
        budget_ms: u64,
    ) -> (f64, f64) {
        let ntt = crate::measure_ops_per_sec(|| ntt_roundtrip(wl, exec.as_ref()), budget_ms);
        let eval = Evaluator::with_executor(&wl.w.ctx, exec.clone());
        let ks = crate::measure_ops_per_sec(|| key_switch_once(wl, &eval), budget_ms);
        (ntt, ks)
    }

    /// Runs the full sequential-vs-parallel sweep, returning one record
    /// per `(op, n, threads)` point with speedups relative to the
    /// sequential backend at the same `n`.
    pub fn measure_suite(budget_ms: u64) -> Vec<crate::bench_json::BenchRecord> {
        use crate::bench_json::BenchRecord;
        let mut records = Vec::new();
        for n in SIZES {
            eprintln!("preparing n = {n} ...");
            let mut wl = prepare(n);
            let seq: Arc<dyn Executor> = Arc::new(exec::Sequential);
            let (ntt_seq, ks_seq) = measure_one(&mut wl, &seq, budget_ms);
            records.push(BenchRecord::new("ntt_roundtrip", n, 1, ntt_seq, 1.0));
            records.push(BenchRecord::new("key_switch", n, 1, ks_seq, 1.0));
            for k in THREADS {
                let pool = exec::with_threads(k);
                let (ntt_k, ks_k) = measure_one(&mut wl, &pool, budget_ms);
                records.push(BenchRecord::new(
                    "ntt_roundtrip",
                    n,
                    k,
                    ntt_k,
                    ntt_k / ntt_seq,
                ));
                records.push(BenchRecord::new("key_switch", n, k, ks_k, ks_k / ks_seq));
            }
        }
        records
    }
}

/// Machine-readable perf snapshots (`BENCH_parallel.json`): a tiny
/// hand-rolled JSON emitter (the workspace is offline; no serde) so the
/// BENCH trajectory can be diffed and plotted across PRs and archived
/// from CI.
pub mod bench_json {
    /// One measured `(op, n, threads)` point.
    #[derive(Clone, Debug, PartialEq)]
    pub struct BenchRecord {
        /// Operation name (`ntt_roundtrip`, `key_switch`).
        pub op: String,
        /// Ring degree.
        pub n: usize,
        /// Executor lanes (1 = sequential backend).
        pub threads: usize,
        /// Measured throughput.
        pub ops_per_sec: f64,
        /// Throughput relative to the sequential backend at the same `n`.
        pub speedup_vs_sequential: f64,
    }

    impl BenchRecord {
        /// Convenience constructor.
        pub fn new(op: &str, n: usize, threads: usize, ops_per_sec: f64, speedup: f64) -> Self {
            Self {
                op: op.to_string(),
                n,
                threads,
                ops_per_sec,
                speedup_vs_sequential: speedup,
            }
        }
    }

    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect()
    }

    /// Renders the snapshot document for a set of records.
    pub fn render(records: &[BenchRecord], budget_ms: u64) -> String {
        let host_lanes = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"heax-bench-parallel/1\",\n");
        out.push_str(&format!("  \"host_parallelism\": {host_lanes},\n"));
        out.push_str(&format!("  \"budget_ms\": {budget_ms},\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"n\": {}, \"threads\": {}, \
                 \"ops_per_sec\": {:.3}, \"speedup_vs_sequential\": {:.3}}}{}\n",
                esc(&r.op),
                r.n,
                r.threads,
                r.ops_per_sec,
                r.speedup_vs_sequential,
                if i + 1 < records.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Snapshot path: the `HEAX_BENCH_JSON` environment variable when
    /// set, `BENCH_parallel.json` in the working directory otherwise.
    pub fn default_path() -> std::path::PathBuf {
        std::env::var_os("HEAX_BENCH_JSON")
            .map(Into::into)
            .unwrap_or_else(|| "BENCH_parallel.json".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_renders_valid_shape() {
        use bench_json::BenchRecord;
        let records = vec![
            BenchRecord::new("ntt_roundtrip", 4096, 1, 1234.5, 1.0),
            BenchRecord::new("key_switch", 4096, 4, 99.25, 1.75),
        ];
        let json = bench_json::render(&records, 100);
        assert!(json.contains("\"schema\": \"heax-bench-parallel/1\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup_vs_sequential\": 1.750"));
        // Balanced braces/brackets, no trailing comma before the closer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn table_renders() {
        let t = render_table(
            "Demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("30"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ops(1_500_000.0), "1.50M");
        assert_eq!(fmt_ops(22_536.0), "22.5k");
        assert_eq!(fmt_ops(488.0), "488.0");
        assert_eq!(fmt_speedup(232.3), "232.3x");
        assert_eq!(fmt_delta(110.0, 100.0), "+10.0%");
    }

    #[test]
    fn measure_runs() {
        let mut x = 0u64;
        let rate = measure_ops_per_sec(
            || {
                x = x.wrapping_add(1);
            },
            5,
        );
        assert!(rate > 0.0);
    }
}
