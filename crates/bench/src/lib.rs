//! # heax-bench
//!
//! Harness regenerating every table and figure of the HEAX paper's
//! evaluation (Section 6). Each `table*`/`figure*` binary prints the
//! paper's artifact next to this reproduction's model/measurement:
//!
//! ```text
//! cargo run -p heax-bench --release --bin table5
//! cargo run -p heax-bench --release --bin table7
//! cargo bench -p heax-bench --bench cpu_highlevel   # CPU-side of Tables 7/8
//! ```
//!
//! The library part holds shared table formatting and the CPU-side
//! measurement loop reused by both the binaries and the Criterion benches.

use std::time::Instant;

/// Renders an ASCII table with a title.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = format!("\n== {title} ==\n");
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats an ops/second figure compactly.
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats a ratio as `N.N×`.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Measures the steady-state rate of `f` in operations/second: warms up,
/// then runs batches until `budget_ms` elapses.
pub fn measure_ops_per_sec<F: FnMut()>(mut f: F, budget_ms: u64) -> f64 {
    // Warm-up.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        f();
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Relative delta of `got` against `reference`, as a signed percent string.
pub fn fmt_delta(got: f64, reference: f64) -> String {
    format!("{:+.1}%", 100.0 * (got - reference) / reference)
}

/// Shared CPU-baseline workloads for the Table 7/8 binaries and the
/// Criterion benches.
pub mod workloads {
    use heax_ckks::{
        Ciphertext, CkksContext, CkksEncoder, CkksParams, Encryptor, ParamSet, PublicKey, RelinKey,
        SecretKey,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Everything needed to measure the CPU baseline for one set.
    pub struct SetWorkload {
        /// Context for the set.
        pub ctx: CkksContext,
        /// Secret key.
        pub sk: SecretKey,
        /// Relinearization key.
        pub rlk: RelinKey,
        /// Two fresh sample ciphertexts at top level.
        pub ct_a: Ciphertext,
        /// Second operand.
        pub ct_b: Ciphertext,
        /// An un-relinearized product (3 components).
        pub ct_prod: Ciphertext,
        /// A sample single-residue polynomial (coefficient form).
        pub residue: Vec<u64>,
        /// The same residue in NTT form.
        pub residue_ntt: Vec<u64>,
    }

    /// Builds keys, ciphertexts, and sample polynomials for `set`.
    ///
    /// # Panics
    ///
    /// Panics on internal errors (cannot happen for the built-in sets).
    pub fn prepare(set: ParamSet) -> SetWorkload {
        let ctx = CkksContext::new(CkksParams::from_set(set).expect("params")).expect("ctx");
        let mut rng = StdRng::seed_from_u64(0x4845_4158); // "HEAX"
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let scale = ctx.params().scale();
        let vals_a: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 + 1.0).collect();
        let vals_b: Vec<f64> = (0..8).map(|i| 2.0 - i as f64 * 0.25).collect();
        let pt_a = enc
            .encode_real(&vals_a, scale, ctx.max_level())
            .expect("encode");
        let pt_b = enc
            .encode_real(&vals_b, scale, ctx.max_level())
            .expect("encode");
        let encryptor = Encryptor::new(&ctx, &pk);
        let ct_a = encryptor.encrypt(&pt_a, &mut rng).expect("encrypt");
        let ct_b = encryptor.encrypt(&pt_b, &mut rng).expect("encrypt");
        let ct_prod = heax_ckks::Evaluator::new(&ctx)
            .multiply(&ct_a, &ct_b)
            .expect("multiply");

        let p0 = ctx.moduli()[0].value();
        let residue: Vec<u64> = (0..ctx.n() as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p0)
            .collect();
        let mut residue_ntt = residue.clone();
        ctx.ntt_table(0).forward(&mut residue_ntt);
        SetWorkload {
            ctx,
            sk,
            rlk,
            ct_a,
            ct_b,
            ct_prod,
            residue,
            residue_ntt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let t = render_table(
            "Demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("30"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ops(1_500_000.0), "1.50M");
        assert_eq!(fmt_ops(22_536.0), "22.5k");
        assert_eq!(fmt_ops(488.0), "488.0");
        assert_eq!(fmt_speedup(232.3), "232.3x");
        assert_eq!(fmt_delta(110.0, 100.0), "+10.0%");
    }

    #[test]
    fn measure_runs() {
        let mut x = 0u64;
        let rate = measure_ops_per_sec(
            || {
                x = x.wrapping_add(1);
            },
            5,
        );
        assert!(rate > 0.0);
    }
}
