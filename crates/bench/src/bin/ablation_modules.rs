//! Ablation — one big NTT0 module vs several smaller ones (Section 4.3,
//! "Number of Cores vs. Number of Modules").
//!
//! Balancing INTT0 against the first NTT layer needs `k·ncINTT0` NTT-core
//! throughput. The paper argues for splitting it into `m0` modules:
//! fewer ALMs (the MUX trees grow as `O(nc·log nc)`) and more reliable
//! place-and-route, at the cost of extra BRAM (each module owns its data
//! and output memories). This harness quantifies that trade-off with the
//! Table 4-calibrated module model, plus the throughput of each option.

use heax_bench::render_table;
use heax_ckks::ParamSet;
use heax_core::resources::{module_cost, ModuleKind};
use heax_hw::ntt_dataflow::NttModuleConfig;

fn main() {
    for set in [ParamSet::SetB, ParamSet::SetC] {
        let n = set.n();
        let k = set.k();
        let nc_intt0 = if set == ParamSet::SetC { 8 } else { 16 };
        let total_cores = k * nc_intt0;
        let mut rows = Vec::new();
        for m0 in [1usize, 2, 4, 8] {
            if total_cores / m0 < 1 || !((total_cores / m0).is_power_of_two()) {
                continue;
            }
            let per_module = total_cores / m0;
            if per_module > 64 {
                continue;
            }
            let r = module_cost(ModuleKind::Ntt, per_module, n) * m0 as u64;
            let feasible = per_module <= 32; // >32 cores fails P&R (paper)
            let cycles = NttModuleConfig::new(n, per_module)
                .map(|c| c.transform_cycles())
                .unwrap_or(0);
            rows.push(vec![
                m0.to_string(),
                per_module.to_string(),
                r.alm.to_string(),
                r.reg.to_string(),
                r.m20k.to_string(),
                cycles.to_string(),
                if feasible { "yes" } else { "no (P&R)" }.to_string(),
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!(
                    "Ablation: splitting {total_cores} NTT0 cores into m0 modules ({} n={n})",
                    set.name()
                ),
                &[
                    "m0",
                    "cores/mod",
                    "ALM",
                    "REG",
                    "M20K",
                    "cyc/NTT",
                    "routable"
                ],
                &rows,
            )
        );
    }
    println!();
    println!("Reading: as m0 grows, ALM/REG drop (smaller MUX trees) while M20K");
    println!("rises (replicated data/output memories) — the paper picks m0 = min(k, 4).");
    println!("A single 64-core module is not routable (>32-core synthesis fails).");
}
