//! Fault-injection snapshot (PR 8): routes the fleet rotation-serving
//! workload (`heax_bench::cluster`) across a modeled multi-board
//! cluster while a seeded `heax_hw::faults::FaultPlan` crashes boards,
//! slows compute, stalls PCIe links, degrades DMA channels and corrupts
//! resident keys — sweeping fault-rate levels × board counts and
//! pinning the headline scenario (board 0 of 4 crashes at half the
//! healthy makespan). Writes the machine-readable `BENCH_faults.json`
//! snapshot (path overridable via `HEAX_BENCH_FAULTS_JSON`).
//!
//! Before any model figure is reported, the 8-client workload is served
//! functionally through a `HeaxServer` with the cluster model and a
//! crash-plus-key-corruption plan attached, and verified
//! decrypt-identical to the one-request-at-a-time loop — fault handling
//! must never perturb results.
//!
//! The committed snapshot at the repo root is the acceptance artifact:
//! losing 1 of 4 boards mid-run must retain ≥ 55% of the healthy
//! baseline's throughput.
//!
//! Usage: `bench_faults [budget_ms]` — the model is deterministic and
//! ignores the budget; the argument is accepted for harness uniformity.
//! `HEAX_BENCH_QUICK=1` shrinks the session count for CI smoke runs.

use heax_bench::cluster::ROUNDS;
use heax_bench::{bench_json, faults, fmt_ops, render_table, snapshot};

fn main() {
    // Functional leg first: decrypt-identical or nothing.
    eprintln!(
        "serving the 8-client workload through a faulted 4-board cluster model (n = {}) ...",
        faults::FUNCTIONAL_N
    );
    let functional = snapshot::checked_functional("bench_faults", || {
        let stats = faults::functional_pass(4, faults::CORES, faults::functional_plan());
        assert_eq!(
            stats.boards_alive, 3,
            "the functional plan must actually crash a board"
        );
        stats
    });
    println!(
        "functional pass: {} requests served while board 0 of {} crashed mid-flush \
         ({}/{} boards alive), verified decrypt-identical to the sequential loop",
        functional.modeled_requests, functional.boards, functional.boards_alive, functional.boards,
    );

    let records = faults::measure_suite();
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{:.2}", r.rate),
                r.boards.to_string(),
                format!("{}/{}", r.boards_alive, r.boards),
                fmt_ops(r.requests_per_sec),
                format!("{:.0}%", 100.0 * r.retention_vs_healthy),
                r.failovers.to_string(),
                r.re_replications.to_string(),
                r.corrupt_ksk_evictions.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "modeled cluster under injected faults: rotation-serving fleet",
            &[
                "scenario",
                "rate",
                "boards",
                "alive",
                "req/s",
                "retained",
                "failovers",
                "re-repl",
                "evictions"
            ],
            &rows,
        )
    );

    let retention = faults::acceptance_retention(&records);
    println!(
        "\nacceptance bar (lose 1 of 4 boards mid-run, >= 55% of healthy throughput): \
         {} ({:.0}% retained)",
        if retention >= 0.55 { "met" } else { "NOT met" },
        100.0 * retention,
    );

    let path = snapshot::path_from_env("HEAX_BENCH_FAULTS_JSON", "BENCH_faults.json");
    let json = bench_json::render_faults(
        &records,
        "Set-B",
        faults::sessions(),
        ROUNDS,
        faults::FUNCTIONAL_N,
        &functional,
    );
    snapshot::write_or_exit(&path, &json);
}
