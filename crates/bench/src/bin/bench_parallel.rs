//! Parallel-backend perf snapshot: measures sequential vs 2/4/8-lane NTT
//! round-trips and key switching at N = 4096/8192/16384, prints the
//! comparison table, and writes the machine-readable `BENCH_parallel.json`
//! snapshot (path overridable via the `HEAX_BENCH_JSON` environment
//! variable) so the perf trajectory can be tracked across PRs.
//!
//! Usage: `bench_parallel [budget_ms]` (default 300 ms per data point).

use heax_bench::{bench_json, snapshot};
use heax_bench::{fmt_ops, fmt_speedup, parallel, render_table};

fn main() {
    let budget_ms = snapshot::budget_from_args(300);
    let records = parallel::measure_suite(budget_ms);

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.op.clone(),
                r.n.to_string(),
                if r.threads == 1 {
                    "seq".into()
                } else {
                    r.threads.to_string()
                },
                fmt_ops(r.ops_per_sec),
                fmt_speedup(r.speedup_vs_sequential),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Parallel RNS-limb backend: sequential vs thread pool",
            &["op", "n", "threads", "ops/s", "vs seq"],
            &rows,
        )
    );
    println!(
        "\nhost parallelism: {} lane(s); speedups above 1.0 require a \
         multi-core host",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );

    let path = bench_json::default_path();
    let json = bench_json::render(&records, budget_ms);
    snapshot::write_or_exit(&path, &json);
}
