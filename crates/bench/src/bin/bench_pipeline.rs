//! Board-level pipeline snapshot (PR 5, v2 modes in PR 7): models the
//! 8-client × 8-rotation server workload on the board-level pipeline
//! scheduler (`heax::hw::scheduler`) at 1/2/4 HEAX cores for every
//! paper design point, in three transfer modes — full ciphertexts over
//! PCIe (`wire`), results parked in board DRAM (`dram`), and the v2
//! wire path (`wire-v2`: seeded uploads + one-limb compressed replies)
//! — and writes the machine-readable `BENCH_pipeline.json` snapshot
//! (path overridable via `HEAX_BENCH_PIPELINE_JSON`).
//!
//! Before any model figure is reported, the same workload is served
//! functionally through a `HeaxServer` with the board model attached
//! and verified decrypt-identical to the one-request-at-a-time loop —
//! the model must ride along without perturbing results.
//!
//! The committed snapshot at the repo root is the acceptance artifact:
//! the modeled 4-core board must show ≥ 2× the 1-core model on the
//! wire-return workload at Set-C (the paper's DRAM-streamed flagship
//! set), and the `wire-v2` rows must rescue at least two previously
//! `pcie-out`-bound wire points (`pipeline::v2_flip_count`).
//!
//! Usage: `bench_pipeline [budget_ms]` — the model is deterministic and
//! ignores the budget; the argument is accepted for harness uniformity.

use heax_bench::server::{CLIENTS, ROTATIONS_PER_CLIENT};
use heax_bench::{bench_json, fmt_ops, fmt_speedup, pipeline, render_table, snapshot};

fn main() {
    // Functional leg first: decrypt-identical or nothing.
    eprintln!(
        "serving the {CLIENTS}-client workload through the modeled backend (n = {}) ...",
        pipeline::FUNCTIONAL_N
    );
    let functional =
        snapshot::checked_functional("bench_pipeline", || pipeline::functional_pass(4));
    println!(
        "functional pass: {} requests served with the 4-core board model attached, \
         verified decrypt-identical to the sequential loop \
         (modeled {:.1} us -> {} req/s, bound: {})",
        functional.modeled_requests,
        functional.modeled_us(),
        fmt_ops(functional.modeled_requests_per_sec()),
        functional.last_bound,
    );

    let records = pipeline::model_suite();
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.set.clone(),
                r.n.to_string(),
                r.cores.to_string(),
                r.mode.clone(),
                fmt_ops(r.requests_per_sec),
                fmt_speedup(r.speedup_vs_1core),
                r.bound.clone(),
                format!("{:.0}%", 100.0 * r.core_utilization),
                r.fifo_high_water.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "modeled board pipeline: 8 clients x 8 hoisted rotations",
            &[
                "set",
                "n",
                "cores",
                "mode",
                "req/s",
                "vs 1-core",
                "bound",
                "core-util",
                "fifo-hw"
            ],
            &rows,
        )
    );

    let bar = pipeline::acceptance_speedup(&records);
    println!(
        "\nacceptance bar (Set-C wire-return, 4-core >= 2x 1-core): {} ({:.2}x)",
        if bar >= 2.0 { "met" } else { "NOT met" },
        bar
    );
    let flips = pipeline::v2_flip_count(&records);
    println!(
        "v2 acceptance bar (>= 2 pcie-out wire points rescued by wire-v2): {} ({flips} flipped)",
        if flips >= 2 { "met" } else { "NOT met" },
    );

    let path = snapshot::path_from_env("HEAX_BENCH_PIPELINE_JSON", "BENCH_pipeline.json");
    let json = bench_json::render_pipeline(
        &records,
        CLIENTS,
        ROTATIONS_PER_CLIENT,
        pipeline::FUNCTIONAL_N,
        &functional,
    );
    snapshot::write_or_exit(&path, &json);
}
