//! Table 3 — Resource consumption of each computation core.

use heax_bench::render_table;
use heax_hw::cores::CoreKind;

fn main() {
    let rows: Vec<Vec<String>> = CoreKind::ALL
        .iter()
        .map(|k| {
            let c = k.cost();
            vec![
                k.name().to_string(),
                c.dsp.to_string(),
                c.reg.to_string(),
                c.alm.to_string(),
                k.pipeline_stages().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 3: per-core resources (model = paper's measured values)",
            &["Core", "DSP", "REG", "ALM", "#Stages"],
            &rows,
        )
    );
    println!("\nThese are the paper's measured per-core costs, used as the unit");
    println!("costs of the resource model (DSP counts follow from the 54-bit");
    println!("datapath: a 54x54 product uses four 27-bit DSPs).");
}
