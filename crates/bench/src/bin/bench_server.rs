//! Server-subsystem perf snapshot (PR 4): serves an 8-client
//! rotation-heavy workload two ways — the seed's one-request-at-a-time
//! loop (keys deserialized per work unit, one key switch per rotation)
//! versus the `heax-server` batch scheduler (session key cache, one
//! hoisted decomposition per rotated ciphertext) — verifies the two are
//! decrypt-identical, prints the comparison table, and writes the
//! machine-readable `BENCH_server.json` snapshot (path overridable via
//! the `HEAX_BENCH_SERVER_JSON` environment variable).
//!
//! The committed snapshot at the repo root is the acceptance artifact:
//! `batched_server` must show ≥ 1.5× over `sequential_loop`.
//!
//! Usage: `bench_server [budget_ms]` (default 300 ms per data point;
//! `HEAX_BENCH_QUICK=1` restricts to n = 4096 for CI smoke).

use heax_bench::server::{CLIENTS, ROTATIONS_PER_CLIENT};
use heax_bench::{bench_json, fmt_ops, fmt_speedup, render_table, server, snapshot};

fn main() {
    let budget_ms = snapshot::budget_from_args(300);
    // The suite verifies batched results decrypt-identical to the
    // sequential loop before timing; route that through the shared gate
    // so a verification failure is a uniform exit-1 across bench_* bins.
    let (records, occupancy) =
        snapshot::checked_functional("bench_server", || server::measure_suite(budget_ms));

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.op.clone(),
                r.n.to_string(),
                r.clients.to_string(),
                r.threads.to_string(),
                fmt_ops(r.requests_per_sec),
                fmt_speedup(r.speedup_vs_sequential),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "heax-server batch scheduler vs one-request-at-a-time loop",
            &["op", "n", "clients", "threads", "req/s", "vs sequential"],
            &rows,
        )
    );
    println!(
        "\nworkload: {CLIENTS} clients x {ROTATIONS_PER_CLIENT} rotations each; \
         results verified decrypt-identical before timing; \
         measured batch occupancy {occupancy:.1} requests/flush"
    );
    let bar_met = records
        .iter()
        .filter(|r| r.op == "batched_server")
        .all(|r| r.speedup_vs_sequential >= 1.5);
    println!(
        "acceptance bar (batched_server >= 1.5x sequential_loop): {}",
        if bar_met {
            "met"
        } else {
            "NOT met on this host"
        }
    );

    let path = snapshot::path_from_env("HEAX_BENCH_SERVER_JSON", "BENCH_server.json");
    let json = bench_json::render_server(&records, budget_ms, ROTATIONS_PER_CLIENT, occupancy);
    snapshot::write_or_exit(&path, &json);
}
