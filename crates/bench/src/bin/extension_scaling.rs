//! Extension — projecting HEAX beyond the paper's parameter range.
//!
//! The paper stops at `n = 2^14` ("choosing 2^15 (or higher) results in
//! enormous computation blow-up and are also rarely used in practice").
//! The architecture derivation and resource/performance models are fully
//! parametric, so this harness answers: what *would* a Set-D (`n = 2^15`,
//! bootstrapping-class modulus) instantiation look like on the Stratix 10,
//! and on a hypothetical board with twice its resources?

use heax_bench::render_table;
use heax_core::arch::arch_for_intt0;
use heax_core::resources::{base_design_resources, design_resources, ksk_bram, KskPlacement};
use heax_hw::board::Board;
use heax_hw::xfer::DramModel;

fn main() {
    // Sweep (n, k) from the paper's sets up to Set-D: n = 2^15, k = 16
    // (a ~880-bit modulus, the bootstrapping-capable regime).
    let s10 = Board::stratix10();
    let mut rows = Vec::new();
    for (name, n, k) in [
        ("Set-A", 1usize << 12, 2usize),
        ("Set-B", 1 << 13, 4),
        ("Set-C", 1 << 14, 8),
        ("Set-D*", 1 << 15, 16),
    ] {
        // Re-run the automatic derivation loop at this scale.
        let mut chosen = None;
        for log_nc in (0..=5u32).rev() {
            let arch = arch_for_intt0(n, k, 1 << log_nc);
            if arch.validate().is_err() {
                continue;
            }
            let placement = KskPlacement::choose(&s10, &arch);
            let total = design_resources(&s10, &arch, placement);
            if total.fits_within(s10.budget()) {
                chosen = Some((arch, placement, total));
                break;
            }
        }
        match chosen {
            Some((arch, placement, total)) => {
                let interval = arch.steady_interval_cycles();
                let ops = s10.cycles_to_ops_per_sec(interval);
                let interval_us = interval as f64 / s10.freq_hz() * 1e6;
                let dram_ok = DramModel::for_board(&s10).sustains_ksk(n, k, interval_us);
                rows.push(vec![
                    name.to_string(),
                    format!("2^{}", n.trailing_zeros()),
                    k.to_string(),
                    arch.summary(),
                    format!("{:?}", placement),
                    format!("{:.0}%", 100.0 * total.alm as f64 / s10.budget().alm as f64),
                    format!("{ops:.0}"),
                    if dram_ok {
                        "ok".into()
                    } else {
                        "INSUFFICIENT".into()
                    },
                ]);
            }
            None => rows.push(vec![
                name.to_string(),
                format!("2^{}", n.trailing_zeros()),
                k.to_string(),
                "does not fit".to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print!(
        "{}",
        render_table(
            "Extension: scaling the derivation beyond the paper (Stratix 10)",
            &[
                "Set",
                "n",
                "k",
                "derived architecture",
                "ksk",
                "ALM",
                "KeySwitch/s",
                "DRAM BW"
            ],
            &rows,
        )
    );

    // The DRAM feasibility cliff for Set-D.
    let n = 1usize << 15;
    let k = 16usize;
    let arch = arch_for_intt0(n, k, 8);
    let interval_us = arch.steady_interval_cycles() as f64 / s10.freq_hz() * 1e6;
    println!();
    println!(
        "Set-D* ksk = {:.0} Mb per op; at a {:.0} us interval the stream needs {:.1} GBps \
         (Stratix 10 has {:.0}).",
        DramModel::ksk_bits(n, k) as f64 / 1e6,
        interval_us,
        DramModel::required_ksk_gbps(n, k, interval_us),
        s10.dram_bandwidth_gbps(),
    );
    let base = base_design_resources(&s10, &arch);
    let with_keys = base + ksk_bram(n, k);
    println!(
        "on-chip keys would need {} M20K of the chip's {} — off-chip is forced.",
        with_keys.m20k,
        s10.budget().m20k
    );
    println!();
    println!("(*) Set-D is this reproduction's extrapolation, not a paper configuration.");
}
