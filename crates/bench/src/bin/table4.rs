//! Table 4 — Resource consumption and cycle counts of the basic modules
//! at 4/8/16/32 cores.
//!
//! Two sources are printed side by side:
//! * the calibrated model of `heax_core::resources::module_cost` (exact at
//!   the calibration points, by construction);
//! * the dataflow simulators' cycle counts, next to the paper's "Cycles"
//!   column — which, as documented in DESIGN.md, matches `n = 2^12` for
//!   NTT/INTT even though the BRAM figures are quoted for Set-B
//!   (`n = 2^13`), and is a further 2× lower for the 16/32-core MULT rows.

use heax_bench::render_table;
use heax_core::resources::{module_cost, ModuleKind};
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;

fn main() {
    let n_bram = 8192; // BRAM figures quoted for Set-B
    let n_cycles = 4096; // cycle figures consistent with n = 2^12

    let paper_cycles_mult = [1024u64, 512, 128, 64];
    let paper_cycles_ntt = [6144u64, 3072, 1536, 768];

    for (kind, label, paper_cycles) in [
        (ModuleKind::Mult, "MULT", &paper_cycles_mult),
        (ModuleKind::Ntt, "NTT", &paper_cycles_ntt),
        (ModuleKind::Intt, "INTT", &paper_cycles_ntt),
    ] {
        let mut rows = Vec::new();
        for (i, cores) in [4usize, 8, 16, 32].into_iter().enumerate() {
            let r = module_cost(kind, cores, n_bram);
            let model_cycles = match kind {
                ModuleKind::Mult => MultModuleConfig::new(n_cycles, cores)
                    .expect("valid")
                    .pair_cycles(),
                _ => NttModuleConfig::new(n_cycles, cores)
                    .expect("valid")
                    .transform_cycles(),
            };
            rows.push(vec![
                cores.to_string(),
                r.dsp.to_string(),
                r.reg.to_string(),
                r.alm.to_string(),
                r.bram_bits.to_string(),
                r.m20k.to_string(),
                model_cycles.to_string(),
                paper_cycles[i].to_string(),
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!("Table 4: {label} module (BRAM @ n=2^13; cycles @ n=2^12)"),
                &[
                    "#Cores",
                    "DSP",
                    "REG",
                    "ALM",
                    "BRAM bits",
                    "#M20K",
                    "model cyc",
                    "paper cyc"
                ],
                &rows,
            )
        );
    }
    println!();
    println!("Formulas: NTT/INTT n*log n/(2*nc); MULT pair n/nc. The paper's");
    println!("16/32-core MULT cycle entries are 2x below the formula (its 4/8-core");
    println!("entries match); Tables 7-8 confirm the formulas — see EXPERIMENTS.md.");
}
