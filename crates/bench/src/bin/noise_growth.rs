//! Extension — empirical noise growth across the modulus chain.
//!
//! CKKS correctness (and therefore everything Tables 7/8 measure) rests on
//! noise staying far below the scale. This harness measures slot error
//! after each operation of a multiply-rescale ladder on every parameter
//! set, demonstrating that the reproduction's noise behaviour is sane:
//! error grows roughly linearly in the number of relinearizations and the
//! budget shrinks by ~log2(p) per rescale.

use heax_bench::render_table;
use heax_ckks::noise::measure_noise_real;
use heax_ckks::{
    CkksContext, CkksEncoder, CkksParams, Encryptor, Evaluator, ParamSet, PublicKey, RelinKey,
    SecretKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    for set in ParamSet::ALL {
        eprintln!("preparing {set} ...");
        let ctx = CkksContext::new(CkksParams::from_set(set).expect("params")).expect("ctx");
        let mut rng = StdRng::seed_from_u64(7);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let eval = Evaluator::new(&ctx);
        let scale = ctx.params().scale();

        // Square repeatedly with full scale management: after each
        // square+rescale the scale has drifted from Δ (the rescaling prime
        // is not exactly Δ), so we renormalize by multiplying with 1.0
        // encoded at a compensating scale — the standard production
        // technique (costs one extra level per step). Without this, the
        // scale collapses below 1 after ~3 levels and quantization error
        // explodes; with it, error grows gently.
        let x = 1.1f64;
        let mut ct = Encryptor::new(&ctx, &pk)
            .encrypt(
                &enc.encode_real(&[x], scale, ctx.max_level())
                    .expect("encode"),
                &mut rng,
            )
            .expect("encrypt");
        let mut expect = x;
        let mut rows = Vec::new();
        let fresh = measure_noise_real(&ctx, &sk, &ct, &[expect]).expect("noise");
        rows.push(vec![
            "fresh".to_string(),
            ct.level().to_string(),
            format!("{:.1}", fresh.log2_max_error),
            format!("{:.1}", fresh.budget_bits),
        ]);
        let mut power = 1u32;
        while ct.level() > 0 {
            ct = eval
                .rescale(&eval.multiply_relin(&ct, &ct, &rlk).expect("mult"))
                .expect("rescale");
            expect *= expect;
            power *= 2;
            // Renormalize the scale to Δ if a level remains for it.
            if ct.level() > 0 && !heax_ckks::eval::scales_match(ct.scale(), scale) {
                let p_l = ctx.moduli()[ct.level()].value() as f64;
                let one = enc
                    .encode_scalar(1.0, p_l * scale / ct.scale(), ct.level())
                    .expect("encode one");
                ct = eval
                    .rescale(&eval.multiply_plain(&ct, &one).expect("align"))
                    .expect("rescale align");
            }
            let rep = measure_noise_real(&ctx, &sk, &ct, &[expect]).expect("noise");
            rows.push(vec![
                format!("square -> x^{power} (+renorm)"),
                ct.level().to_string(),
                format!("{:.1}", rep.log2_max_error),
                format!("{:.1}", rep.budget_bits),
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!(
                    "Noise growth ladder — {set} (scale 2^{})",
                    scale.log2() as u32
                ),
                &["operation", "level", "log2 max err", "budget bits"],
                &rows,
            )
        );
    }
    println!();
    println!("Budget bits = log2(q_l) - 1 - log2(scale) - log2(max err): the headroom");
    println!("left before decryption fails. Each level trades ~one prime's bits of");
    println!("modulus; with per-step scale renormalization the error stays small");
    println!("until the chain is exhausted.");
}
