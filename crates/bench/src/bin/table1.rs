//! Table 1 — Summary of FPGA boards' specifications.

use heax_bench::render_table;
use heax_hw::board::Board;

fn main() {
    let rows: Vec<Vec<String>> = [Board::arria10(), Board::stratix10()]
        .iter()
        .map(|b| {
            vec![
                b.name().to_string(),
                b.chip().to_string(),
                b.budget().dsp.to_string(),
                format!("{:.2}M", b.budget().reg as f64 / 1e6),
                format!("{}K", b.budget().alm / 1000),
                format!("{}Mb", b.budget().bram_bits >> 20),
                format!("{:.1}K", b.budget().m20k as f64 / 1000.0),
                b.dram_channels().to_string(),
                format!("{:.0}", b.dram_bandwidth_gbps()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 1: FPGA board specifications",
            &[
                "Board",
                "Chip",
                "DSP",
                "REG",
                "ALM",
                "BRAM bits",
                "#M20K",
                "#chnl",
                "BW (GBps)"
            ],
            &rows,
        )
    );
    println!(
        "\nPaper values: Arria 10 — 1518 DSP, 1.71M REG, 427K ALM, 53Mb, 2.7K M20K, 2 ch, 34 GBps"
    );
    println!("              Stratix 10 — 5760 DSP, 3.73M REG, 933K ALM, 229Mb, 11.7K M20K, 4 ch, 64 GBps");
}
