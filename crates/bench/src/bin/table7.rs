//! Table 7 — low-level operations per second: CPU (measured here) vs HEAX
//! (deterministic model), next to the paper's published figures.
//!
//! Absolute CPU numbers differ from the paper's Xeon Silver 4108 — what
//! must reproduce is the *shape*: HEAX beats the CPU by an order of
//! magnitude on every low-level op, with ratios growing slightly with the
//! parameter set.

use heax_bench::{fmt_ops, fmt_speedup, measure_ops_per_sec, render_table, workloads};
use heax_core::arch::DesignPoint;
use heax_core::perf::{estimate, paper_cpu_ops_per_sec, paper_heax_ops_per_sec, HeaxOp};
use heax_hw::board::Board;

fn main() {
    let budget_ms = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    let mut rows = Vec::new();
    for dp in DesignPoint::paper_rows() {
        eprintln!("preparing {} / {} ...", dp.board.name(), dp.set);
        let w = workloads::prepare(dp.set);
        for op in [HeaxOp::Ntt, HeaxOp::Intt, HeaxOp::Dyadic] {
            let cpu = match op {
                HeaxOp::Ntt => {
                    let table = w.ctx.ntt_table(0).clone();
                    let mut buf = w.residue.clone();
                    // SEAL-style lazy kernel — what the library itself uses.
                    measure_ops_per_sec(|| table.forward_auto(&mut buf), budget_ms)
                }
                HeaxOp::Intt => {
                    let table = w.ctx.ntt_table(0).clone();
                    let mut buf = w.residue_ntt.clone();
                    measure_ops_per_sec(|| table.inverse_auto(&mut buf), budget_ms)
                }
                HeaxOp::Dyadic => {
                    let m = w.ctx.moduli()[0];
                    let a = w.residue_ntt.clone();
                    let mut b = w.residue.clone();
                    measure_ops_per_sec(
                        || {
                            for (x, y) in b.iter_mut().zip(&a) {
                                *x = m.mul_mod(*x, *y);
                            }
                        },
                        budget_ms,
                    )
                }
                _ => unreachable!(),
            };
            let heax = estimate(&dp, op);
            let paper_cpu = paper_cpu_ops_per_sec(dp.set, op);
            let paper_heax = paper_heax_ops_per_sec(&dp.board, dp.set, op).expect("row");
            rows.push(vec![
                format!("{}/{}", dp.board.name(), dp.set),
                op.name().to_string(),
                fmt_ops(cpu),
                fmt_ops(heax.ops_per_sec),
                fmt_speedup(heax.ops_per_sec / cpu),
                fmt_ops(paper_cpu),
                fmt_ops(paper_heax),
                fmt_speedup(paper_heax / paper_cpu),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Table 7: low-level ops/second — this repro vs paper",
            &[
                "Design",
                "Op",
                "our CPU",
                "HEAX model",
                "speedup",
                "paper CPU",
                "paper HEAX",
                "paper spd"
            ],
            &rows,
        )
    );
    println!();
    println!("HEAX-model column is deterministic (cycles/frequency) and matches the");
    println!("paper's HEAX column to <0.1% on all rows. CPU columns differ by host.");
    let _ = Board::stratix10();
}
