//! Figure 6 — the KeySwitch pipeline schedule: an ASCII Gantt chart of
//! several overlapped KeySwitch operations on the Stratix 10 / Set-B
//! architecture, plus station utilization.

use heax_core::arch::DesignPoint;
use heax_hw::board::Board;
use heax_hw::keyswitch_pipeline::schedule;

fn main() {
    let dp = DesignPoint::derive(Board::stratix10(), heax_ckks::ParamSet::SetB).expect("fits");
    let arch = dp.arch;
    let ops = 4;
    let sched = schedule(&arch, ops).expect("valid arch");

    println!("KeySwitch pipeline, {} ({})", dp.set, arch.summary());
    println!(
        "steady interval = {} cycles ({:.1} us at {} MHz) -> {:.0} KeySwitch/s\n",
        sched.steady_interval,
        sched.steady_interval as f64 / dp.board.freq_hz() * 1e6,
        dp.board.freq_mhz(),
        dp.board.cycles_to_ops_per_sec(sched.steady_interval),
    );
    let horizon = sched.op_completion[ops - 1];
    println!(
        "Gantt ({} cycles, digits = op index; k = {} iterations per op):",
        horizon, arch.k
    );
    print!("{}", sched.gantt(horizon, 110));

    println!("\nStation busy cycles over {horizon} total:");
    let mut busy = sched.station_busy();
    busy.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (station, cycles) in busy {
        println!(
            "  {:10} {:>8} cycles ({:.0}%)",
            station.to_string(),
            cycles,
            100.0 * cycles as f64 / horizon as f64
        );
    }
    println!(
        "\nBuffering: f1 = {} input-poly buffers (quadruple buffering of §5.2), \
         f2 = {} accumulator buffers.",
        arch.f1(),
        arch.f2()
    );
    println!(
        "measured demand from the schedule: input buffers {} (+1 PCIe write-ahead), \
         accumulator buffers {} — both within the f1/f2 provisioning.",
        sched.input_buffers_needed(),
        sched.accumulator_buffers_needed()
    );
    println!(
        "first-op latency = {} cycles (pipeline fill + drain)",
        sched.first_op_latency
    );
}
