//! Convenience runner: regenerates every table and figure in sequence by
//! invoking the sibling binaries. `cargo run -p heax-bench --release --bin
//! repro [cpu_budget_ms]`.

use std::process::Command;

fn main() {
    let budget = std::env::args().nth(1).unwrap_or_else(|| "200".into());
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "figure2",
        "figure4",
        "figure6",
        "ablation_wordsize",
        "ablation_modules",
        "ablation_ntt",
        "bench_parallel",
        "bench_pipeline",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(dir.join(bin))
            .arg(&budget)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll tables and figures regenerated.");
}
