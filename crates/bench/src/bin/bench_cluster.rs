//! Fleet-scale cluster routing snapshot: routes a many-session
//! rotation-serving stream across 1/2/4 modeled HEAX boards
//! (`heax_hw::cluster`) under session→board key affinity versus random
//! spraying, sweeping sessions × boards × cores at Set-B, prints the
//! comparison table, and writes the machine-readable
//! `BENCH_cluster.json` snapshot (path overridable via the
//! `HEAX_BENCH_CLUSTER_JSON` environment variable).
//!
//! The committed snapshot at the repo root is the acceptance artifact:
//! affinity routing must show ≥ 1.5× random's requests/sec at the
//! 10 000-session, 4-board, 4-core sweep point, with the routing-miss
//! and key-replication-bytes breakdown alongside.
//!
//! Usage: `bench_cluster [budget_ms]` — the model is deterministic and
//! ignores the budget; the argument is accepted for harness
//! uniformity. `HEAX_BENCH_QUICK=1` shrinks the session sweep for CI
//! smoke.

use heax_bench::cluster::{self, ROUNDS, SET};
use heax_bench::{bench_json, fmt_ops, fmt_speedup, render_table, snapshot};

fn main() {
    let records = cluster::measure_suite();

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.sessions.to_string(),
                r.boards.to_string(),
                r.cores.to_string(),
                fmt_ops(r.requests_per_sec),
                fmt_speedup(r.speedup_vs_random),
                r.routing_misses.to_string(),
                format!("{:.1}", r.replication_bytes as f64 / 1e9),
                r.steals.to_string(),
                format!("{:.0}%", 100.0 * r.mean_utilization),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("modeled board cluster at {SET}: affinity vs random routing"),
            &[
                "policy",
                "sessions",
                "boards",
                "cores",
                "req/s",
                "vs random",
                "misses",
                "repl-GB",
                "steals",
                "mean-util"
            ],
            &rows,
        )
    );
    println!(
        "\nworkload: each session submits {ROUNDS} wire-return rotations, \
         round-robin interleaved; every routing miss replicates the \
         session's key-switching key to the chosen board first"
    );

    let bar = cluster::acceptance_speedup(&records);
    println!(
        "acceptance bar (affinity >= 1.5x random at the largest \
         4-board, 4-core point): {} ({:.2}x)",
        if bar >= 1.5 { "met" } else { "NOT met" },
        bar
    );

    let path = snapshot::path_from_env("HEAX_BENCH_CLUSTER_JSON", "BENCH_cluster.json");
    let json = bench_json::render_cluster(&records, &SET.to_string(), ROUNDS);
    snapshot::write_or_exit(&path, &json);
}
