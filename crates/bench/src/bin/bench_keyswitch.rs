//! Key-switch hot-path perf snapshot (PR 3): measures the Shoup-table
//! key switch against the seed Barrett reference, a single rotation, and
//! the hoisted `rotate_many` batch at N = 4096/8192/16384, prints the
//! comparison table, and writes the machine-readable
//! `BENCH_keyswitch.json` snapshot (path overridable via the
//! `HEAX_BENCH_KS_JSON` environment variable).
//!
//! The committed snapshot at the repo root is the acceptance artifact:
//! `rotate_manyN_per_rotation` must show ≥ 2× over sequential `rotate`
//! at N = 8192.
//!
//! Usage: `bench_keyswitch [budget_ms]` (default 300 ms per data point;
//! `HEAX_BENCH_QUICK=1` restricts to N = 4096 for CI smoke).

use heax_bench::keyswitch::{self, ROTATE_STEPS};
use heax_bench::{bench_json, fmt_ops, fmt_speedup, render_table, snapshot};

fn main() {
    let budget_ms = snapshot::budget_from_args(300);
    let records = keyswitch::measure_suite(budget_ms);

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.op.clone(),
                r.n.to_string(),
                r.threads.to_string(),
                fmt_ops(r.ops_per_sec),
                fmt_speedup(r.speedup_vs_baseline),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Key-switch hot path: Shoup keys + hoisted rotation vs seed",
            &["op", "n", "threads", "ops/s", "vs baseline"],
            &rows,
        )
    );
    println!(
        "\nbaselines: key_switch_barrett (seed Barrett path) and rotate \
         (sequential key switch per rotation); rotate_many{ROTATE_STEPS}_per_rotation \
         >= 2.0x at n = 8192 is the PR 3 acceptance bar"
    );

    let path = snapshot::path_from_env("HEAX_BENCH_KS_JSON", "BENCH_keyswitch.json");
    let json = bench_json::render_keyswitch(&records, budget_ms, ROTATE_STEPS);
    snapshot::write_or_exit(&path, &json);
}
