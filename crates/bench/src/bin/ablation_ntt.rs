//! Ablation — CPU NTT kernel styles: the paper-faithful Algorithm 3
//! (full reduction per butterfly) vs the Harvey lazy-reduction variant
//! SEAL's production kernels use. Quantifies how much of the CPU
//! baseline's headroom is kernel engineering rather than algorithm.

use heax_bench::{fmt_ops, measure_ops_per_sec, render_table};
use heax_math::ntt::NttTable;
use heax_math::primes::generate_ntt_primes;
use heax_math::word::Modulus;

fn main() {
    let budget_ms = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    let mut rows = Vec::new();
    for n in [4096usize, 8192, 16384] {
        let p = generate_ntt_primes(48, 1, n).expect("primes")[0];
        let table = NttTable::new(n, Modulus::new(p).expect("modulus")).expect("table");
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p)
            .collect();

        let mut buf = input.clone();
        let standard = measure_ops_per_sec(|| table.forward(&mut buf), budget_ms);
        let mut buf = input.clone();
        let lazy = measure_ops_per_sec(|| table.forward_lazy(&mut buf), budget_ms);

        rows.push(vec![
            n.to_string(),
            fmt_ops(standard),
            fmt_ops(lazy),
            format!("{:.2}x", lazy / standard),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: CPU forward-NTT kernel (ops/s, single residue)",
            &["n", "Algorithm 3 (strict)", "Harvey lazy", "lazy gain"],
            &rows,
        )
    );
    println!();
    println!("Both kernels produce bit-identical output (tested). The lazy variant");
    println!("defers modular correction across stages, approximating SEAL's");
    println!("production kernel; the Table 7 CPU baseline uses the strict kernel.");
}
