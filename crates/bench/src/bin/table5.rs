//! Table 5 — KeySwitch architecture parameters, derived automatically.

use heax_bench::render_table;
use heax_core::arch::DesignPoint;

fn main() {
    let paper = [
        "1xINTT(8) -> 2xNTT(8) -> 3xDyad(4) -> 2xINTT(4) -> 2xNTT(8) -> 2xMult(2)",
        "1xINTT(16) -> 2xNTT(16) -> 3xDyad(8) -> 2xINTT(8) -> 2xNTT(16) -> 2xMult(4)",
        "1xINTT(16) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(4) -> 2xNTT(16) -> 2xMult(4)",
        "1xINTT(8) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(1) -> 2xNTT(8) -> 2xMult(4)",
    ];
    let mut rows = Vec::new();
    for (dp, paper_row) in DesignPoint::paper_rows().iter().zip(paper) {
        let derived = dp.arch.summary();
        rows.push(vec![
            dp.board
                .chip()
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string(),
            dp.set.to_string(),
            derived.clone(),
            if derived == paper_row {
                "exact".into()
            } else {
                "DIFFERS".into()
            },
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table 5: derived KeySwitch architectures (vs paper)",
            &["FPGA", "Set", "derived architecture", "vs paper"],
            &rows,
        )
    );
    println!();
    for dp in DesignPoint::paper_rows() {
        println!(
            "{:10} {}: f1 = {}, f2 = {}, steady interval = {} cycles, ksk in {:?}",
            dp.board.name(),
            dp.set,
            dp.arch.f1(),
            dp.arch.f2(),
            dp.arch.steady_interval_cycles(),
            dp.ksk_placement,
        );
    }
}
