//! Figure 4 — basic vs optimized (two-stage read/compute/write) NTT
//! pipeline: core utilization and cycle counts.

use heax_bench::render_table;
use heax_hw::ntt_dataflow::NttModuleConfig;

fn main() {
    let mut rows = Vec::new();
    for (n, nc) in [
        (4096usize, 8usize),
        (4096, 16),
        (8192, 16),
        (16384, 8),
        (16384, 16),
    ] {
        let cfg = NttModuleConfig::new(n, nc).expect("valid");
        rows.push(vec![
            n.to_string(),
            nc.to_string(),
            cfg.transform_cycles_basic().to_string(),
            cfg.transform_cycles().to_string(),
            format!("{:.0}%", 100.0 * cfg.basic_pipeline_utilization()),
            "100%".to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Figure 4: NTT pipeline — basic (50% Type-1 bubble) vs optimized",
            &[
                "n",
                "ncNTT",
                "basic cyc",
                "opt cyc",
                "basic util",
                "opt util"
            ],
            &rows,
        )
    );
    println!();
    println!("The optimized pipeline doubles ME width (2*nc coefficients) so two");
    println!("reads feed two computes and two writes back-to-back, removing the");
    println!("50% bubble of Type-1 stages (first log n - log nc - 1 stages).");
}
