//! Ablation — 54-bit vs 64-bit native word size (Section 4).
//!
//! Reproduces the paper's claim that switching from 64- to 54-bit native
//! operations saves 1.4×–2.25× DSPs across the HE parameter sets, after
//! accounting for the possible increase in RNS modulus count.

use heax_bench::render_table;
use heax_ckks::ParamSet;
use heax_hw::wordsize::{
    datapath_dsp_cost, dsps_per_multiplier, moduli_needed, reduction_factor, MultiplierStyle,
};

fn main() {
    println!("single multiplier cost (27-bit DSP tiles):");
    println!(
        "  54x54 naive: {} DSPs | 64x64 naive: {} DSPs | 64x64 Toom-Cook: {} DSPs",
        dsps_per_multiplier(54, MultiplierStyle::Naive),
        dsps_per_multiplier(64, MultiplierStyle::Naive),
        dsps_per_multiplier(64, MultiplierStyle::ToomCook),
    );

    let mut rows = Vec::new();
    for set in ParamSet::ALL {
        let bits = set.total_modulus_bits();
        rows.push(vec![
            set.name().to_string(),
            bits.to_string(),
            moduli_needed(bits, 54).to_string(),
            moduli_needed(bits, 64).to_string(),
            datapath_dsp_cost(bits, 54, MultiplierStyle::Naive).to_string(),
            datapath_dsp_cost(bits, 64, MultiplierStyle::Naive).to_string(),
            datapath_dsp_cost(bits, 64, MultiplierStyle::ToomCook).to_string(),
            format!("{:.2}x", reduction_factor(bits, MultiplierStyle::Naive)),
            format!("{:.2}x", reduction_factor(bits, MultiplierStyle::ToomCook)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: word size — DSPs per modular-multiplier array",
            &[
                "Set",
                "mod bits",
                "k@54",
                "k@64",
                "DSP@54",
                "DSP@64 naive",
                "DSP@64 TC",
                "red. naive",
                "red. TC"
            ],
            &rows,
        )
    );
    println!();
    println!("Paper: \"by switching from 64-bit native operations to 54-bit, we");
    println!("observe between 1.4x to 2.25x reduction in the number of DSP units\".");
}
