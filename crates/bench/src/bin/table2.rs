//! Table 2 — HE parameter sets, with the concrete generated prime chains.

use heax_bench::render_table;
use heax_ckks::{CkksParams, ParamSet};

fn main() {
    let mut rows = Vec::new();
    for set in ParamSet::ALL {
        let p = CkksParams::from_set(set).expect("built-in set");
        rows.push(vec![
            set.name().to_string(),
            format!("2^{}", p.n().trailing_zeros()),
            p.total_modulus_bits().to_string(),
            p.k().to_string(),
            format!("2^{}", (p.scale()).log2() as u32),
            p.moduli()
                .iter()
                .map(|&q| format!("{}b", 64 - q.leading_zeros()))
                .collect::<Vec<_>>()
                .join("+"),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table 2: HE parameter sets (plus generated chains)",
            &[
                "Set",
                "n",
                "log qp +1",
                "k",
                "scale",
                "prime chain (last = special)"
            ],
            &rows,
        )
    );
    println!("\nPaper: Set-A (2^12, 109, 2), Set-B (2^13, 218, 4), Set-C (2^14, 438, 8).");
    println!("All primes satisfy p = 1 mod 2n and p < 2^52 (54-bit datapath bound).");
}
