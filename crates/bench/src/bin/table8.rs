//! Table 8 — high-level operations per second (KeySwitch, MULT+ReLin):
//! CPU (measured) vs HEAX (model), plus the §5.1 DRAM bandwidth check.

use heax_bench::{fmt_ops, fmt_speedup, measure_ops_per_sec, render_table, workloads};
use heax_ckks::Evaluator;
use heax_core::arch::DesignPoint;
use heax_core::perf::{estimate, paper_cpu_ops_per_sec, paper_heax_ops_per_sec, HeaxOp};
use heax_hw::xfer::DramModel;

fn main() {
    let budget_ms = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500u64);
    let mut rows = Vec::new();
    for dp in DesignPoint::paper_rows() {
        eprintln!("preparing {} / {} ...", dp.board.name(), dp.set);
        let w = workloads::prepare(dp.set);
        let eval = Evaluator::new(&w.ctx);
        for op in [HeaxOp::KeySwitch, HeaxOp::MultRelin] {
            let cpu = match op {
                HeaxOp::KeySwitch => measure_ops_per_sec(
                    || {
                        let _ = eval
                            .key_switch(w.ct_prod.component(2), w.rlk.ksk(), w.ct_prod.level())
                            .expect("keyswitch");
                    },
                    budget_ms,
                ),
                HeaxOp::MultRelin => measure_ops_per_sec(
                    || {
                        let _ = eval
                            .multiply_relin(&w.ct_a, &w.ct_b, &w.rlk)
                            .expect("multiply_relin");
                    },
                    budget_ms,
                ),
                _ => unreachable!(),
            };
            let heax = estimate(&dp, op);
            let paper_cpu = paper_cpu_ops_per_sec(dp.set, op);
            let paper_heax = paper_heax_ops_per_sec(&dp.board, dp.set, op).expect("row");
            rows.push(vec![
                format!("{}/{}", dp.board.name(), dp.set),
                op.name().to_string(),
                fmt_ops(cpu),
                fmt_ops(heax.ops_per_sec),
                fmt_speedup(heax.ops_per_sec / cpu),
                fmt_ops(paper_cpu),
                fmt_ops(paper_heax),
                fmt_speedup(paper_heax / paper_cpu),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Table 8: high-level ops/second — this repro vs paper",
            &[
                "Design",
                "Op",
                "our CPU",
                "HEAX model",
                "speedup",
                "paper CPU",
                "paper HEAX",
                "paper spd"
            ],
            &rows,
        )
    );

    // §5.1 footer: ksk streaming feasibility for Set-C.
    println!();
    println!("-- Section 5.1 DRAM check (Set-C keys streamed from DRAM) --");
    let dp = DesignPoint::paper_rows().into_iter().last().expect("set-c");
    let interval_us = estimate(&dp, HeaxOp::KeySwitch).op_us;
    let required = DramModel::required_ksk_gbps(dp.set.n(), dp.set.k(), interval_us);
    let dram = DramModel::for_board(&dp.board);
    println!(
        "ksk size = {:.1} Mb, KeySwitch interval = {:.0} us -> required BW = {:.2} GBps; \
         available = {:.0} GBps over {} channels -> {}",
        DramModel::ksk_bits(dp.set.n(), dp.set.k()) as f64 / 1e6,
        interval_us,
        required,
        dram.bandwidth_gbps,
        dram.channels,
        if dram.sustains_ksk(dp.set.n(), dp.set.k(), interval_us) {
            "SUSTAINED (paper: 49.28 GBps < 64 GBps)"
        } else {
            "NOT SUSTAINED"
        }
    );
}
