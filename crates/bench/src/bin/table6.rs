//! Table 6 — Resource consumption of the complete design per parameter
//! set, model vs paper.

use heax_bench::{fmt_delta, render_table};
use heax_core::arch::DesignPoint;

struct PaperRow {
    dsp: u64,
    reg: u64,
    alm: u64,
    /// Paper's BRAM-bits figure (printed in the footer).
    bram_bits: u64,
    m20k: u64,
    freq: u64,
}

fn main() {
    // Paper Table 6 rows: Arria/Set-A, Stratix/Set-A, Set-B, Set-C.
    let paper = [
        PaperRow {
            dsp: 1185,
            reg: 723_188,
            alm: 246_323,
            bram_bits: 26_596_320,
            m20k: 1731,
            freq: 275,
        },
        PaperRow {
            dsp: 2018,
            reg: 1_554_005,
            alm: 582_148,
            bram_bits: 26_907_592,
            m20k: 3986,
            freq: 300,
        },
        PaperRow {
            dsp: 2610,
            reg: 1_976_162,
            alm: 698_884,
            bram_bits: 201_332_624,
            m20k: 10_340,
            freq: 300,
        },
        PaperRow {
            dsp: 2370,
            reg: 1_746_384,
            alm: 599_715,
            bram_bits: 182_847_524,
            m20k: 9329,
            freq: 300,
        },
    ];

    let mut rows = Vec::new();
    for (dp, p) in DesignPoint::paper_rows().iter().zip(&paper) {
        let r = dp.resources();
        let budget = dp.board.budget();
        let u = r.utilization_pct(budget);
        rows.push(vec![
            format!("{}/{}", dp.board.name(), dp.set),
            format!("{} ({:.0}%)", r.dsp, u.dsp),
            fmt_delta(r.dsp as f64, p.dsp as f64),
            format!("{} ({:.0}%)", r.reg, u.reg),
            fmt_delta(r.reg as f64, p.reg as f64),
            format!("{} ({:.0}%)", r.alm, u.alm),
            fmt_delta(r.alm as f64, p.alm as f64),
            format!("{} ({:.0}%)", r.m20k, u.m20k),
            fmt_delta(r.m20k as f64, p.m20k as f64),
            format!("{}", p.freq),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table 6: complete-design resources — model (vs paper delta)",
            &["Design", "DSP", "dDSP", "REG", "dREG", "ALM", "dALM", "M20K", "dM20K", "Freq MHz"],
            &rows,
        )
    );
    println!();
    for (dp, p) in DesignPoint::paper_rows().iter().zip(&paper) {
        let r = dp.resources();
        println!(
            "{}/{}: BRAM bits model {} vs paper {} ({})",
            dp.board.name(),
            dp.set,
            r.bram_bits,
            p.bram_bits,
            fmt_delta(r.bram_bits as f64, p.bram_bits as f64)
        );
    }
    println!();
    println!("DSP is derived purely from core counts and matches the paper exactly for");
    println!("three of four rows (Set-C differs by 60 DSP = six 10-DSP cores; the");
    println!("paper's Table 5 INTT(1) row and Table 6 DSP count disagree internally).");
    println!("REG/ALM use Table 4 module calibration; BRAM is modeled from the bank");
    println!("inventory and is the least certain column (ksk bank replication for");
    println!("parallel DyadMult reads is not specified in the paper).");
}
