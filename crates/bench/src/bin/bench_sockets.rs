//! Real-socket serving snapshot (PR 10): drives a fleet of virtual
//! sessions over loopback TCP connections into the epoll-based
//! `heax_server::net::NetServer` event loop and measures the transport
//! end to end — closed-loop latency at low concurrency, Poisson
//! open-loop arrivals at half the measured saturation rate, and the
//! zero-think saturation throughput of the full connection pool.
//! Writes the machine-readable `BENCH_sockets.json` snapshot (path
//! overridable via `HEAX_BENCH_SOCKETS_JSON`).
//!
//! Before any figure is reported, a functional leg serves fragmented
//! frames over a real socket and verifies every reply byte-identical
//! to the same frames driven through an in-process `HeaxServer`, then
//! decrypt-checks the result — the transport must be invisible to the
//! protocol.
//!
//! The committed snapshot at the repo root is the acceptance artifact:
//! the saturation row must carry at least 1 000 concurrent sessions.
//!
//! Usage: `bench_sockets [budget_ms]` — scenario sizes are fixed
//! request counts, so the budget argument is accepted for harness
//! uniformity and ignored. `HEAX_BENCH_QUICK=1` shrinks the fleet for
//! CI smoke runs.

use heax_bench::{bench_json, fmt_ops, render_table, snapshot, sockets};

fn main() {
    // Functional leg first: byte-identical over the wire or nothing.
    eprintln!("preparing the Set-A socket workload ...");
    let w = sockets::prepare();
    let verified = snapshot::checked_functional("bench_sockets", || sockets::functional_pass(&w));
    println!(
        "functional pass: {verified} fragmented-frame requests served over a real socket, \
         verified byte-identical to the in-process server and decrypt-checked"
    );

    let sessions = sockets::sessions();
    let conn_count = sockets::conns();
    let threads = heax_math::exec::env_threads();
    eprintln!("opening {sessions} sessions over {conn_count} connections ...");
    let mut rig = sockets::rig(&w, sessions, conn_count).expect("rig");

    let mut records = Vec::new();
    let run = |rig: &mut sockets::Rig<'_>,
               scenario: &str,
               total: usize,
               active: usize,
               think: Option<(u64, f64)>|
     -> bench_json::SockRecord {
        eprintln!("scenario {scenario}: {total} requests over {active} connections ...");
        let before = rig.net.stats();
        let out = sockets::run_scenario(rig, &w, total, active, think).expect("scenario");
        let after = rig.net.stats();
        bench_json::SockRecord {
            scenario: scenario.to_string(),
            sessions,
            conns: active,
            threads,
            requests: out.latencies_ms.len(),
            requests_per_sec: out.requests_per_sec(),
            p50_ms: sockets::percentile(&out.latencies_ms, 50.0),
            p99_ms: sockets::percentile(&out.latencies_ms, 99.0),
            sheds: after.admission_sheds - before.admission_sheds,
            drops: (after.overflow_drops + after.hostile_drops)
                - (before.overflow_drops + before.hostile_drops),
        }
    };

    // Low-concurrency closed loop: the latency floor.
    let low_conns = (conn_count / 8).max(1);
    records.push(run(
        &mut rig,
        "closed-loop-low",
        sockets::latency_requests(),
        low_conns,
        None,
    ));

    // Zero-think closed loop over the full pool: saturation throughput.
    let saturation = run(
        &mut rig,
        "saturation",
        sockets::saturation_requests(),
        conn_count,
        None,
    );
    let sat_rps = saturation.requests_per_sec;
    records.push(saturation);

    // Poisson arrivals offered at half the measured saturation rate:
    // per-connection mean think time so the aggregate offered load is
    // 0.5 × saturation.
    let mean_think_ms = 1e3 * conn_count as f64 / (0.5 * sat_rps);
    records.push(run(
        &mut rig,
        "poisson-half-load",
        sockets::latency_requests(),
        conn_count,
        Some((0x504F_4953, mean_think_ms)), // "POIS"
    ));

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.sessions.to_string(),
                r.conns.to_string(),
                r.requests.to_string(),
                fmt_ops(r.requests_per_sec),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
                r.sheds.to_string(),
                r.drops.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "epoll event loop over loopback TCP: Set-A Add fleet",
            &[
                "scenario", "sessions", "conns", "requests", "req/s", "p50 ms", "p99 ms", "sheds",
                "drops"
            ],
            &rows,
        )
    );

    let quick = std::env::var_os("HEAX_BENCH_QUICK").is_some();
    println!(
        "\nacceptance bar (saturation point at >= 1000 concurrent sessions): {}",
        if quick {
            "skipped (HEAX_BENCH_QUICK fleet)".to_string()
        } else if sessions >= 1_000 {
            format!("met ({sessions} sessions at {} req/s)", fmt_ops(sat_rps))
        } else {
            "NOT met".to_string()
        }
    );
    if !quick {
        assert!(sessions >= 1_000, "saturation fleet below acceptance scale");
    }

    let final_stats = rig.net.stats();
    println!(
        "event loop totals: {} frames in, {} replies routed, {} partial frame reads, \
         {} short writes, {} bytes in, {} bytes out",
        final_stats.frames_in,
        final_stats.replies_routed,
        final_stats.partial_frame_reads,
        final_stats.short_writes,
        final_stats.bytes_in,
        final_stats.bytes_out,
    );

    let path = snapshot::path_from_env("HEAX_BENCH_SOCKETS_JSON", "BENCH_sockets.json");
    let json = bench_json::render_sockets(&records, "Set-A", sessions, verified);
    snapshot::write_or_exit(&path, &json);
}
