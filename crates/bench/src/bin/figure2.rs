//! Figure 2 — Type-1 / Type-2 access patterns of the NTT module, plus a
//! verification sweep of the (corrected) address-generation formula.

use heax_hw::ntt_dataflow::{access, NttModuleConfig, StageKind};

fn main() {
    // Visualize the Figure 2 example shape: a small NTT with 4 MEs.
    let n = 64usize;
    let nc = 4usize;
    let cfg = NttModuleConfig::new(n, nc).expect("valid");
    println!(
        "NTT access pattern, n = {n}, ncNTT = {nc} (ME = {} coeffs):\n",
        cfg.me_words()
    );
    for stage in 0..cfg.log_n() {
        let t = n >> (stage + 1);
        let kind = cfg.stage_kind(stage);
        let pairing = if t >= cfg.me_words() {
            format!("partner ME stride {}", t / cfg.me_words())
        } else {
            format!("within-ME pairs, distance {t}")
        };
        println!(
            "  stage {stage:2}: distance {t:4} -> {:?} ({pairing})",
            kind
        );
    }

    // Verify the corrected Addr{ME_coeff} formula against ground truth on
    // the paper's own configuration (n = 2^12, nc = 8, pre-doubling MEs).
    let (log_n, log_nc) = (12u32, 3u32);
    let mut checked = 0u64;
    for i in 0..(log_n - log_nc - 1) {
        let steps = (1u64 << (log_n - log_nc)) / 2;
        for h in 0..steps {
            let (lo, hi) = access::ground_truth_pair(i, h, log_n, log_nc);
            assert_eq!(access::addr_me_coeff(i, 2 * h, log_n, log_nc), lo);
            assert_eq!(access::addr_me_coeff(i, 2 * h + 1, log_n, log_nc), hi);
            checked += 2;
        }
    }
    println!(
        "\nAddress formula check (n=2^12, nc=8): {checked} generated addresses, all \
         match the ground-truth pairing."
    );
    println!(
        "Paper's worked example: stage 0 step 0 pairs ME0 with ME256 -> formula gives ({}, {}).",
        access::addr_me_coeff(0, 0, log_n, log_nc),
        access::addr_me_coeff(0, 1, log_n, log_nc)
    );
    println!("(The published formula's last term reads 's*(j mod 2)'; the working");
    println!(" form is '(j mod 2)*2^(s+1)' — see DESIGN.md.)");

    // Count stage types across the paper's configurations.
    println!("\nStage-type split (Type-1 = first log n - log nc - 1 stages):");
    for (n, nc) in [(4096usize, 8usize), (8192, 16), (16384, 16)] {
        let cfg = NttModuleConfig::new(n, nc).expect("valid");
        let t1 = (0..cfg.log_n())
            .filter(|&s| cfg.stage_kind(s) == StageKind::Type1)
            .count();
        println!(
            "  n = {n:6}, nc = {nc:2}: {t1} Type-1 + {} Type-2 stages",
            cfg.log_n() as usize - t1
        );
    }
}
