//! Criterion bench of the parallel RNS-limb execution backend: sequential
//! vs 2/4/8-lane thread pool for full-width NTT round-trips and the
//! key-switch inner primitive at the paper's ring degrees (4096 / 8192 /
//! 16384).
//!
//! CI runs this in quick mode by setting `HEAX_BENCH_QUICK=1` (fewer
//! samples, shorter measurement windows); locally run
//! `cargo bench -p heax-bench --bench parallel_backend` for full windows.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heax_bench::parallel::{self, SIZES, THREADS};
use heax_ckks::Evaluator;
use heax_math::exec::{self, Executor};

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(300));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
    }
}

fn executors() -> Vec<(String, Arc<dyn Executor>)> {
    let mut execs: Vec<(String, Arc<dyn Executor>)> =
        vec![("seq".into(), Arc::new(exec::Sequential))];
    for k in THREADS {
        execs.push((format!("{k}thr"), exec::with_threads(k)));
    }
    execs
}

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_ntt_roundtrip");
    configure(&mut group);
    for n in SIZES {
        let mut wl = parallel::prepare(n);
        for (label, exec) in executors() {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| parallel::ntt_roundtrip(&mut wl, exec.as_ref()));
            });
        }
    }
    group.finish();
}

fn bench_key_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_key_switch");
    configure(&mut group);
    for n in SIZES {
        let wl = parallel::prepare(n);
        for (label, exec) in executors() {
            let eval = Evaluator::with_executor(&wl.w.ctx, exec.clone());
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| parallel::key_switch_once(&wl, &eval));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_key_switch);
criterion_main!(benches);
