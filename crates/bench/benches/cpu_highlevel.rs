//! Criterion benches for the CPU-side high-level operations of Table 8:
//! KeySwitch and MULT+ReLin on all three HEAX parameter sets, plus
//! rotation (the other KeySwitch client) and rescaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heax_bench::workloads::prepare;
use heax_ckks::{Evaluator, GaloisKeys, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_highlevel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_highlevel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    for set in ParamSet::ALL {
        let w = prepare(set);
        let eval = Evaluator::new(&w.ctx);
        let mut rng = StdRng::seed_from_u64(1);
        let gks = GaloisKeys::generate(&w.ctx, &w.sk, &[1], &mut rng);

        group.bench_with_input(BenchmarkId::new("keyswitch", set.name()), &set, |b, _| {
            b.iter(|| {
                black_box(
                    eval.key_switch(w.ct_prod.component(2), w.rlk.ksk(), w.ct_prod.level())
                        .expect("keyswitch"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("mult_relin", set.name()), &set, |b, _| {
            b.iter(|| {
                black_box(
                    eval.multiply_relin(&w.ct_a, &w.ct_b, &w.rlk)
                        .expect("multiply_relin"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("rotate", set.name()), &set, |b, _| {
            b.iter(|| black_box(eval.rotate(&w.ct_a, 1, &gks).expect("rotate")));
        });
        group.bench_with_input(BenchmarkId::new("rescale", set.name()), &set, |b, _| {
            b.iter(|| black_box(eval.rescale(&w.ct_prod).expect("rescale")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_highlevel);
criterion_main!(benches);
