//! Criterion benches for the CPU-side low-level operations of Table 7:
//! NTT, INTT, and dyadic multiplication of single residue polynomials,
//! for all three HEAX parameter sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heax_bench::workloads::prepare;
use heax_ckks::ParamSet;
use std::hint::black_box;

fn bench_lowlevel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_lowlevel");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    for set in ParamSet::ALL {
        let w = prepare(set);
        let table = w.ctx.ntt_table(0).clone();
        let m = w.ctx.moduli()[0];

        group.bench_with_input(BenchmarkId::new("ntt", set.name()), &set, |b, _| {
            let mut buf = w.residue.clone();
            b.iter(|| {
                table.forward_auto(black_box(&mut buf));
            });
        });
        group.bench_with_input(BenchmarkId::new("intt", set.name()), &set, |b, _| {
            let mut buf = w.residue_ntt.clone();
            b.iter(|| {
                table.inverse_auto(black_box(&mut buf));
            });
        });
        group.bench_with_input(BenchmarkId::new("dyadic", set.name()), &set, |b, _| {
            let a = w.residue_ntt.clone();
            let mut out = w.residue.clone();
            b.iter(|| {
                for (x, y) in out.iter_mut().zip(&a) {
                    *x = m.mul_mod(*x, *y);
                }
                black_box(&mut out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lowlevel);
criterion_main!(benches);
