//! Criterion benches for the hardware simulators themselves: how fast the
//! cycle-accurate models run on the host (simulation throughput, not
//! modeled FPGA throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heax_ckks::ParamSet;
use heax_core::arch::DesignPoint;
use heax_hw::board::Board;
use heax_hw::keyswitch_pipeline::schedule;
use heax_hw::mult_dataflow::{MultModuleConfig, MultModuleSim};
use heax_hw::ntt_dataflow::{NttModuleConfig, NttModuleSim};
use heax_math::ntt::NttTable;
use heax_math::primes::generate_ntt_primes;
use heax_math::word::Modulus;
use std::hint::black_box;

fn bench_dataflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_dataflow");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));

    for n in [4096usize, 8192] {
        let p = Modulus::new(generate_ntt_primes(45, 1, n).unwrap()[0]).unwrap();
        let table = NttTable::new(n, p).unwrap();
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p.value())
            .collect();

        group.bench_with_input(BenchmarkId::new("ntt_module_sim", n), &n, |b, _| {
            let sim = NttModuleSim::new(NttModuleConfig::new(n, 16).unwrap(), &table).unwrap();
            b.iter(|| black_box(sim.forward(&input)));
        });

        group.bench_with_input(BenchmarkId::new("mult_module_sim", n), &n, |b, _| {
            let sim = MultModuleSim::new(MultModuleConfig::new(n, 16).unwrap(), p).unwrap();
            let ct1 = vec![input.clone(), input.clone()];
            let ct2 = vec![input.clone(), input.clone()];
            b.iter(|| black_box(sim.multiply(&ct1, &ct2)));
        });
    }

    group.bench_function("keyswitch_schedule_setb_16ops", |b| {
        let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetB).unwrap();
        b.iter(|| black_box(schedule(&dp.arch, 16).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
