//! Criterion micro-bench of the word-level reduction kernels behind the
//! key-switch overhaul: Barrett `mul_mod` (Algorithm 1, the seed's inner
//! loop) vs Shoup `mul_red` / `mul_red_lazy` (Algorithm 2, the MulRed
//! unit the keys are now precomputed for). Sweeps a ring-sized array so
//! the numbers reflect the streaming access pattern of the DyadMult
//! stage.
//!
//! CI runs this in quick mode by setting `HEAX_BENCH_QUICK=1`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heax_math::word::{precompute_shoup, Modulus};

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    if std::env::var_os("HEAX_BENCH_QUICK").is_some() {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
    }
}

fn bench_mulred(c: &mut Criterion) {
    let mut group = c.benchmark_group("word_mulred");
    configure(&mut group);
    // 60-bit NTT-friendly prime (the software word size of Section 2).
    let p = Modulus::new(1152921504606830593).unwrap();
    let n = 4096usize;
    let xs: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % p.value())
        .collect();
    let ys: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0xbf58_476d_1ce4_e5b9) % p.value())
        .collect();
    let shoup = precompute_shoup(&ys, &p);

    group.bench_function("barrett_mul_mod", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc = acc.wrapping_add(p.mul_mod(x, y));
            }
            black_box(acc)
        })
    });
    group.bench_function("shoup_mul_red", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (&x, c) in xs.iter().zip(&shoup) {
                acc = acc.wrapping_add(c.mul_red(x, &p));
            }
            black_box(acc)
        })
    });
    group.bench_function("shoup_mul_red_lazy", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (&x, c) in xs.iter().zip(&shoup) {
                acc = acc.wrapping_add(c.mul_red_lazy(x, &p));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mulred);
criterion_main!(benches);
