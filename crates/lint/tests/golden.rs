//! Golden-fixture suite for the lint rules.
//!
//! Every directory under `tests/fixtures/` is a miniature source tree
//! that is linted as a whole. A fixture's `EXPECT.txt` lists the exact
//! diagnostics it must produce, one per line, in report order:
//!
//! ```text
//! L2 wire.rs:6
//! ```
//!
//! A missing (or empty) `EXPECT.txt` means the tree must lint clean —
//! that is the `*_pass` half of each rule's pair. The workspace walker
//! never descends into `fixtures/`, so the intentionally-failing trees
//! cannot fail the real `--workspace` run.

use std::path::PathBuf;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_dirs() -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_root())
        .expect("tests/fixtures exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

fn expectations(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(dir.join("EXPECT.txt"))
        .unwrap_or_default()
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

fn render(d: &heax_lint::Diagnostic) -> String {
    format!("{} {}:{}", d.rule.code(), d.path.display(), d.line)
}

#[test]
fn fixtures_match_expectations() {
    let dirs = fixture_dirs();
    assert!(
        dirs.len() >= 16,
        "expected the full fixture set, found {}",
        dirs.len()
    );
    for dir in &dirs {
        let got: Vec<String> = heax_lint::lint_tree(dir)
            .expect("fixture tree lints")
            .iter()
            .map(render)
            .collect();
        let want = expectations(dir);
        assert_eq!(got, want, "fixture `{}` diagnostics drifted", dir.display());
    }
}

#[test]
fn every_rule_has_pass_and_fail_coverage() {
    let mut failing: Vec<String> = Vec::new();
    let mut clean = 0usize;
    for dir in fixture_dirs() {
        let want = expectations(&dir);
        if want.is_empty() {
            clean += 1;
        }
        failing.extend(
            want.into_iter()
                .filter_map(|l| l.split_whitespace().next().map(str::to_string)),
        );
    }
    for rule in heax_lint::RuleId::ALL {
        assert!(
            failing.iter().any(|c| c == rule.code()),
            "no failing fixture exercises rule {}",
            rule.code()
        );
    }
    assert!(
        clean >= 8,
        "expected a passing fixture per rule, found {clean}"
    );
}

/// The acceptance scenario from the issue: seed a violation into a
/// scratch file and check the report pinpoints rule, path, and line.
#[test]
fn seeded_violation_is_pinpointed() {
    let dir = std::env::temp_dir().join(format!(
        "heax-lint-seeded-{}-{}",
        std::process::id(),
        line!()
    ));
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(
        dir.join("src/scratch.rs"),
        "pub fn grow(v: &mut Vec<u8>) {\n    let p = v.as_mut_ptr();\n    unsafe { *p = 7 };\n}\n",
    )
    .unwrap();
    let diags = heax_lint::lint_tree(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, heax_lint::RuleId::L3);
    assert_eq!(diags[0].path, std::path::Path::new("src/scratch.rs"));
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].render().contains("[L3 safety-comment]"));
}
