pub fn decode(b: &[u8]) -> Option<u8> {
    b.get(0).copied()
}

pub fn deserialize_pair(b: &[u8]) -> Option<(u8, u8)> {
    match b {
        &[x, y] => Some((x, y)),
        _ => None,
    }
}
