pub const SCHEMA: &str = "heax-bench-faults/1";
