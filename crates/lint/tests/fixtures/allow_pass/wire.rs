fn first(x: Option<u8>) -> u8 {
    // heax-lint: allow(L2) -- corpus value proven present by the harness
    x.unwrap()
}
