use std::sync::{Mutex, PoisonError};

pub fn drain(m: &Mutex<Vec<u64>>) -> usize {
    m.lock().unwrap_or_else(PoisonError::into_inner).len()
}
