/// Forward NTT over one residue, Harvey butterflies.
/// DOMAIN: [0,4p)
pub fn forward_lazy(a: &mut [u64]) {
    let _ = a;
}

/// Shoup multiplication without the final correction.
/// DOMAIN: [0,2p)
fn mul_red_lazy(x: u64) -> u64 {
    x
}

fn caller() -> u64 {
    mul_red_lazy(3) // DOMAIN: [0,2p)
}
