pub enum ErrorCode {
    Malformed = 1,
    Crypto = 5,
}
