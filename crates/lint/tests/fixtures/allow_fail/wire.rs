fn first(x: Option<u8>) -> u8 {
    // heax-lint: allow(L2)
    x.unwrap()
}
