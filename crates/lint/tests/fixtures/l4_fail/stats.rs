pub struct RunStats {
    pub ops: u64,
}

impl RunStats {
    pub fn bump(&mut self) {
        self.ops += 1;
    }
}
