pub fn read(p: *const u8) -> u8 {
    // SAFETY: callers pass pointers derived from live, aligned slices.
    unsafe { *p }
}
