pub fn decode(b: &[u8]) -> u8 {
    b[0]
}

pub fn first(x: Option<u8>) -> u8 {
    x.unwrap()
}
