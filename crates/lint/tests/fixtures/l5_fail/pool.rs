use std::sync::Mutex;

pub fn drain(m: &Mutex<Vec<u64>>) -> usize {
    m.lock().unwrap().len()
}
