//! `heax-lint` — a hand-rolled static analyzer that machine-checks the
//! workspace's safety contracts.
//!
//! Eight PRs of this reproduction piled up load-bearing invariants that
//! existed only as comments and reviewer memory: lazy-reduction domain
//! contracts on the NTT/Shoup kernels, panic-freedom on every
//! wire-decode path, saturating-only arithmetic on fault counters, and
//! poison-recovering lock discipline in the thread pool. This crate
//! turns each of them into a mechanical check, in the repo's
//! no-external-deps style: a small lexer/line-scanner (no `syn`) plus a
//! rule engine with per-rule IDs, file/line diagnostics, and an
//! allowlist syntax.
//!
//! | rule | name                | contract |
//! |------|---------------------|----------|
//! | L0   | allow-syntax        | `heax-lint: allow(..)` directives are well-formed |
//! | L1   | domain-contract     | lazy kernels and `mul_red_lazy` call sites carry `// DOMAIN: [0,kp)` |
//! | L2   | decode-totality     | no panic paths in `serialize.rs`, `wire.rs`, `deserialize_*` |
//! | L3   | safety-comment      | every `unsafe` block/impl has a `// SAFETY:` justification |
//! | L4   | saturating-counters | `*Stats`/`*Report` fields mutate via `saturating_*` only |
//! | L5   | lock-discipline     | `.lock()` recovers poisoning via `into_inner` |
//! | L6   | protocol-constants  | PROTOCOL.md agrees with enums and wire constants |
//! | L7   | schema-names        | EXPERIMENTS.md documents every snapshot schema |
//!
//! Suppress a finding with a justified allow comment on the same line or
//! the line above:
//!
//! ```text
//! // heax-lint: allow(L2) -- documented precondition API, not a decode path
//! ```
//!
//! # Example
//!
//! ```
//! use std::path::Path;
//! let dir = std::env::temp_dir().join("heax-lint-doc-example");
//! std::fs::create_dir_all(&dir).unwrap();
//! std::fs::write(dir.join("wire.rs"), "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n").unwrap();
//! let diags = heax_lint::lint_tree(&dir).unwrap();
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule.code(), "L2");
//! assert_eq!(diags[0].line, 2);
//! ```

#![forbid(unsafe_code)]

pub mod diag;
pub mod rules;
pub mod scanner;

pub use diag::{Diagnostic, RuleId};
pub use scanner::SourceFile;

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// A normative markdown document the doc-consistency rules check
/// against (`PROTOCOL.md`, `EXPERIMENTS.md`).
#[derive(Debug)]
pub struct Doc {
    /// Path relative to the linted tree root.
    pub rel: PathBuf,
    /// Full document text.
    pub text: String,
}

/// Everything the engine loaded from one tree.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned Rust sources, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `PROTOCOL.md`, when the tree has one.
    pub protocol: Option<Doc>,
    /// `EXPERIMENTS.md`, when the tree has one.
    pub experiments: Option<Doc>,
}

/// Directory names never descended into: build output, vendored deps,
/// VCS metadata, and the lint's own intentionally-failing fixtures.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

fn walk(root: &Path, dir: &Path, ws: &mut Workspace) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(root, &path, ws)?;
            }
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)?;
            ws.files.push(scanner::scan(&path, &rel, &text));
        } else if (name == "PROTOCOL.md" && ws.protocol.is_none())
            || (name == "EXPERIMENTS.md" && ws.experiments.is_none())
        {
            let text = std::fs::read_to_string(&path)?;
            let doc = Doc { rel, text };
            if name == "PROTOCOL.md" {
                ws.protocol = Some(doc);
            } else {
                ws.experiments = Some(doc);
            }
        }
    }
    Ok(())
}

/// Loads and scans every Rust file (plus the normative docs) under
/// `root`, skipping `vendor/`, `target/`, and fixture trees.
pub fn load_tree(root: &Path) -> io::Result<Workspace> {
    let mut ws = Workspace {
        files: Vec::new(),
        protocol: None,
        experiments: None,
    };
    walk(root, root, &mut ws)?;
    ws.files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(ws)
}

/// Runs every rule over a loaded workspace and applies allowlists.
/// Returned diagnostics are sorted by `(path, line, rule)`.
pub fn lint(ws: &Workspace) -> Vec<Diagnostic> {
    let fields = rules::counters::collect_fields(&ws.files);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut allows: HashMap<PathBuf, Vec<diag::AllowDirective>> = HashMap::new();
    for f in &ws.files {
        diags.extend(rules::domain::check(f));
        diags.extend(rules::totality::check(f));
        diags.extend(rules::safety::check(f));
        diags.extend(rules::counters::check(f, &fields));
        diags.extend(rules::locks::check(f));
        let comments = f
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.comment.is_empty())
            .map(|(i, l)| (i + 1, l.comment.clone()));
        let (file_allows, l0) = diag::parse_allows(&f.rel, comments);
        allows.insert(f.rel.clone(), file_allows);
        diags.extend(l0);
    }
    diags.extend(rules::protocol::check(&ws.files, ws.protocol.as_ref()));
    diags.extend(rules::schema::check(&ws.files, ws.experiments.as_ref()));
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| match allows.get(&d.path) {
            Some(a) => diag::apply_allows(vec![d.clone()], a).pop().is_some(),
            None => true,
        })
        .collect();
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Convenience: [`load_tree`] + [`lint`].
pub fn lint_tree(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint(&load_tree(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(files: &[(&str, &str)]) -> tempdir::Tree {
        tempdir::Tree::new(files)
    }

    /// Minimal self-cleaning temp-tree helper (no external tempdir crate).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static SEQ: AtomicU64 = AtomicU64::new(0);

        pub struct Tree {
            pub root: PathBuf,
        }

        impl Tree {
            pub fn new(files: &[(&str, &str)]) -> Tree {
                let root = std::env::temp_dir().join(format!(
                    "heax-lint-test-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                for (rel, text) in files {
                    let path = root.join(rel);
                    if let Some(dir) = path.parent() {
                        std::fs::create_dir_all(dir).unwrap();
                    }
                    std::fs::write(path, text).unwrap();
                }
                Tree { root }
            }
        }

        impl Drop for Tree {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.root);
            }
        }
    }

    #[test]
    fn allow_directive_suppresses_and_is_audited() {
        let t = tree(&[(
            "wire.rs",
            "fn f(x: Option<u8>) -> u8 {\n    // heax-lint: allow(L2) -- test corpus value, proven present\n    x.unwrap()\n}\n",
        )]);
        assert!(lint_tree(&t.root).unwrap().is_empty());
        let t2 = tree(&[(
            "wire.rs",
            "fn f(x: Option<u8>) -> u8 {\n    // heax-lint: allow(L2)\n    x.unwrap()\n}\n",
        )]);
        let d = lint_tree(&t2.root).unwrap();
        // Missing reason: the directive is rejected (L0) and the L2 still fires.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.rule == RuleId::L0));
        assert!(d.iter().any(|x| x.rule == RuleId::L2));
    }

    #[test]
    fn vendor_and_target_are_skipped() {
        let t = tree(&[
            (
                "vendor/x/wire.rs",
                "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            ),
            (
                "target/debug/wire.rs",
                "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            ),
            ("src/ok.rs", "pub fn fine() {}\n"),
        ]);
        assert!(lint_tree(&t.root).unwrap().is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_carry_relative_paths() {
        let t = tree(&[
            (
                "b/wire.rs",
                "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
            ),
            (
                "a/serialize.rs",
                "fn g(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
            ),
        ]);
        let d = lint_tree(&t.root).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].path, Path::new("a/serialize.rs"));
        assert_eq!(d[1].path, Path::new("b/wire.rs"));
    }
}
