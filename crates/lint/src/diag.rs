//! Diagnostics, rule identities, and the allowlist syntax.
//!
//! A finding is suppressed by an *allow directive* placed on the same
//! line or the line directly above it:
//!
//! ```text
//! // heax-lint: allow(L2) -- PolyView::word is a documented precondition API
//! ```
//!
//! The `-- reason` part is mandatory; a directive without a non-empty
//! reason is itself reported (rule `L0`), so suppressions always carry
//! their justification into the tree.

use std::fmt;
use std::path::PathBuf;

/// Identity of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Allowlist hygiene: malformed `heax-lint:` directives.
    L0,
    /// Domain-contract annotations on lazy-reduction kernels.
    L1,
    /// Decode totality: no panic paths on wire/serialize input.
    L2,
    /// `// SAFETY:` justification on every `unsafe` block/impl.
    L3,
    /// Saturating-only mutation of `*Stats` / `*Report` counters.
    L4,
    /// Lock discipline: `.lock()` must recover from poisoning.
    L5,
    /// PROTOCOL.md ↔ source consistency (enum tables, wire constants).
    L6,
    /// EXPERIMENTS.md must document every bench snapshot schema name.
    L7,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 8] = [
        RuleId::L0,
        RuleId::L1,
        RuleId::L2,
        RuleId::L3,
        RuleId::L4,
        RuleId::L5,
        RuleId::L6,
        RuleId::L7,
    ];

    /// Short machine-readable code (`"L1"` …), as used in allow directives.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L0 => "L0",
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
            RuleId::L6 => "L6",
            RuleId::L7 => "L7",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::L0 => "allow-syntax",
            RuleId::L1 => "domain-contract",
            RuleId::L2 => "decode-totality",
            RuleId::L3 => "safety-comment",
            RuleId::L4 => "saturating-counters",
            RuleId::L5 => "lock-discipline",
            RuleId::L6 => "protocol-constants",
            RuleId::L7 => "schema-names",
        }
    }

    /// Parses a rule code (`"L4"`), case-sensitively.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One finding: a rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// File the finding is anchored to.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what the contract requires.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: RuleId,
        path: impl Into<PathBuf>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            message: message.into(),
        }
    }

    /// `path:line: [L2 decode-totality] message` — the CLI output format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A parsed `heax-lint: allow(...)` directive.
#[derive(Debug)]
pub struct AllowDirective {
    /// 1-based line the directive comment sits on.
    pub line: usize,
    /// Rules the directive suppresses.
    pub rules: Vec<RuleId>,
}

/// Extracts allow directives from a file's per-line comments. Malformed
/// directives (bad rule id, missing `-- reason`) are reported as `L0`
/// diagnostics instead of silently suppressing anything.
pub fn parse_allows(
    path: &std::path::Path,
    comments: impl Iterator<Item = (usize, String)>,
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    const MARKER: &str = "heax-lint:";
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for (line, comment) in comments {
        // Directives live in plain `//` comments only; `///` and `//!`
        // doc text may *mention* the syntax without being a directive.
        let plain = comment
            .trim_start()
            .strip_prefix("//")
            .is_some_and(|rest| !rest.starts_with('/') && !rest.starts_with('!'));
        if !plain {
            continue;
        }
        let Some(at) = comment.find(MARKER) else {
            continue;
        };
        let rest = comment[at + MARKER.len()..].trim_start();
        let bad = |msg: &str| Diagnostic::new(RuleId::L0, path, line, msg.to_string());
        let Some(args) = rest.strip_prefix("allow(") else {
            diags.push(bad(
                "heax-lint directive must be `allow(<rule>, …) -- reason`",
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            diags.push(bad("unterminated rule list in heax-lint allow directive"));
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for id in args[..close].split(',') {
            match RuleId::parse(id.trim()) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(bad(&format!(
                        "unknown rule id `{}` in allow directive",
                        id.trim()
                    )));
                    ok = false;
                }
            }
        }
        let reason = args[close + 1..].trim_start();
        let reason = reason.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(bad("allow directive needs a justification: `-- <reason>`"));
            ok = false;
        }
        if ok && !rules.is_empty() {
            allows.push(AllowDirective { line, rules });
        }
    }
    (allows, diags)
}

/// Drops diagnostics covered by an allow directive on the same line or
/// the line directly above.
pub fn apply_allows(diags: Vec<Diagnostic>, allows: &[AllowDirective]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            !allows
                .iter()
                .any(|a| a.rules.contains(&d.rule) && (a.line == d.line || a.line + 1 == d.line))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(comment: &str) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
        parse_allows(
            Path::new("x.rs"),
            std::iter::once((3usize, comment.to_string())),
        )
    }

    #[test]
    fn well_formed_allow_parses() {
        let (allows, diags) = parse("// heax-lint: allow(L2, L4) -- measured, safe");
        assert!(diags.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rules, vec![RuleId::L2, RuleId::L4]);
    }

    #[test]
    fn missing_reason_is_reported_and_ignored() {
        let (allows, diags) = parse("// heax-lint: allow(L2)");
        assert!(allows.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::L0);
    }

    #[test]
    fn unknown_rule_is_reported() {
        let (allows, diags) = parse("// heax-lint: allow(L9) -- nope");
        assert!(allows.is_empty());
        assert_eq!(diags[0].rule, RuleId::L0);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let allow = AllowDirective {
            line: 3,
            rules: vec![RuleId::L5],
        };
        let mk = |line| Diagnostic::new(RuleId::L5, "x.rs", line, "m");
        let out = apply_allows(vec![mk(3), mk(4), mk(5)], &[allow]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
    }
}
