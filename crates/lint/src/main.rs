//! CLI for `heax-lint`.
//!
//! ```text
//! heax-lint --workspace        # lint the enclosing cargo workspace
//! heax-lint PATH [PATH ...]    # lint one or more trees
//! ```
//!
//! Exits 0 when clean, 1 on any diagnostic, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: heax-lint --workspace | PATH [PATH ...]");
    ExitCode::from(2)
}

/// Ascends from the current directory to the nearest `Cargo.toml`
/// declaring `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        return usage();
    }
    let mut roots: Vec<PathBuf> = Vec::new();
    for a in &args {
        if a == "--workspace" {
            match workspace_root() {
                Some(root) => roots.push(root),
                None => {
                    eprintln!("heax-lint: no enclosing cargo workspace found");
                    return ExitCode::from(2);
                }
            }
        } else if a.starts_with('-') {
            return usage();
        } else {
            roots.push(PathBuf::from(a));
        }
    }
    let mut total = 0usize;
    let mut files = 0usize;
    for root in &roots {
        match heax_lint::load_tree(root) {
            Ok(ws) => {
                let diags = heax_lint::lint(&ws);
                for d in &diags {
                    println!("{}", d.render());
                }
                total += diags.len();
                files += ws.files.len();
            }
            Err(e) => {
                eprintln!("heax-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        println!("heax-lint: OK ({files} files, rules L1–L7 clean)");
        ExitCode::SUCCESS
    } else {
        println!("heax-lint: {total} diagnostic(s)");
        ExitCode::FAILURE
    }
}
