//! **L1 · domain-contract** — lazy-reduction kernels must declare their
//! working domain, and annotated call sites must agree with the callee.
//!
//! The NTT/Shoup hot path (PR 3) keeps values in relaxed residue domains
//! (`[0,p)`, `[0,2p)`, `[0,4p)`) and defers reduction; mixing domains is
//! a silent-corruption hazard that the type system cannot see. This rule
//! makes the contract machine-readable:
//!
//! * every kernel whose name carries a `lazy` / `lazy2` / `auto2` /
//!   `reduced` segment must be annotated `// DOMAIN: [0,kp)` in the
//!   comment block directly above its `fn` line (predicates with an
//!   `is` segment, e.g. `reduced_kernel_is_lazy`, are exempt);
//! * every `mul_red_lazy` **call site** must carry a `// DOMAIN:`
//!   annotation (trailing on the call line or on the line above) stating
//!   the domain of the value it produces;
//! * within one file, an annotated call to a kernel defined in the same
//!   file must agree with the kernel's declared domain.

use crate::diag::{Diagnostic, RuleId};
use crate::rules::is_ident_char;
use crate::scanner::SourceFile;
use std::collections::HashMap;

/// Name segments that mark a lazy-reduction kernel.
const KERNEL_SEGMENTS: [&str; 4] = ["lazy", "lazy2", "auto2", "reduced"];
/// The canonical annotation forms.
const DOMAINS: [&str; 3] = ["[0,p)", "[0,2p)", "[0,4p)"];
/// The one function whose *call sites* must always be annotated.
const MANDATORY_CALLEE: &str = "mul_red_lazy";

/// True when `name` is a lazy-reduction kernel by naming convention.
pub fn is_kernel_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('_').collect();
    if segs.contains(&"is") {
        return false;
    }
    segs.iter().any(|s| KERNEL_SEGMENTS.contains(s))
}

/// Extracts a `DOMAIN:` annotation from comment text. `Some(Ok(d))` is a
/// canonical domain, `Some(Err(tok))` a malformed one, `None` no
/// annotation at all.
pub fn parse_domain(comment: &str) -> Option<Result<&'static str, String>> {
    let at = comment.find("DOMAIN:")?;
    let tok = comment[at + "DOMAIN:".len()..]
        .split_whitespace()
        .next()
        .unwrap_or("");
    match DOMAINS.iter().find(|d| **d == tok) {
        Some(d) => Some(Ok(d)),
        None => Some(Err(tok.to_string())),
    }
}

/// Call or definition occurrence of an identifier followed by `(`.
struct Occurrence {
    line: usize, // 0-based
    name: String,
    is_def: bool,
}

/// Finds `name(` occurrences on a code line, tagging definitions
/// (`fn name(`) separately from call sites.
fn occurrences(code: &str, line: usize, out: &mut Vec<Occurrence>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if is_ident_char(chars[i]) && (i == 0 || !is_ident_char(chars[i - 1])) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            let mut j = i;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'(') {
                // Preceded by the `fn` keyword → a definition.
                let before: String = chars[..start].iter().collect();
                let is_def = before
                    .trim_end()
                    .rsplit(|c: char| !is_ident_char(c))
                    .next()
                    .is_some_and(|t| t == "fn");
                out.push(Occurrence { line, name, is_def });
            }
        } else {
            i += 1;
        }
    }
}

/// Finds the `DOMAIN:` annotation attached to a definition at 0-based
/// line `at`: the trailing comment of the `fn` line itself, or any line
/// of the contiguous comment/attribute block directly above it.
fn def_annotation(file: &SourceFile, at: usize) -> Option<Result<&'static str, String>> {
    if let Some(d) = parse_domain(&file.lines[at].comment) {
        return Some(d);
    }
    let mut i = at;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !code.is_empty() && !is_attr {
            break;
        }
        if let Some(d) = parse_domain(&l.comment) {
            return Some(d);
        }
    }
    None
}

/// Annotation attached to a call site at 0-based line `at`: trailing on
/// the same line, or the comment of the line directly above.
fn call_annotation(file: &SourceFile, at: usize) -> Option<Result<&'static str, String>> {
    parse_domain(&file.lines[at].comment).or_else(|| {
        at.checked_sub(1)
            .and_then(|p| parse_domain(&file.lines[p].comment))
    })
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.is_test_path() {
        return Vec::new();
    }
    let mut occ = Vec::new();
    for (i, l) in file.lines.iter().enumerate() {
        if !l.in_test {
            occurrences(&l.code, i, &mut occ);
        }
    }
    let mut diags = Vec::new();
    // Pass 1: kernel definitions must be annotated; record declared
    // domains for the agreement check.
    let mut declared: HashMap<String, &'static str> = HashMap::new();
    for o in occ.iter().filter(|o| o.is_def && is_kernel_name(&o.name)) {
        match def_annotation(file, o.line) {
            Some(Ok(d)) => {
                declared.insert(o.name.clone(), d);
            }
            Some(Err(tok)) => diags.push(Diagnostic::new(
                RuleId::L1,
                &file.rel,
                o.line + 1,
                format!(
                    "kernel `{}` has a malformed DOMAIN annotation `{tok}` (expected [0,p), [0,2p) or [0,4p))",
                    o.name
                ),
            )),
            None => diags.push(Diagnostic::new(
                RuleId::L1,
                &file.rel,
                o.line + 1,
                format!(
                    "lazy kernel `{}` lacks a `// DOMAIN: [0,kp)` annotation declaring its lazy-reduction domain",
                    o.name
                ),
            )),
        }
    }
    // Pass 2: call sites. `mul_red_lazy` calls must be annotated; any
    // annotated call to a same-file kernel must agree with its
    // declaration.
    for o in occ.iter().filter(|o| !o.is_def) {
        let ann = call_annotation(file, o.line);
        if o.name == MANDATORY_CALLEE && ann.is_none() {
            diags.push(Diagnostic::new(
                RuleId::L1,
                &file.rel,
                o.line + 1,
                format!(
                    "`{MANDATORY_CALLEE}` call site lacks a `// DOMAIN: [0,kp)` annotation for the value it produces"
                ),
            ));
            continue;
        }
        match ann {
            Some(Err(tok)) if is_kernel_name(&o.name) => diags.push(Diagnostic::new(
                RuleId::L1,
                &file.rel,
                o.line + 1,
                format!(
                    "call to `{}` has a malformed DOMAIN annotation `{tok}` (expected [0,p), [0,2p) or [0,4p))",
                    o.name
                ),
            )),
            Some(Ok(d)) => {
                if let Some(decl) = declared.get(&o.name) {
                    if *decl != d {
                        diags.push(Diagnostic::new(
                            RuleId::L1,
                            &file.rel,
                            o.line + 1,
                            format!(
                                "call annotated `DOMAIN: {d}` disagrees with `{}`'s declared `DOMAIN: {decl}` in this module",
                                o.name
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::Path;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&scan(Path::new("k.rs"), Path::new("k.rs"), src))
    }

    #[test]
    fn kernel_names() {
        assert!(is_kernel_name("forward_lazy"));
        assert!(is_kernel_name("forward_reduced_auto2"));
        assert!(is_kernel_name("mul_red_lazy"));
        assert!(!is_kernel_name("reduced_kernel_is_lazy"));
        assert!(!is_kernel_name("forward_auto"));
        assert!(!is_kernel_name("rescale"));
    }

    #[test]
    fn unannotated_kernel_fires() {
        let d = run("pub fn forward_lazy(a: &mut [u64]) {\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn doc_block_annotation_satisfies() {
        let src = "/// Harvey butterflies.\n/// DOMAIN: [0,4p)\n#[inline]\npub fn forward_lazy(a: &mut [u64]) {\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unannotated_mul_red_lazy_call_fires() {
        let d = run("fn f(w: &W, p: &P) -> u64 {\n    w.mul_red_lazy(1, p)\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn mismatched_call_fires() {
        let src = "/// DOMAIN: [0,2p)\nfn mul_red_lazy(x: u64) -> u64 { x }\nfn g() {\n    mul_red_lazy(3); // DOMAIN: [0,4p)\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("disagrees"));
    }

    #[test]
    fn agreeing_call_passes() {
        let src = "/// DOMAIN: [0,2p)\nfn mul_red_lazy(x: u64) -> u64 { x }\nfn g() {\n    mul_red_lazy(3); // DOMAIN: [0,2p)\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t(w: &W, p: &P) { w.mul_red_lazy(1, p); }\n}\n";
        assert!(run(src).is_empty());
    }
}
