//! **L7 · schema-names** — every bench snapshot schema is documented.
//!
//! The bench binaries stamp each `BENCH_*.json` with a schema name of
//! the form `heax-bench-<kind>/<version>`; EXPERIMENTS.md is the
//! catalogue readers use to interpret the snapshots. This rule (ported
//! from `scripts/check_protocol.sh`) scans every string literal in the
//! tree for schema names and requires each to appear verbatim in
//! EXPERIMENTS.md. Silent when the tree has no EXPERIMENTS.md.

use crate::diag::{Diagnostic, RuleId};
use crate::scanner::SourceFile;
use crate::Doc;

/// Extracts `heax-bench-<kind>/<version>` names embedded in `s`.
fn schema_names(s: &str) -> Vec<String> {
    const PREFIX: &str = "heax-bench-";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = s[from..].find(PREFIX) {
        let start = from + at;
        let rest = &s[start + PREFIX.len()..];
        let kind: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase())
            .collect();
        let after = &rest[kind.len()..];
        let version: String = after
            .strip_prefix('/')
            .map(|v| v.chars().take_while(char::is_ascii_digit).collect())
            .unwrap_or_default();
        if !kind.is_empty() && !version.is_empty() {
            out.push(format!("{PREFIX}{kind}/{version}"));
        }
        from = start + PREFIX.len();
    }
    out
}

/// Runs the rule over the whole workspace.
pub fn check(files: &[SourceFile], experiments: Option<&Doc>) -> Vec<Diagnostic> {
    let Some(doc) = experiments else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    for file in files {
        for (i, l) in file.lines.iter().enumerate() {
            // Test code may fabricate schema names to exercise codecs.
            if l.in_test {
                continue;
            }
            for s in &l.strings {
                for schema in schema_names(s) {
                    if !doc.text.contains(&schema) {
                        diags.push(Diagnostic::new(
                            RuleId::L7,
                            &file.rel,
                            i + 1,
                            format!(
                                "snapshot schema `{schema}` is not documented in {}",
                                doc.rel.display()
                            ),
                        ));
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::{Path, PathBuf};

    #[test]
    fn schema_extraction() {
        assert_eq!(
            schema_names("\"schema\": \"heax-bench-faults/1\""),
            vec!["heax-bench-faults/1"]
        );
        assert!(schema_names("heax-bench-").is_empty());
        assert!(schema_names("heax-bench-x/").is_empty());
    }

    #[test]
    fn undocumented_schema_fires() {
        let f = scan(
            Path::new("b.rs"),
            Path::new("b.rs"),
            "const S: &str = \"heax-bench-newthing/1\";\n",
        );
        let doc = Doc {
            rel: PathBuf::from("EXPERIMENTS.md"),
            text: "heax-bench-parallel/1".into(),
        };
        let d = check(&[f], Some(&doc));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn documented_schema_passes_and_absent_doc_is_silent() {
        let f = scan(
            Path::new("b.rs"),
            Path::new("b.rs"),
            "const S: &str = \"heax-bench-parallel/1\";\n",
        );
        let doc = Doc {
            rel: PathBuf::from("EXPERIMENTS.md"),
            text: "see heax-bench-parallel/1".into(),
        };
        assert!(check(std::slice::from_ref(&f), Some(&doc)).is_empty());
        assert!(check(&[f], None).is_empty());
    }
}
