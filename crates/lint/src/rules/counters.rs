//! **L4 · saturating-counters** — metric counters never wrap or panic.
//!
//! Fault and serving counters (`*Stats` / `*Report` structs) are
//! monotonically-growing telemetry; an overflow must clamp, not panic in
//! debug builds or wrap in release (PR 8 made every fault counter
//! saturating). The rule collects every integer-typed field of a struct
//! whose name ends in `Stats` or `Report`, workspace-wide, and flags any
//! compound-assignment mutation (`+=`, `-=`, …) of such a field — the
//! only sanctioned mutation is `s.f = s.f.saturating_add(x)` (plain `=`
//! stores, `.max(`-style high-water updates included, remain legal).

use crate::diag::{Diagnostic, RuleId};
use crate::rules::is_ident_char;
use crate::scanner::SourceFile;
use std::collections::HashMap;

/// Integer type names whose fields the rule tracks.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
/// Compound-assignment operators forbidden on counter fields.
const COMPOUND_OPS: [&str; 10] = ["+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "|=", "&=", "^="];

/// Map from field name to the counter struct that declares it.
pub type FieldMap = HashMap<String, String>;

/// Collects integer fields of `*Stats` / `*Report` structs across all
/// scanned files.
pub fn collect_fields(files: &[SourceFile]) -> FieldMap {
    let mut map = FieldMap::new();
    for file in files {
        for (i, l) in file.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let Some(name) = struct_decl(&l.code) else {
                continue;
            };
            if !(name.ends_with("Stats") || name.ends_with("Report")) {
                continue;
            }
            // Body lines start at depth + 1; the first line back at the
            // struct's own depth is past the closing brace.
            for body in &file.lines[i + 1..] {
                if body.depth <= l.depth {
                    break;
                }
                if let Some((field, ty)) = field_decl(&body.code) {
                    if INT_TYPES.contains(&ty.as_str()) {
                        map.insert(field, name.clone());
                    }
                }
            }
        }
    }
    map
}

/// Extracts the name from a `struct Foo {` / `pub struct Foo {` line.
fn struct_decl(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t
        .strip_prefix("pub struct ")
        .or_else(|| t.strip_prefix("pub(crate) struct "))
        .or_else(|| t.strip_prefix("struct "))?;
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    (!name.is_empty() && code.contains('{')).then_some(name)
}

/// Extracts `(field, type)` from a struct-body field line.
fn field_decl(code: &str) -> Option<(String, String)> {
    let t = code.trim();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let (name, rest) = t.split_once(':')?;
    let name = name.trim();
    if name.is_empty() || !name.chars().all(is_ident_char) {
        return None;
    }
    let ty = rest.trim().trim_end_matches(',').trim();
    Some((name.to_string(), ty.to_string()))
}

/// Runs the mutation check over one file against the workspace field map.
pub fn check(file: &SourceFile, fields: &FieldMap) -> Vec<Diagnostic> {
    if file.is_test_path() || fields.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for (field, owner) in fields {
            let needle = format!(".{field}");
            let mut from = 0;
            while let Some(at) = l.code[from..].find(&needle) {
                let pos = from + at;
                from = pos + needle.len();
                // Field access must end exactly at the needle.
                if l.code[from..].chars().next().is_some_and(is_ident_char) {
                    continue;
                }
                let after = l.code[from..].trim_start();
                if let Some(op) = COMPOUND_OPS.iter().find(|op| after.starts_with(**op)) {
                    diags.push(Diagnostic::new(
                        RuleId::L4,
                        &file.rel,
                        i + 1,
                        format!(
                            "counter field `{field}` of `{owner}` mutated with `{op}`; use `{field} = {field}.saturating_*(..)`"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::Path;

    fn ws(src: &str) -> (Vec<SourceFile>, FieldMap) {
        let f = scan(Path::new("m.rs"), Path::new("m.rs"), src);
        let files = vec![f];
        let map = collect_fields(&files);
        (files, map)
    }

    const STATS: &str = "pub struct ServerStats {\n    pub flushes: u64,\n    pub busy_us: f64,\n    pub label: String,\n}\n";

    #[test]
    fn integer_fields_are_collected_floats_are_not() {
        let (_, map) = ws(STATS);
        assert_eq!(map.get("flushes").map(String::as_str), Some("ServerStats"));
        assert!(!map.contains_key("busy_us"));
        assert!(!map.contains_key("label"));
    }

    #[test]
    fn compound_assignment_fires() {
        let src = format!("{STATS}fn f(s: &mut ServerStats) {{\n    s.flushes += 1;\n}}\n");
        let (files, map) = ws(&src);
        let d = check(&files[0], &map);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 7);
    }

    #[test]
    fn saturating_and_plain_stores_pass() {
        let src = format!(
            "{STATS}fn f(s: &mut ServerStats) {{\n    s.flushes = s.flushes.saturating_add(1);\n    s.busy_us += 0.5;\n}}\n"
        );
        let (files, map) = ws(&src);
        assert!(check(&files[0], &map).is_empty());
    }

    #[test]
    fn prefix_fields_do_not_collide() {
        let src = format!("{STATS}fn f(x: &mut Other) {{\n    x.flushes_total += 1;\n}}\n");
        let (files, map) = ws(&src);
        assert!(check(&files[0], &map).is_empty());
    }

    #[test]
    fn non_counter_structs_are_ignored() {
        let (_, map) = ws("pub struct Reader {\n    pub pos: usize,\n}\n");
        assert!(map.is_empty());
    }
}
