//! **L6 · protocol-constants** — PROTOCOL.md cannot drift from the
//! source of truth.
//!
//! Port of the retired `scripts/check_protocol.sh` awk/grep gate into
//! the rule engine. PROTOCOL.md pins wire constants and enum tables in
//! prose; this rule re-derives every pinned value from the Rust source
//! and fails on any mismatch:
//!
//! * every variant of `ErrorCode` / `MessageKind` / `OpCode` must have a
//!   `| value | name |` table row in PROTOCOL.md, and the error-code
//!   table must not list codes the source does not define;
//! * the pinned wire constants (`WIRE_V1 = 1`, `WIRE_V2 = 2`,
//!   `REQUEST_FLAG_COMPRESS_REPLY = 0x01`, the 26-byte
//!   `FRAME_HEADER_LEN`, `EXPAND_SEED_LEN = 32`, the transport intake
//!   cap `MAX_FRAME_PAYLOAD = 1 << 26`, the seeded-ciphertext tag `7`)
//!   must still hold wherever they are declared — changing one means
//!   updating PROTOCOL.md *and* this rule, which is the point;
//! * the `"HEAW"` frame magic and `"HEAX"` object magic must still
//!   appear in their implementation files.
//!
//! The rule is silent when the linted tree has no `PROTOCOL.md`.

use crate::diag::{Diagnostic, RuleId};
use crate::scanner::SourceFile;
use crate::Doc;

/// Enums whose variants PROTOCOL.md tabulates.
const TABLED_ENUMS: [&str; 3] = ["ErrorCode", "MessageKind", "OpCode"];

/// One `Variant = value` row extracted from a `#[repr(..)]` enum.
struct EnumRow {
    enum_name: &'static str,
    variant: String,
    value: u64,
    file: std::path::PathBuf,
    line: usize,
}

/// Extracts tabled-enum rows from every scanned file.
fn enum_rows(files: &[SourceFile]) -> Vec<EnumRow> {
    let mut rows = Vec::new();
    for file in files {
        for (i, l) in file.lines.iter().enumerate() {
            let Some(enum_name) = TABLED_ENUMS.iter().find(|e| {
                l.code.contains(&format!("enum {e} ")) || l.code.contains(&format!("enum {e}{{"))
            }) else {
                continue;
            };
            if l.in_test {
                continue;
            }
            for (j, body) in file.lines.iter().enumerate().skip(i + 1) {
                if body.depth <= l.depth {
                    break;
                }
                let t = body.code.trim().trim_end_matches(',');
                if let Some((variant, value)) = t.split_once('=') {
                    let variant = variant.trim();
                    if let (true, Ok(value)) = (
                        !variant.is_empty() && variant.chars().all(|c| c.is_alphanumeric()),
                        value.trim().parse::<u64>(),
                    ) {
                        rows.push(EnumRow {
                            enum_name,
                            variant: variant.to_string(),
                            value,
                            file: file.rel.clone(),
                            line: j + 1,
                        });
                    }
                }
            }
        }
    }
    rows
}

/// `(value, name)` cells of a markdown table row, when the first cell is
/// numeric.
fn table_row(line: &str) -> Option<(u64, String)> {
    let t = line.trim();
    if !t.starts_with('|') {
        return None;
    }
    let cells: Vec<&str> = t.split('|').map(str::trim).collect();
    // split() yields a leading empty cell before the first `|`.
    let value = cells.get(1)?.parse::<u64>().ok()?;
    let name = cells.get(2)?.to_string();
    (!name.is_empty()).then_some((value, name))
}

/// Searches all files for `NAME: <ty> = ` and returns the trimmed
/// right-hand side (up to `;`) with its location.
fn const_decl<'a>(
    files: &'a [SourceFile],
    name: &str,
) -> Option<(String, &'a std::path::Path, usize)> {
    let needle = format!("{name}: ");
    for file in files {
        for (i, l) in file.lines.iter().enumerate() {
            if l.in_test || !l.code.contains("const ") {
                continue;
            }
            if let Some(at) = l.code.find(&needle) {
                let rest = &l.code[at + needle.len()..];
                let rhs = rest.split_once('=')?.1.trim().trim_end_matches(';').trim();
                return Some((rhs.to_string(), &file.rel, i + 1));
            }
        }
    }
    None
}

/// Runs the rule over the whole workspace.
pub fn check(files: &[SourceFile], protocol: Option<&Doc>) -> Vec<Diagnostic> {
    let Some(doc) = protocol else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    let rows = enum_rows(files);
    let doc_rows: Vec<(usize, u64, String)> = doc
        .text
        .lines()
        .enumerate()
        .filter_map(|(i, l)| table_row(l).map(|(v, n)| (i + 1, v, n)))
        .collect();

    // Forward: every source variant appears as a doc table row.
    for r in &rows {
        if !doc_rows
            .iter()
            .any(|(_, v, n)| *v == r.value && *n == r.variant)
        {
            diags.push(Diagnostic::new(
                RuleId::L6,
                &r.file,
                r.line,
                format!(
                    "{}::{} = {} has no `| {} | {} |` table row in {}",
                    r.enum_name,
                    r.variant,
                    r.value,
                    r.value,
                    r.variant,
                    doc.rel.display()
                ),
            ));
        }
    }
    // Reverse: the error-code table must not list codes the source does
    // not define (names are re-derived from the enum, so adding an
    // ErrorCode without its doc row fails forward, and deleting one
    // while its row lingers fails here).
    let err_variants: Vec<&EnumRow> = rows.iter().filter(|r| r.enum_name == "ErrorCode").collect();
    if !err_variants.is_empty() {
        for (line, v, n) in &doc_rows {
            let names_match = err_variants.iter().any(|r| r.variant == *n);
            let pair_match = err_variants
                .iter()
                .any(|r| r.variant == *n && r.value == *v);
            if names_match && !pair_match {
                diags.push(Diagnostic::new(
                    RuleId::L6,
                    &doc.rel,
                    *line,
                    format!(
                        "error-code table row `| {v} | {n} |` disagrees with the ErrorCode enum"
                    ),
                ));
            }
        }
    }
    // Pinned wire constants, wherever declared.
    let pins: [(&str, &str, &str); 5] = [
        (
            "WIRE_V1",
            "1",
            "update PROTOCOL.md §1.2 and rules/protocol.rs",
        ),
        (
            "WIRE_V2",
            "2",
            "update PROTOCOL.md §1.2 and rules/protocol.rs",
        ),
        (
            "REQUEST_FLAG_COMPRESS_REPLY",
            "0b0000_0001",
            "update PROTOCOL.md §2 and rules/protocol.rs",
        ),
        (
            "EXPAND_SEED_LEN",
            "32",
            "update PROTOCOL.md §4.4 and rules/protocol.rs",
        ),
        (
            "MAX_FRAME_PAYLOAD",
            "1 << 26",
            "update PROTOCOL.md §7.2 and rules/protocol.rs",
        ),
    ];
    for (name, want, action) in pins {
        if let Some((rhs, file, line)) = const_decl(files, name) {
            if rhs != want {
                diags.push(Diagnostic::new(
                    RuleId::L6,
                    file,
                    line,
                    format!("{name} is `{rhs}`, no longer `{want}`; {action}"),
                ));
            }
        }
    }
    if let Some((rhs, file, line)) = const_decl(files, "FRAME_HEADER_LEN") {
        if rhs != "4 + 1 + 1 + 8 + 8 + 4" {
            diags.push(Diagnostic::new(
                RuleId::L6,
                file,
                line,
                format!("FRAME_HEADER_LEN is `{rhs}`; update the PROTOCOL.md §1 frame table and rules/protocol.rs"),
            ));
        } else if !doc.text.contains("The header is 26 bytes") {
            diags.push(Diagnostic::new(
                RuleId::L6,
                &doc.rel,
                1,
                "PROTOCOL.md no longer states `The header is 26 bytes`",
            ));
        }
    }
    // The seeded-ciphertext object tag (an enum variant, not a const).
    for file in files {
        for (i, l) in file.lines.iter().enumerate() {
            if l.in_test || !l.code.contains("SeededCiphertext =") {
                continue;
            }
            if !l.code.contains("SeededCiphertext = 7") {
                diags.push(Diagnostic::new(
                    RuleId::L6,
                    &file.rel,
                    i + 1,
                    "the seeded-ciphertext tag is no longer 7; update PROTOCOL.md §4 and rules/protocol.rs",
                ));
            }
        }
    }
    // Magic bytes in their implementation files.
    for (suffix, magic) in [
        ("crates/server/src/wire.rs", "HEAW"),
        ("crates/ckks/src/serialize.rs", "HEAX"),
    ] {
        for file in files {
            if !file.rel.as_os_str().to_string_lossy().ends_with(suffix) {
                continue;
            }
            let found = file
                .lines
                .iter()
                .any(|l| l.strings.iter().any(|s| s == magic));
            if !found {
                diags.push(Diagnostic::new(
                    RuleId::L6,
                    &file.rel,
                    1,
                    format!("magic `{magic}` no longer appears in this file; update PROTOCOL.md and rules/protocol.rs"),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::{Path, PathBuf};

    fn doc(text: &str) -> Doc {
        Doc {
            rel: PathBuf::from("PROTOCOL.md"),
            text: text.to_string(),
        }
    }

    fn src(name: &str, text: &str) -> SourceFile {
        scan(Path::new(name), Path::new(name), text)
    }

    const ENUM: &str = "pub enum ErrorCode {\n    Malformed = 1,\n    Crypto = 5,\n}\n";

    #[test]
    fn matching_table_passes() {
        let files = vec![src("error.rs", ENUM)];
        let d = doc("| code | name |\n|---|---|\n| 1 | Malformed |\n| 5 | Crypto |\n");
        assert!(check(&files, Some(&d)).is_empty());
    }

    #[test]
    fn missing_row_fires_at_the_variant() {
        let files = vec![src("error.rs", ENUM)];
        let d = doc("| 1 | Malformed |\n");
        let out = check(&files, Some(&d));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("Crypto"));
    }

    #[test]
    fn stale_doc_row_fires_at_the_doc() {
        let files = vec![src("error.rs", ENUM)];
        let d = doc("| 1 | Malformed |\n| 9 | Crypto |\n");
        let out = check(&files, Some(&d));
        assert_eq!(out.len(), 2); // forward miss for Crypto=5 + reverse hit on row 2
        assert!(out
            .iter()
            .any(|x| x.path == Path::new("PROTOCOL.md") && x.line == 2));
    }

    #[test]
    fn drifted_pin_fires() {
        let files = vec![src("wire.rs", "pub const WIRE_V1: u8 = 3;\n")];
        let d = doc("anything");
        let out = check(&files, Some(&d));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("WIRE_V1"));
    }

    #[test]
    fn drifted_intake_cap_fires() {
        let files = vec![src(
            "net.rs",
            "pub const MAX_FRAME_PAYLOAD: u32 = 1 << 27;\n",
        )];
        let d = doc("anything");
        let out = check(&files, Some(&d));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("MAX_FRAME_PAYLOAD"));
        assert!(out[0].message.contains("§7.2"));
    }

    #[test]
    fn silent_without_protocol_doc() {
        let files = vec![src("error.rs", ENUM)];
        assert!(check(&files, None).is_empty());
    }
}
