//! **L3 · safety-comment** — every `unsafe` block or `unsafe impl` must
//! be justified by a `// SAFETY:` comment.
//!
//! All but one crate `#![forbid(unsafe_code)]`; the exception is
//! `heax-math`'s scoped thread-pool (`exec.rs`), whose lifetime-erasure
//! tricks are exactly where a wrong refactor becomes UB. The rule
//! requires the justification to sit in the comment block directly above
//! the statement containing the `unsafe` token (or trailing on the same
//! line). `unsafe fn` declarations are exempt — their contract is the
//! signature's documentation — and, unlike the other rules, test code is
//! **not** exempt: UB in a test harness is still UB.

use crate::diag::{Diagnostic, RuleId};
use crate::rules::{is_ident_char, last_nonspace, token_positions};
use crate::scanner::SourceFile;

/// True when the `unsafe` token at byte `pos` introduces an `unsafe fn`
/// or `unsafe trait` declaration (exempt) rather than a block/impl.
fn is_decl(code: &str, pos: usize) -> bool {
    let after = code[pos + "unsafe".len()..].trim_start();
    after.starts_with("fn") && !after[2..].chars().next().is_some_and(is_ident_char)
        || after.starts_with("trait") && !after[5..].chars().next().is_some_and(is_ident_char)
}

/// Walks from 0-based line `at` up to the first line of the enclosing
/// statement (a line whose predecessor ends a statement or opens a
/// block), then reports whether the contiguous comment block above it —
/// or a same-line comment anywhere in the statement — says `SAFETY:`.
fn has_safety_comment(file: &SourceFile, at: usize) -> bool {
    let mut start = at;
    loop {
        if file.lines[start].comment.contains("SAFETY:") {
            return true;
        }
        if start == 0 {
            return false;
        }
        let prev = &file.lines[start - 1];
        let prev_code = prev.code.trim_end();
        let continues =
            !prev_code.is_empty() && !matches!(last_nonspace(prev_code), Some(';' | '{' | '}'));
        if continues {
            start -= 1;
            continue;
        }
        break;
    }
    // Comment block directly above the statement start.
    let mut i = start;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        if !l.code.trim().is_empty() {
            return false;
        }
        if l.comment.contains("SAFETY:") {
            return true;
        }
        if l.comment.is_empty() {
            return false;
        }
    }
    false
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, l) in file.lines.iter().enumerate() {
        for pos in token_positions(&l.code, "unsafe") {
            // `unsafe` must be a keyword use, not part of a path.
            if l.code[pos + 6..].chars().next().is_some_and(is_ident_char) {
                continue;
            }
            if is_decl(&l.code, pos) {
                continue;
            }
            if !has_safety_comment(file, i) {
                diags.push(Diagnostic::new(
                    RuleId::L3,
                    &file.rel,
                    i + 1,
                    "`unsafe` without a `// SAFETY:` justification in the comment directly above",
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::Path;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&scan(Path::new("x.rs"), Path::new("x.rs"), src))
    }

    #[test]
    fn bare_unsafe_block_fires() {
        let d = run("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn commented_block_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn comment_above_multiline_statement_passes() {
        let src = "fn f(t: &T) {\n    // SAFETY: lifetime erasure only.\n    let e: *const T =\n        unsafe { std::mem::transmute(t) };\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_impl_requires_comment() {
        let d = run("struct J;\nunsafe impl Send for J {}\n");
        assert_eq!(d.len(), 1);
        let ok = run("struct J;\n// SAFETY: plain data.\nunsafe impl Send for J {}\n");
        assert!(ok.is_empty());
    }

    #[test]
    fn unsafe_fn_decl_is_exempt() {
        assert!(run("unsafe fn raw(p: *const u8) -> u8 {\n    *p\n}\n").is_empty());
    }

    #[test]
    fn test_code_is_not_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
        assert_eq!(run(src).len(), 1);
    }
}
