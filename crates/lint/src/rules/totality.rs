//! **L2 · decode-totality** — wire-decode paths must be total.
//!
//! PROTOCOL.md guarantees that every `deserialize_*` / wire-decode entry
//! point returns `Err` on hostile input and never panics (PRs 4/7 fuzz
//! this with `adversarial_decode`). This rule enforces the property
//! syntactically in the files that implement the codec (`serialize.rs`,
//! `wire.rs`) and in any function named `deserialize_*` anywhere else:
//!
//! * no `.unwrap()` / `.expect(`;
//! * no `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
//!   `assert!` family (`debug_assert!` is tolerated: tier-1 and the
//!   adversarial fuzz suites run with debug assertions on, so a
//!   reachable one already fails tests);
//! * no unchecked indexing `expr[...]` — use `get(..)` and propagate.
//!
//! `#[cfg(test)]` modules inside those files are exempt.

use crate::diag::{Diagnostic, RuleId};
use crate::rules::{last_nonspace, token_positions};
use crate::scanner::SourceFile;

/// File names whose entire (non-test) contents are decode/codec surface.
const CODEC_FILES: [&str; 2] = ["serialize.rs", "wire.rs"];
/// Panicking macros forbidden on decode paths.
const PANIC_MACROS: [&str; 7] = [
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// True when byte `pos` in `code` opens an index expression (`a[`,
/// `foo()[`, `x]?[`) rather than a slice type, attribute, or literal.
fn is_index_open(code: &str, pos: usize) -> bool {
    let before = &code[..pos];
    match last_nonspace(before) {
        Some(c) if c.is_alphanumeric() || c == '_' => {
            // `&'a [u8]` is a slice type, not indexing: walk back over the
            // identifier and reject it when it turns out to be a lifetime.
            let t = before.trim_end();
            let ident: usize = t
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .map(char::len_utf8)
                .sum();
            !t[..t.len() - ident].ends_with('\'')
        }
        Some(c) => c == ')' || c == ']' || c == '?',
        None => false,
    }
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.is_test_path() {
        return Vec::new();
    }
    let whole_file = CODEC_FILES.contains(&file.file_name());
    let mut diags = Vec::new();
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let in_decode_fn = l
            .fn_name
            .as_deref()
            .is_some_and(|f| f.starts_with("deserialize_"));
        if !whole_file && !in_decode_fn {
            continue;
        }
        let mut report = |msg: String| {
            diags.push(Diagnostic::new(RuleId::L2, &file.rel, i + 1, msg));
        };
        if !token_positions(&l.code, ".unwrap()").is_empty() {
            report("`.unwrap()` on a decode path; propagate an error instead".into());
        }
        if !token_positions(&l.code, ".expect(").is_empty() {
            report("`.expect(...)` on a decode path; propagate an error instead".into());
        }
        for m in PANIC_MACROS {
            if !token_positions(&l.code, m).is_empty() {
                report(format!(
                    "`{m}(...)` on a decode path; decoding must be total"
                ));
            }
        }
        let trimmed = l.code.trim_start();
        if !trimmed.starts_with("#[") && !trimmed.starts_with("#![") {
            let hits = l
                .code
                .char_indices()
                .filter(|&(p, c)| c == '[' && is_index_open(&l.code, p))
                .count();
            if hits > 0 {
                report("unchecked indexing on a decode path; use `get(..)` and propagate".into());
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::Path;

    fn run_named(name: &str, src: &str) -> Vec<Diagnostic> {
        check(&scan(Path::new(name), Path::new(name), src))
    }

    #[test]
    fn unwrap_in_wire_rs_fires() {
        let d = run_named(
            "wire.rs",
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn other_files_only_deserialize_fns_are_checked() {
        let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\nfn deserialize_k(b: &[u8]) -> u8 {\n    b[0]\n}\n";
        let d = run_named("keys.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("indexing"));
    }

    #[test]
    fn debug_assert_and_get_are_tolerated() {
        let src = "fn deserialize_k(b: &[u8]) -> Option<u8> {\n    debug_assert!(!b.is_empty());\n    b.get(0).copied()\n}\n";
        assert!(run_named("s.rs", src).is_empty());
    }

    #[test]
    fn slice_types_and_macros_are_not_indexing() {
        let src = "fn deserialize_k(b: &[u8]) -> Vec<u8> {\n    let _t: [u8; 4] = Default::default();\n    vec![0u8]\n}\n";
        assert!(run_named("s.rs", src).is_empty());
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        let src = "struct R<'a> {\n    buf: &'a [u8],\n}\nfn deserialize_k<'a>(b: &'a [u8]) -> &'a [u8] {\n    b\n}\n";
        assert!(run_named("wire.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(run_named("wire.rs", src).is_empty());
    }

    #[test]
    fn panic_macro_fires() {
        let d = run_named("wire.rs", "fn f() {\n    panic!(\"no\");\n}\n");
        assert_eq!(d.len(), 1);
    }
}
