//! The rule set. Each submodule implements one rule over the scanned
//! line channels; `lib.rs` wires them together and applies allowlists.

pub mod counters;
pub mod domain;
pub mod locks;
pub mod protocol;
pub mod safety;
pub mod schema;
pub mod totality;

/// True for characters that can continue a Rust identifier.
pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte positions where `needle` occurs in `hay` with no identifier
/// character immediately before it (so `assert!` does not match inside
/// `debug_assert!`). The needle's own first character anchors the match.
pub(crate) fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let needs_boundary = needle.chars().next().is_some_and(is_ident_char);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = hay[from..].find(needle) {
        let pos = from + at;
        let bounded = !needs_boundary
            || hay[..pos]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident_char(c));
        if bounded {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// The last non-whitespace char of `s`, if any.
pub(crate) fn last_nonspace(s: &str) -> Option<char> {
    s.chars().rev().find(|c| !c.is_whitespace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundary_excludes_identifier_prefixes() {
        assert_eq!(
            token_positions("debug_assert!(x); assert!(y);", "assert!").len(),
            1
        );
        assert_eq!(token_positions(".unwrap().unwrap()", ".unwrap()").len(), 2);
    }
}
