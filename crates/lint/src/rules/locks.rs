//! **L5 · lock-discipline** — `.lock()` recovers from poisoning.
//!
//! The executor thread pool re-raises worker panics *after* making the
//! shared state consistent again, so a poisoned mutex is an expected,
//! recoverable condition (PR 4). Unwrapping a `.lock()` turns one
//! panicking request into a permanently wedged server. The sanctioned
//! pattern is
//!
//! ```text
//! self.state.lock().unwrap_or_else(PoisonError::into_inner)
//! ```
//!
//! The rule flags `.lock()` followed by `.unwrap()` / `.expect(` (looking
//! across line breaks), and `.unwrap_or_else(..)` handlers that do not
//! mention `into_inner`. Binding the `Result` (match / if-let) is
//! accepted — that is visibly handling the error.

use crate::diag::{Diagnostic, RuleId};
use crate::scanner::SourceFile;

/// How far past `.lock()` the rule reads to classify the follow-up.
const LOOKAHEAD_LINES: usize = 3;

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.is_test_path() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for (i, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let mut from = 0;
        while let Some(at) = l.code[from..].find(".lock()") {
            let pos = from + at + ".lock()".len();
            from = pos;
            // Same-line remainder plus a few following lines.
            let mut after = l.code[pos..].to_string();
            for next in file.lines.iter().skip(i + 1).take(LOOKAHEAD_LINES) {
                after.push(' ');
                after.push_str(next.code.trim());
            }
            let after = after.trim_start();
            let verdict = if after.starts_with(".unwrap()") {
                Some("`.lock().unwrap()` drops poison recovery")
            } else if after.starts_with(".expect(") {
                Some("`.lock().expect(...)` drops poison recovery")
            } else if after.starts_with(".unwrap_or_else(") {
                let handler: String = after.chars().take(160).collect();
                if handler.contains("into_inner") {
                    None
                } else {
                    Some("`.lock().unwrap_or_else(..)` must recover the guard via `PoisonError::into_inner`")
                }
            } else {
                None
            };
            if let Some(msg) = verdict {
                diags.push(Diagnostic::new(
                    RuleId::L5,
                    &file.rel,
                    i + 1,
                    format!("{msg}; use `.lock().unwrap_or_else(PoisonError::into_inner)`"),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use std::path::Path;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&scan(Path::new("x.rs"), Path::new("x.rs"), src))
    }

    #[test]
    fn lock_unwrap_fires() {
        let d = run("fn f(m: &Mutex<u8>) -> u8 {\n    *m.lock().unwrap()\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn multiline_unwrap_fires() {
        let d = run("fn f(m: &Mutex<u8>) -> u8 {\n    *m\n        .lock()\n        .unwrap()\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn into_inner_recovery_passes() {
        let src = "fn f(m: &Mutex<u8>) -> u8 {\n    *m.lock().unwrap_or_else(PoisonError::into_inner)\n}\n";
        assert!(run(src).is_empty());
        let src2 =
            "fn f(m: &Mutex<u8>) -> u8 {\n    *m.lock().unwrap_or_else(|e| e.into_inner())\n}\n";
        assert!(run(src2).is_empty());
    }

    #[test]
    fn swallowing_handler_fires() {
        let d =
            run("fn f(m: &Mutex<u8>) {\n    let _ = m.lock().unwrap_or_else(|_| panic!());\n}\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn binding_the_result_passes() {
        let src =
            "fn f(m: &Mutex<u8>) {\n    if let Ok(g) = m.lock() {\n        drop(g);\n    }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(m: &Mutex<u8>) { m.lock().unwrap(); }\n}\n";
        assert!(run(src).is_empty());
    }
}
