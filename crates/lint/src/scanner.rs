//! Hand-rolled lexical pass over Rust source.
//!
//! The analyzer deliberately avoids `syn`/`proc-macro2` (the build image
//! has no crates.io access and the workspace vendors everything), so this
//! module implements the minimum lexical understanding the rules need:
//!
//! * a character-level state machine that classifies every byte of a
//!   source file as **code**, **comment**, or **string-literal content**
//!   (handling nested block comments, raw strings, byte strings, char
//!   literals vs. lifetimes, and escapes);
//! * a structural post-pass that tracks brace depth to mark
//!   `#[cfg(test)]` / `#[test]` regions and the innermost enclosing
//!   function of every line.
//!
//! Rules then operate on per-line views: `code` (literal contents and
//! comments blanked out), `comment` (the comment text of the line), and
//! `strings` (the contents of string literals started on the line).

use std::path::{Path, PathBuf};

/// One physical source line, split into the channels the rules consume.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and string/char literal
    /// contents blanked (quote characters are kept so tokens do not
    /// merge across a removed literal).
    pub code: String,
    /// Concatenated comment text appearing on this line, including the
    /// `//` / `/*` markers.
    pub comment: String,
    /// Contents of string and byte-string literals that *start* on this
    /// line (raw and escaped forms included, escapes left undecoded).
    pub strings: Vec<String>,
    /// True when the line sits inside a `#[cfg(test)]` or `#[test]`
    /// item, or the whole file lives under a test-like directory.
    pub in_test: bool,
    /// Brace depth at the start of the line.
    pub depth: u32,
    /// Name of the innermost function enclosing (or entered on) this
    /// line, when one is known.
    pub fn_name: Option<String>,
}

/// A scanned source file: the path it was loaded from, its path relative
/// to the lint root, and the per-line lexical channels.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or as-given) path, used for diagnostics.
    pub path: PathBuf,
    /// Path relative to the linted tree root; component names drive
    /// per-rule scoping (e.g. `tests/`, `benches/`).
    pub rel: PathBuf,
    /// The scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// File name (`serialize.rs` etc.), empty when the path has none.
    pub fn file_name(&self) -> &str {
        self.path.file_name().and_then(|n| n.to_str()).unwrap_or("")
    }

    /// True when the file lives under a `tests/`, `benches/` or
    /// `examples/` directory *below the lint root* — integration tests
    /// and benches are exempt from the production-contract rules.
    pub fn is_test_path(&self) -> bool {
        self.rel.components().any(|c| {
            matches!(
                c.as_os_str().to_str(),
                Some("tests" | "benches" | "examples")
            )
        })
    }
}

/// Lexer state carried across lines.
enum State {
    Code,
    LineComment,
    Block(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

/// Scans `text` into per-line channels and runs the structural post-pass.
pub fn scan(path: &Path, rel: &Path, text: &str) -> SourceFile {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut cur_string = String::new();
    let mut state = State::Code;
    let mut i = 0usize;
    let n = chars.len();
    macro_rules! flush_line {
        () => {{
            if let State::Str { .. } = state {
                // A literal spanning lines: bank what we have so far so
                // per-line rules (L7) still see the prefix.
                if !cur_string.is_empty() {
                    cur.strings.push(std::mem::take(&mut cur_string));
                }
            }
            lines.push(std::mem::take(&mut cur));
        }};
    }
    while i < n {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment = state {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    state = State::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::Block(1);
                    cur.comment.push_str("/*");
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str { raw_hashes: None };
                    cur.code.push('"');
                    i += 1;
                } else if c == 'r' || c == 'b' {
                    // Possible raw/byte string prefix; only when not part
                    // of a preceding identifier.
                    let prev_ident = cur
                        .code
                        .chars()
                        .last()
                        .is_some_and(|p| p.is_alphanumeric() || p == '_');
                    match raw_prefix(&chars[i..]) {
                        Some((skip, hashes)) if !prev_ident => {
                            cur.code.push('"');
                            state = State::Str { raw_hashes: hashes };
                            i += skip;
                        }
                        _ => {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                } else if c == '\'' {
                    // Char literal vs. lifetime.
                    if is_char_literal(&chars[i..]) {
                        cur.code.push('\'');
                        state = State::Char;
                        i += 1;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                if c == '*' && i + 1 < n && chars[i + 1] == '/' {
                    cur.comment.push_str("*/");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    cur.comment.push_str("/*");
                    i += 2;
                    state = State::Block(depth + 1);
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' && i + 1 < n {
                        cur_string.push(c);
                        cur_string.push(chars[i + 1]);
                        i += 2;
                    } else if c == '"' {
                        cur.code.push('"');
                        cur.strings.push(std::mem::take(&mut cur_string));
                        state = State::Code;
                        i += 1;
                    } else {
                        cur_string.push(c);
                        i += 1;
                    }
                }
                Some(h) => {
                    if c == '"' && closes_raw(&chars[i..], h) {
                        cur.code.push('"');
                        cur.strings.push(std::mem::take(&mut cur_string));
                        state = State::Code;
                        i += 1 + h as usize;
                    } else {
                        cur_string.push(c);
                        i += 1;
                    }
                }
            },
            State::Char => {
                if c == '\\' && i + 1 < n {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    let mut file = SourceFile {
        path: path.to_path_buf(),
        rel: rel.to_path_buf(),
        lines,
    };
    structure_pass(&mut file);
    file
}

/// Recognizes `r"`, `r#"`, `b"`, `br##"` … at the head of `s`.
/// Returns `(chars_to_skip, raw_hash_count)`; `None` hash count means a
/// plain (escaped) byte string.
fn raw_prefix(s: &[char]) -> Option<(usize, Option<u32>)> {
    let mut j = 0;
    if s[j] == 'b' {
        j += 1;
    }
    let raw = j < s.len() && s[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while raw && j < s.len() && s[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < s.len() && s[j] == '"' && (raw || s[0] == 'b') {
        Some((j + 1, raw.then_some(hashes)))
    } else {
        None
    }
}

/// True when `"` at `s[0]` followed by `hashes` `#`s closes a raw string.
fn closes_raw(s: &[char], hashes: u32) -> bool {
    let h = hashes as usize;
    s.len() > h && s[1..=h].iter().all(|&c| c == '#')
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(s: &[char]) -> bool {
    // s[0] is the opening quote.
    if s.len() < 3 {
        return false;
    }
    if s[1] == '\\' {
        return true;
    }
    s[1] != '\'' && s[2] == '\''
}

/// Extracts the identifier starting at `chars[i]`.
fn ident_at(chars: &[char], mut i: usize) -> String {
    let mut out = String::new();
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Finds `fn <name>` on a code line, returning the name.
fn fn_decl_name(code: &str) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i + 1 < chars.len() {
        if chars[i] == 'f'
            && chars[i + 1] == 'n'
            && (i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_'))
            && chars.get(i + 2).is_some_and(|c| c.is_whitespace())
        {
            let mut j = i + 2;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            let name = ident_at(&chars, j);
            if !name.is_empty() {
                return Some(name);
            }
        }
        i += 1;
    }
    None
}

/// Brace-depth post-pass: marks `#[cfg(test)]` regions and records the
/// innermost enclosing function per line.
fn structure_pass(file: &mut SourceFile) {
    let path_test = file.is_test_path();
    let mut depth: u32 = 0;
    let mut fn_stack: Vec<(String, u32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    // Depth at which the current #[cfg(test)] item opened its brace;
    // the region ends when depth returns to this value.
    let mut test_at: Option<u32> = None;
    let mut pending_test = false;
    for line in &mut file.lines {
        line.depth = depth;
        let mut line_fn = fn_stack.last().map(|(n, _)| n.clone());
        if line.code.contains("#[cfg(test)]") || line.code.trim_start().starts_with("#[test]") {
            pending_test = true;
        }
        if let Some(name) = fn_decl_name(&line.code) {
            pending_fn = Some(name);
        }
        line.in_test = path_test || pending_test || test_at.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_test {
                        test_at = Some(depth);
                        pending_test = false;
                    }
                    if let Some(name) = pending_fn.take() {
                        line_fn = Some(name.clone());
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_at == Some(depth) {
                        test_at = None;
                    }
                    if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        fn_stack.pop();
                    }
                }
                // `#[cfg(test)] use …;` / trait method signatures end the
                // pending item without opening a brace.
                ';' if depth == line.depth => {
                    pending_test = false;
                    pending_fn = None;
                }
                _ => {}
            }
        }
        line.fn_name = line_fn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scan_str(text: &str) -> SourceFile {
        scan(Path::new("x.rs"), Path::new("x.rs"), text)
    }

    #[test]
    fn comments_and_strings_are_split() {
        let f = scan_str("let x = \"a // not comment\"; // real\n");
        assert_eq!(f.lines[0].code.trim(), "let x = \"\";");
        assert_eq!(f.lines[0].comment, "// real");
        assert_eq!(f.lines[0].strings, vec!["a // not comment"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let f = scan_str("let m = *b\"HEAW\"; let r = r#\"x \" y\"#;\n");
        assert_eq!(f.lines[0].strings, vec!["HEAW", "x \" y"]);
        assert!(!f.lines[0].code.contains("HEAW"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan_str("fn f<'a>(x: &'a str) -> char { 'b' }\n");
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains('b'));
    }

    #[test]
    fn block_comments_nest() {
        let f = scan_str("/* a /* b */ still */ code();\n");
        assert_eq!(f.lines[0].code.trim(), "code();");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan_str(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn enclosing_fn_is_tracked() {
        let src = "fn deserialize_x(b: &[u8]) -> u8 {\n    b[0]\n}\nfn other() {\n    1;\n}\n";
        let f = scan_str(src);
        assert_eq!(f.lines[1].fn_name.as_deref(), Some("deserialize_x"));
        assert_eq!(f.lines[4].fn_name.as_deref(), Some("other"));
    }

    #[test]
    fn multiline_signature_binds_to_fn() {
        let src = "fn deserialize_y(\n    b: &[u8],\n) -> u8 {\n    b[0]\n}\n";
        let f = scan_str(src);
        assert_eq!(f.lines[3].fn_name.as_deref(), Some("deserialize_y"));
    }
}
