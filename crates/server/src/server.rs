//! The multi-session server: frame intake, work queue, and the batch
//! scheduler that amortizes shared work across a flush.
//!
//! ## Serving model
//!
//! [`HeaxServer`] is a synchronous byte-in/byte-out engine, deliberately
//! free of I/O so any transport (TCP, RPC, a test harness, a bench
//! loop) can drive it:
//!
//! * [`HeaxServer::handle_frame`] ingests one client frame. Control
//!   frames (session open/close, key registration) are answered
//!   immediately; request frames are validated, decoded, and queued.
//! * [`HeaxServer::flush`] drains the queue as **one batch**, returning
//!   a response frame per queued request in submission order.
//!
//! ## Batching semantics
//!
//! A flush is a compiler pipeline: **lower → fuse → execute → model.**
//! Queued requests lower into the shared op-stream IR of
//! [`heax_hw::ir`] — one [`IrOp`] per request carrying session/key
//! identity, operand placement, handle identity and dependency edges —
//! and the rotation-fusion IR pass ([`OpStream::fuse_rotations`])
//! merges same-session rotations of one input into hoisted groups:
//! the input's RNS decomposition is computed once and every requested
//! step reuses it, so `t` rotations cost one decomposition plus `t`
//! cheap accumulation passes ([`Evaluator::rotate_many`]). A fused
//! group executes at the queue position of its *first* member and
//! resolves its input there; a `park_as` that overwrites a handle the
//! group reads closes the group, so rotations submitted after the
//! write start a fresh group and observe the new value — in-order
//! semantics hold even across handle reuse. Results decrypt to the
//! same values as sequential rotations (hoisting is decrypt-equal,
//! not bit-equal).
//! All other requests execute individually, in order, against the
//! server's shared evaluator — whose key-switch scratch and the
//! sessions' Shoup-ready cached keys are themselves cross-request
//! amortizations.
//!
//! The fused stream is the single source of truth: the executor walks
//! its member lists, and the *same* stream is then priced by the
//! attached machine models — the single-board pipeline
//! ([`HeaxServer::with_board_model`]) and/or the multi-board cluster
//! router ([`HeaxServer::with_cluster_model`]). There is no
//! model-only stream reconstruction anywhere; what the models price
//! is exactly what the server ran. [`HeaxServer::queued_plan`]
//! exposes the same lowering for inspection without executing.
//!
//! Results can be **parked** in modeled board DRAM ([`HeaxSystem`]'s
//! Figure 7 memory map) instead of shipping back: a request with
//! `park_as` stores its output under a session-scoped handle that later
//! requests reference as an operand, avoiding the serialize → ship →
//! deserialize round trip between dependent steps. Parked operands are
//! released when their session closes.
//!
//! ## Failure containment
//!
//! Every failure is answered with a structured error frame carrying an
//! [`ErrorCode`](crate::error::ErrorCode); neither the session nor the
//! server is ever torn down by hostile or malformed input.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use heax_ckks::galois::galois_elt_from_step;
use heax_ckks::serialize::{
    deserialize_galois_keys, deserialize_operand, deserialize_relin_key, serialize_ciphertext_into,
};
use heax_ckks::{Ciphertext, CkksContext, Evaluator};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::cluster::{ClusterConfig, ClusterReport, RoutingPolicy};
use heax_hw::faults::FaultPlan;
use heax_hw::ir::{FusedStream, IrOp, OpKind, OpStream};
use heax_hw::scheduler::{PipelineConfig, PipelineReport};
use heax_math::exec::Executor;

use crate::error::ServerError;
use crate::metrics::{Metrics, ModeledBoardStats, ModeledClusterStats, ServerStats, SessionStats};
use crate::session::SessionRegistry;
use crate::wire::{self, Frame, MessageKind, OpCode, ReplyBody, WireOperand};

/// A decoded, validated request waiting for the next flush.
#[derive(Debug)]
struct Pending {
    session: u64,
    request: u64,
    /// Wire version of the request frame — echoed in the reply.
    version: u8,
    op: OpCode,
    step: i64,
    /// v2 compress-reply flag: modulus-switch a wire-returned result
    /// down to one RNS limb before serializing.
    compress_reply: bool,
    /// Whether any inline operand arrived seeded (halved upload) —
    /// carried into the IR so the board models price the smaller
    /// host→board transfer.
    seeded_input: bool,
    park_as: Option<String>,
    operands: Vec<Operand>,
}

/// A resolved-at-submit operand: inline ciphertexts are deserialized
/// (and validated against the context) when the request frame arrives,
/// parked handles are looked up lazily at execution time.
#[derive(Debug)]
enum Operand {
    Inline(Ciphertext),
    Parked(String),
}

/// The board model attached by [`HeaxServer::with_board_model`]: every
/// flush's fused IR stream is scheduled on the board-level pipeline and
/// the modeled cost accumulates into [`ModeledBoardStats`].
#[derive(Debug)]
struct BoardModel {
    config: PipelineConfig,
    stats: ModeledBoardStats,
    last_report: Option<PipelineReport>,
}

/// The cluster model attached by [`HeaxServer::with_cluster_model`]:
/// every flush's fused IR stream is routed across N modeled boards and
/// the routing outcome accumulates into [`ModeledClusterStats`].
#[derive(Debug)]
struct ClusterModel {
    config: ClusterConfig,
    policy: RoutingPolicy,
    /// Injected fault schedule (empty = healthy cluster). Routed flushes
    /// go through the degradation-aware scheduler so crashes, slow
    /// boards and corrupted keys show up in the modeled figures.
    faults: FaultPlan,
    stats: ModeledClusterStats,
    last_report: Option<ClusterReport>,
}

/// Bounded-retry and deadline policy for [`HeaxServer::flush`].
///
/// Execution attempts that hit a (injected) transient fault are retried
/// with exponential backoff, each wait billed in modeled microseconds
/// against the request's deadline budget. A request whose budget runs
/// out is **shed** ([`ErrorCode::LoadShed`](crate::error::ErrorCode));
/// one that exhausts its retries with budget to spare is answered
/// **degraded** ([`ErrorCode::Degraded`](crate::error::ErrorCode)).
/// Either way the client gets a structured error frame — a faulty
/// backend can slow the server down but never wedge it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Retries allowed per request before answering degraded.
    pub max_retries: u32,
    /// Base backoff in modeled microseconds; doubles per retry.
    pub backoff_us: u64,
    /// Per-request deadline budget in modeled microseconds
    /// (0 = unlimited).
    pub deadline_us: u64,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            max_retries: 3,
            backoff_us: 50,
            deadline_us: 0,
        }
    }
}

/// Deterministic transient-fault source for the flush retry path: a
/// seeded LCG draw per execution attempt, so a given
/// `(seed, rate, workload)` triple always sheds/degrades the same
/// requests — reproducible chaos, no wall clock involved.
#[derive(Debug)]
struct FaultInjector {
    state: u64,
    rate: f64,
}

impl FaultInjector {
    fn new(seed: u64, rate: f64) -> Self {
        FaultInjector {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Does this execution attempt hit a transient fault?
    fn attempt_fails(&mut self) -> bool {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let unit = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.rate
    }
}

/// The multi-session HEAX server (see the module docs for the serving
/// model).
#[derive(Debug)]
pub struct HeaxServer<'a> {
    ctx: &'a CkksContext,
    eval: Evaluator<'a>,
    system: HeaxSystem<'a>,
    sessions: SessionRegistry,
    queue: VecDeque<Pending>,
    metrics: Metrics,
    board_model: Option<BoardModel>,
    cluster_model: Option<ClusterModel>,
    flush_policy: FlushPolicy,
    injector: Option<FaultInjector>,
    scratch_out: Vec<u8>,
}

impl<'a> HeaxServer<'a> {
    /// Builds a server around the given board for a paper parameter-set
    /// context (ring degree 4096/8192/16384).
    ///
    /// # Errors
    ///
    /// [`ServerError::Core`] if the accelerator cannot be derived for
    /// the context (non-paper ring degree — use
    /// [`HeaxServer::with_system`] for custom rings).
    pub fn new(ctx: &'a CkksContext, board: Board) -> Result<Self, ServerError> {
        let accel = HeaxAccelerator::new(ctx, board)?;
        Ok(Self::with_system(ctx, HeaxSystem::new(accel)))
    }

    /// Builds a server around an explicit host+board system (small test
    /// rings construct their accelerator via
    /// [`HeaxAccelerator::with_arch`]).
    pub fn with_system(ctx: &'a CkksContext, system: HeaxSystem<'a>) -> Self {
        Self {
            ctx,
            eval: Evaluator::new(ctx),
            system,
            sessions: SessionRegistry::default(),
            queue: VecDeque::new(),
            metrics: Metrics::default(),
            board_model: None,
            cluster_model: None,
            flush_policy: FlushPolicy::default(),
            injector: None,
            scratch_out: Vec::new(),
        }
    }

    /// Builder option: pins the evaluation backend (default: the global
    /// `HEAX_THREADS`-selected executor).
    #[must_use]
    pub fn with_executor(mut self, exec: Arc<dyn Executor>) -> Self {
        self.eval = Evaluator::with_executor(self.ctx, exec);
        self
    }

    /// Builder option: attaches the board-level pipeline model with
    /// `num_cores` modeled HEAX cores. Every subsequent flush replays
    /// its executed op stream (hoisted groups and all) on the
    /// [`heax_hw::scheduler`] pipeline; aggregates surface as
    /// [`ServerStats::modeled`], per-request compute cost as
    /// [`crate::metrics::OpStats::modeled_cycles`], and the latest
    /// flush's full [`PipelineReport`] via
    /// [`HeaxServer::board_report`]. Functional results are untouched —
    /// the model runs beside the evaluator, not instead of it.
    ///
    /// # Errors
    ///
    /// [`ServerError::Core`] if the pipeline configuration is invalid
    /// for this server's accelerator (zero cores).
    pub fn with_board_model(mut self, num_cores: usize) -> Result<Self, ServerError> {
        let config = self.system.accelerator().pipeline_config(num_cores)?;
        let stats = ModeledBoardStats {
            cores: num_cores,
            freq_mhz: config.freq_mhz,
            ..Default::default()
        };
        self.board_model = Some(BoardModel {
            config,
            stats,
            last_report: None,
        });
        Ok(self)
    }

    /// Builder option: attaches the multi-board cluster model —
    /// `num_boards` modeled HEAX boards of `num_cores` cores each
    /// behind the session-affinity router of [`heax_hw::cluster`]
    /// (stealing enabled; override with
    /// [`HeaxServer::with_routing_policy`]). Every subsequent flush
    /// routes its fused IR stream — the exact stream the server
    /// executes — across the cluster; aggregates surface as
    /// [`ServerStats::cluster`] and the latest flush's full
    /// [`ClusterReport`] via [`HeaxServer::cluster_report`].
    /// Functional results are untouched.
    ///
    /// # Errors
    ///
    /// [`ServerError::Core`] if the cluster configuration is invalid
    /// (zero cores, or a board count outside 1..=64).
    pub fn with_cluster_model(
        mut self,
        num_boards: usize,
        num_cores: usize,
    ) -> Result<Self, ServerError> {
        let config = self
            .system
            .accelerator()
            .cluster_config(num_boards, num_cores)?;
        let stats = ModeledClusterStats {
            boards: num_boards,
            cores_per_board: num_cores,
            freq_mhz: config.board.freq_mhz,
            boards_alive: num_boards,
            ..Default::default()
        };
        self.cluster_model = Some(ClusterModel {
            config,
            policy: RoutingPolicy::Affinity { steal: true },
            faults: FaultPlan::none(),
            stats,
            last_report: None,
        });
        Ok(self)
    }

    /// Builder option: the cluster model's routing policy (no effect
    /// without [`HeaxServer::with_cluster_model`]).
    #[must_use]
    pub fn with_routing_policy(mut self, policy: RoutingPolicy) -> Self {
        if let Some(m) = self.cluster_model.as_mut() {
            m.policy = policy;
        }
        self
    }

    /// Builder option: a seeded fault schedule for the cluster model
    /// (no effect without [`HeaxServer::with_cluster_model`]). Every
    /// subsequent flush routes through the degradation-aware scheduler
    /// — crashed boards are drained, sessions fail over, corrupted keys
    /// are re-uploaded — and the fault counters accumulate into
    /// [`ModeledClusterStats`]. Functional results are untouched: the
    /// plan reshapes modeled placement and timing only.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(m) = self.cluster_model.as_mut() {
            m.faults = plan;
        }
        self
    }

    /// Builder option: the flush retry/deadline policy (see
    /// [`FlushPolicy`]; the default allows 3 retries with a 50 µs base
    /// backoff and no deadline).
    #[must_use]
    pub fn with_flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// Builder option: deterministic transient-fault injection on the
    /// flush execution path. Each execution attempt fails with
    /// probability `rate` drawn from a seeded generator, exercising the
    /// [`FlushPolicy`] retry/backoff/shed machinery reproducibly. A
    /// rate of 0 (or never calling this) leaves serving byte-identical
    /// to a fault-free server.
    #[must_use]
    pub fn with_transient_faults(mut self, seed: u64, rate: f64) -> Self {
        self.injector = if rate > 0.0 {
            Some(FaultInjector::new(seed, rate))
        } else {
            None
        };
        self
    }

    /// The board-pipeline report of the most recent modeled flush
    /// (`None` before the first flush or without
    /// [`HeaxServer::with_board_model`]).
    pub fn board_report(&self) -> Option<&PipelineReport> {
        self.board_model
            .as_ref()
            .and_then(|m| m.last_report.as_ref())
    }

    /// The cluster report of the most recent modeled flush (`None`
    /// before the first flush or without
    /// [`HeaxServer::with_cluster_model`]).
    pub fn cluster_report(&self) -> Option<&ClusterReport> {
        self.cluster_model
            .as_ref()
            .and_then(|m| m.last_report.as_ref())
    }

    /// The server's context.
    pub fn context(&self) -> &CkksContext {
        self.ctx
    }

    /// The host+board system holding parked results.
    pub fn system(&self) -> &HeaxSystem<'a> {
        &self.system
    }

    /// A parked result, if present (introspection/tests).
    pub fn parked(&self, session: u64, name: &str) -> Option<&Ciphertext> {
        self.system.load(&scoped(session, name))
    }

    /// Ingests one client frame.
    ///
    /// Control frames are answered immediately (`Some(reply)`); request
    /// frames are queued for the next [`HeaxServer::flush`] and return
    /// `None`. Any failure — including bytes that don't decode as a
    /// frame at all — is answered with an error frame rather than by
    /// dropping state.
    pub fn handle_frame(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        self.metrics.frames_in = self.metrics.frames_in.saturating_add(1);
        self.metrics.bytes_in = self.metrics.bytes_in.saturating_add(bytes.len() as u64);
        let (version, session, request, outcome) = match wire::decode_frame(bytes) {
            Ok(frame) => {
                if let Ok(sess) = self.sessions.get_mut(frame.session) {
                    sess.stats.bytes_in = sess.stats.bytes_in.saturating_add(bytes.len() as u64);
                }
                let (v, s, r) = (frame.version, frame.session, frame.request);
                (v, s, r, self.dispatch_control(frame))
            }
            // An undecodable frame has no trustworthy version field;
            // answer at v1, which every client can parse.
            Err(e) => (wire::WIRE_V1, 0, 0, Err(e)),
        };
        match outcome {
            Ok(reply) => reply.inspect(|frame| self.note_out(session, frame)),
            Err(e) => {
                if matches!(e, ServerError::Malformed { .. }) {
                    self.metrics.decode_errors = self.metrics.decode_errors.saturating_add(1);
                }
                if let Ok(sess) = self.sessions.get_mut(session) {
                    sess.stats.errors = sess.stats.errors.saturating_add(1);
                }
                Some(self.error_frame(version, session, request, &e))
            }
        }
    }

    /// Routes one decoded frame; `Ok(None)` means "queued".
    fn dispatch_control(&mut self, frame: Frame<'_>) -> Result<Option<Vec<u8>>, ServerError> {
        match frame.kind {
            MessageKind::OpenSession => {
                let id = self.sessions.open();
                Ok(Some(wire::encode_frame(
                    frame.version,
                    MessageKind::SessionOpened,
                    id,
                    frame.request,
                    &[],
                )))
            }
            MessageKind::RegisterRelinKey => {
                // Session first: key parsing (a Shoup-table rebuild) is
                // exactly the cost a bogus session id must not be able
                // to bill the server for.
                self.sessions.get(frame.session)?;
                // Deserialize (rebuilding Shoup tables) once; every later
                // request of this session hits the cache.
                let rlk = deserialize_relin_key(frame.payload, self.ctx)?;
                self.note_key_registration(frame.session);
                self.sessions.get_mut(frame.session)?.rlk = Some(rlk);
                Ok(Some(wire::encode_frame(
                    frame.version,
                    MessageKind::KeyRegistered,
                    frame.session,
                    frame.request,
                    &[],
                )))
            }
            MessageKind::RegisterGaloisKeys => {
                self.sessions.get(frame.session)?;
                let gks = deserialize_galois_keys(frame.payload, self.ctx)?;
                self.note_key_registration(frame.session);
                self.sessions.get_mut(frame.session)?.gks = Some(gks);
                Ok(Some(wire::encode_frame(
                    frame.version,
                    MessageKind::KeyRegistered,
                    frame.session,
                    frame.request,
                    &[],
                )))
            }
            MessageKind::Request => {
                self.enqueue(frame)?;
                Ok(None)
            }
            MessageKind::CloseSession => {
                let closed = self.sessions.close(frame.session)?;
                for name in &closed.parked {
                    self.system.remove(&scoped(frame.session, name));
                }
                Ok(Some(wire::encode_frame(
                    frame.version,
                    MessageKind::SessionClosed,
                    frame.session,
                    frame.request,
                    &[],
                )))
            }
            // Server→client kinds bounced back at us.
            _ => Err(ServerError::Unsupported {
                reason: format!("{:?} is not a client message", frame.kind),
            }),
        }
    }

    /// Validates and queues one request frame.
    fn enqueue(&mut self, frame: Frame<'_>) -> Result<(), ServerError> {
        // The session must exist before any payload work.
        self.sessions.get(frame.session)?;
        let req = wire::decode_request(frame.payload, frame.version)?;
        let mut operands = Vec::with_capacity(req.operands.len());
        let mut seeded_input = false;
        for operand in &req.operands {
            operands.push(match operand {
                // Inline ciphertexts are decoded (and validated against
                // the context) at intake, so a malformed operand fails
                // here with a structured error instead of poisoning the
                // batch. `deserialize_operand` takes the zero-copy view
                // path for full ciphertexts and re-expands the uniform
                // polynomial for seeded ones.
                WireOperand::Inline(bytes) => {
                    let (ct, seeded) = deserialize_operand(bytes, self.ctx)?;
                    if seeded {
                        seeded_input = true;
                        self.metrics.seeded_operands =
                            self.metrics.seeded_operands.saturating_add(1);
                    }
                    Operand::Inline(ct)
                }
                WireOperand::Parked(name) => Operand::Parked((*name).to_string()),
            });
        }
        let sess = self.sessions.get_mut(frame.session)?;
        sess.stats.requests = sess.stats.requests.saturating_add(1);
        self.queue.push_back(Pending {
            session: frame.session,
            request: frame.request,
            version: frame.version,
            op: req.op,
            step: req.step,
            compress_reply: req.compress_reply,
            seeded_input,
            park_as: req.park_as.map(str::to_string),
            operands,
        });
        self.metrics.queue_high_water = self.metrics.queue_high_water.max(self.queue.len());
        Ok(())
    }

    /// Requests currently waiting for a flush.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently queued for one session — the in-flight count
    /// a transport-layer key cache must consult before evicting that
    /// session's keys (an evicted session with queued work would fail
    /// its own batch).
    pub fn queued_for(&self, session: u64) -> usize {
        self.queue.iter().filter(|p| p.session == session).count()
    }

    /// Drops a session's cached (Shoup-ready) evaluation keys to free
    /// modeled DRAM, leaving the session itself open. The next key
    /// registration for this session is billed as a re-registration
    /// ([`ServerStats::key_reregistrations`]); the eviction itself
    /// increments [`ServerStats::key_evictions`] only when there was
    /// key material to drop.
    ///
    /// Callers (the [`crate::net`] session-key LRU) must not evict a
    /// session with queued requests — check
    /// [`HeaxServer::queued_for`] first; this method does not second-
    /// guess the cache policy.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`] for ids never opened or already
    /// closed.
    pub fn evict_session_keys(&mut self, session: u64) -> Result<(), ServerError> {
        let sess = self.sessions.get_mut(session)?;
        if sess.rlk.is_some() || sess.gks.is_some() {
            sess.rlk = None;
            sess.gks = None;
            sess.keys_evicted = true;
            self.metrics.key_evictions = self.metrics.key_evictions.saturating_add(1);
        }
        Ok(())
    }

    /// Bills a key registration: a first upload is free, a re-upload
    /// after [`HeaxServer::evict_session_keys`] counts as a
    /// re-registration.
    fn note_key_registration(&mut self, session: u64) {
        if let Ok(sess) = self.sessions.get_mut(session) {
            if sess.keys_evicted {
                sess.keys_evicted = false;
                self.metrics.key_reregistrations =
                    self.metrics.key_reregistrations.saturating_add(1);
            }
        }
    }

    /// Lowers the currently queued requests into the shared op-stream
    /// IR, *without* executing or draining anything — the stream the
    /// next [`HeaxServer::flush`] will fuse, execute and model. One
    /// [`IrOp`] per request, submission order; parked handles and
    /// inline inputs carry identity ids, handle write→read edges become
    /// dependency edges.
    pub fn queued_stream(&self) -> OpStream {
        let items: Vec<&Pending> = self.queue.iter().collect();
        lower_ops(&items)
    }

    /// The fused IR plan of the currently queued requests:
    /// [`HeaxServer::queued_stream`] after the
    /// [`OpStream::fuse_rotations`] pass — exactly what the next flush
    /// executes and what the board/cluster models price. Pure
    /// inspection: nothing is drained, no model is required.
    pub fn queued_plan(&self) -> FusedStream {
        self.queued_stream().fuse_rotations()
    }

    /// Executes every queued request as one batch and returns a response
    /// frame per request, in submission order.
    ///
    /// The pipeline is lower → fuse → execute → model: requests lower
    /// into the shared IR ([`heax_hw::ir`]), the rotation-fusion pass
    /// merges same-session same-input rotations into hoisted groups,
    /// and the resulting fused stream is the *single source of truth* —
    /// the executor walks its member lists (a fused group runs as one
    /// hoisted [`Evaluator::rotate_many`] at its first member's queue
    /// position), and the very same stream is handed to the board
    /// and/or cluster models afterwards. No model-only stream is ever
    /// reconstructed.
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        let items: Vec<Pending> = self.queue.drain(..).collect();
        if items.is_empty() {
            return Vec::new();
        }
        self.metrics.batches = self.metrics.batches.saturating_add(1);
        self.metrics.batched_requests = self
            .metrics
            .batched_requests
            .saturating_add(items.len() as u64);

        let refs: Vec<&Pending> = items.iter().collect();
        let plan = lower_ops(&refs).fuse_rotations();
        // A fused group executes at its first member's queue position
        // (the IR pass guarantees first members are group minima), so
        // in-order reply semantics and handle visibility hold.
        let fused_at_first: HashMap<usize, usize> = plan
            .members
            .iter()
            .enumerate()
            .map(|(fused, members)| (members[0], fused))
            .collect();

        let mut results: Vec<Option<Result<Ciphertext, ServerError>>> =
            (0..items.len()).map(|_| None).collect();
        let mut replies = Vec::with_capacity(items.len());
        for idx in 0..items.len() {
            // Execute (a fused group executes when its first member is
            // reached and pre-fills every member's slot). Each execution
            // site first passes the retry policy: transient faults are
            // retried with backoff, and a request that runs out of
            // budget or retries is answered shed/degraded instead of
            // wedging the batch. The verdict covers the whole site — a
            // fused group retries (and sheds) as a unit.
            if results[idx].is_none() {
                let fused = fused_at_first[&idx];
                let members = &plan.members[fused];
                if let Err(e) = self.admit_execution() {
                    let n = members.len() as u64;
                    let stats = self.metrics.op_mut(items[idx].op);
                    stats.requests = stats.requests.saturating_add(n);
                    if matches!(e, ServerError::LoadShed { .. }) {
                        self.metrics.shed_requests = self.metrics.shed_requests.saturating_add(n);
                    } else {
                        self.metrics.degraded_replies =
                            self.metrics.degraded_replies.saturating_add(n);
                    }
                    for &i in members {
                        results[i] = Some(Err(e.clone()));
                    }
                } else {
                    let start = Instant::now();
                    if items[idx].op == OpCode::Rotate {
                        self.exec_rotate_group(&items, members, &mut results);
                        let stats = self.metrics.op_mut(OpCode::Rotate);
                        stats.requests = stats.requests.saturating_add(members.len() as u64);
                        stats.busy_us += start.elapsed().as_secs_f64() * 1e6;
                    } else {
                        let outcome = self.exec_single(&items[idx]);
                        let stats = self.metrics.op_mut(items[idx].op);
                        stats.requests = stats.requests.saturating_add(1);
                        stats.busy_us += start.elapsed().as_secs_f64() * 1e6;
                        results[idx] = Some(outcome);
                    }
                }
            }
            // Park or serialize, then frame the reply. Parking happens
            // here — at the request's queue position — so a handle is
            // visible to every later request in the same flush.
            let it = &items[idx];
            let outcome = results[idx].take().expect("slot filled by executor");
            let frame = match self.finish_request(it, outcome) {
                Ok(frame) => {
                    self.note_out(it.session, &frame);
                    frame
                }
                Err(e) => {
                    let op = self.metrics.op_mut(it.op);
                    op.errors = op.errors.saturating_add(1);
                    if let Ok(sess) = self.sessions.get_mut(it.session) {
                        sess.stats.errors = sess.stats.errors.saturating_add(1);
                    }
                    self.error_frame(it.version, it.session, it.request, &e)
                }
            };
            replies.push(frame);
        }
        self.model_flush(&items, &plan);
        replies
    }

    /// Runs the flush retry policy for one execution site: draws
    /// transient faults per attempt, bills exponential backoff in
    /// modeled microseconds against the deadline budget, and decides
    /// whether execution may proceed. `Ok(())` without an injector —
    /// the healthy path is zero-cost and byte-identical.
    fn admit_execution(&mut self) -> Result<(), ServerError> {
        let policy = self.flush_policy;
        let Some(injector) = self.injector.as_mut() else {
            return Ok(());
        };
        let mut spent_us = 0u64;
        let mut retries = 0u64;
        let mut attempt = 0u32;
        let verdict = loop {
            if !injector.attempt_fails() {
                break Ok(());
            }
            if attempt >= policy.max_retries {
                break Err(ServerError::Degraded {
                    retries: attempt,
                    reason: "transient backend fault persisted".into(),
                });
            }
            let backoff = policy.backoff_us.saturating_mul(1u64 << attempt.min(16));
            spent_us = spent_us.saturating_add(backoff);
            if policy.deadline_us > 0 && spent_us > policy.deadline_us {
                break Err(ServerError::LoadShed {
                    spent_us,
                    budget_us: policy.deadline_us,
                });
            }
            retries += 1;
            attempt += 1;
        };
        self.metrics.retries = self.metrics.retries.saturating_add(retries);
        verdict
    }

    /// Prices one flush's fused IR stream on the attached machine
    /// models — the same stream the executor just ran. Modeled compute
    /// cost is attributed back to op kinds and to owning sessions
    /// (accumulating across flushes).
    fn model_flush(&mut self, items: &[Pending], plan: &FusedStream) {
        if plan.ops.is_empty() {
            return;
        }
        if let Some(model) = self.board_model.as_mut() {
            // Never let a model hiccup fail serving: the ops are
            // well-formed by construction.
            if let Ok(report) = model.config.schedule_stream(&plan.ops) {
                let s = &mut model.stats;
                s.flushes = s.flushes.saturating_add(1);
                s.modeled_ops = s.modeled_ops.saturating_add(report.ops.len() as u64);
                s.modeled_requests = s.modeled_requests.saturating_add(report.requests());
                s.modeled_cycles = s.modeled_cycles.saturating_add(report.total_cycles);
                s.core_busy_cycles = s.core_busy_cycles.saturating_add(report.core_busy());
                s.fifo_high_water = s.fifo_high_water.max(report.fifo_high_water);
                let stalls = report.stalls();
                s.input_wait_cycles = s.input_wait_cycles.saturating_add(stalls.input_wait);
                s.output_wait_cycles = s.output_wait_cycles.saturating_add(stalls.output_wait);
                s.fifo_backpressure_cycles = s
                    .fifo_backpressure_cycles
                    .saturating_add(stalls.fifo_backpressure);
                s.last_bound = report.bound();
                for (fused, timing) in report.ops.iter().enumerate() {
                    let cycles = timing.compute.1 - timing.compute.0;
                    let code = items[plan.members[fused][0]].op;
                    let op = self.metrics.op_mut(code);
                    op.modeled_cycles = op.modeled_cycles.saturating_add(cycles);
                    if let Ok(sess) = self.sessions.get_mut(plan.ops[fused].session) {
                        sess.stats.modeled_cycles =
                            sess.stats.modeled_cycles.saturating_add(cycles);
                    }
                }
                model.last_report = Some(report);
            }
        }
        if let Some(model) = self.cluster_model.as_mut() {
            if let Ok(report) =
                model
                    .config
                    .schedule_stream_faulted(&plan.ops, model.policy, &model.faults)
            {
                let s = &mut model.stats;
                s.flushes = s.flushes.saturating_add(1);
                s.modeled_ops = s.modeled_ops.saturating_add(plan.ops.len() as u64);
                s.modeled_requests = s.modeled_requests.saturating_add(report.requests());
                s.modeled_cycles = s.modeled_cycles.saturating_add(report.total_cycles);
                s.routing_hits = s.routing_hits.saturating_add(report.routing_hits);
                s.routing_misses = s.routing_misses.saturating_add(report.routing_misses);
                s.steals = s.steals.saturating_add(report.steals);
                s.replication_bytes = s.replication_bytes.saturating_add(report.replication_bytes);
                s.cross_board_deps = s.cross_board_deps.saturating_add(report.cross_board_deps);
                // Fault outcome: liveness is a gauge (the latest flush's
                // survivor count), recovery work accumulates.
                s.boards_alive = report.boards_alive();
                s.failovers = s.failovers.saturating_add(report.failovers);
                s.re_replications = s.re_replications.saturating_add(report.re_replications);
                s.corrupt_ksk_evictions = s
                    .corrupt_ksk_evictions
                    .saturating_add(report.corrupt_ksk_evictions);
                s.parked_rematerializations = s
                    .parked_rematerializations
                    .saturating_add(report.parked_rematerializations);
                s.recovery_cycles = s.recovery_cycles.saturating_add(report.recovery_cycles);
                // Attribute per-op/per-session compute from the cluster
                // only when no board model already did (avoid billing
                // the same flush twice).
                if self.board_model.is_none() {
                    for (fused, cycles) in report.per_op_compute_cycles().into_iter().enumerate() {
                        let code = items[plan.members[fused][0]].op;
                        let op = self.metrics.op_mut(code);
                        op.modeled_cycles = op.modeled_cycles.saturating_add(cycles);
                        if let Ok(sess) = self.sessions.get_mut(plan.ops[fused].session) {
                            sess.stats.modeled_cycles =
                                sess.stats.modeled_cycles.saturating_add(cycles);
                        }
                    }
                }
                model.last_report = Some(report);
            }
        }
    }

    /// Parks or serializes one successful result into a complete
    /// response frame (written in one pass — the result bytes are
    /// copied exactly once).
    fn finish_request(
        &mut self,
        it: &Pending,
        outcome: Result<Ciphertext, ServerError>,
    ) -> Result<Vec<u8>, ServerError> {
        let mut ct = outcome?;
        match &it.park_as {
            Some(name) => {
                // Session before store: a request can outlive its session
                // (closed between submit and flush), and parking for a
                // dead session would orphan the DRAM entry forever —
                // session ids are never reused, so nothing could release
                // it afterwards.
                self.sessions.get(it.session)?;
                self.system.store(&scoped(it.session, name), ct)?;
                let sess = self.sessions.get_mut(it.session)?;
                if !sess.parked.contains(name) {
                    sess.parked.push(name.clone());
                }
                Ok(wire::encode_response_frame(
                    it.version,
                    it.session,
                    it.request,
                    &ReplyBody::Parked(name),
                ))
            }
            None => {
                // v2 compress-reply: the client only needs decrypt-level
                // precision, so drop every limb above the last before
                // serializing — the board→host leg shrinks by ~k×.
                if it.compress_reply && ct.level() > 0 {
                    ct = self.eval.mod_switch_to_level(&ct, 0)?;
                }
                if it.compress_reply {
                    self.metrics.compressed_replies =
                        self.metrics.compressed_replies.saturating_add(1);
                }
                serialize_ciphertext_into(&ct, &mut self.scratch_out);
                Ok(wire::encode_response_frame(
                    it.version,
                    it.session,
                    it.request,
                    &ReplyBody::Ciphertext(&self.scratch_out),
                ))
            }
        }
    }

    /// Resolves an operand to a borrowed ciphertext.
    fn resolve<'s>(
        &'s self,
        session: u64,
        operand: &'s Operand,
    ) -> Result<&'s Ciphertext, ServerError> {
        match operand {
            Operand::Inline(ct) => Ok(ct),
            Operand::Parked(name) => self
                .system
                .load(&scoped(session, name))
                .ok_or_else(|| ServerError::UnknownHandle { name: name.clone() }),
        }
    }

    /// Executes one non-fused request.
    fn exec_single(&self, it: &Pending) -> Result<Ciphertext, ServerError> {
        let a = self.resolve(it.session, &it.operands[0])?;
        match it.op {
            OpCode::Add => {
                let b = self.resolve(it.session, &it.operands[1])?;
                Ok(self.eval.add(a, b)?)
            }
            OpCode::MultiplyRelin => {
                let b = self.resolve(it.session, &it.operands[1])?;
                let rlk = self.sessions.get(it.session)?.relin_key()?;
                Ok(self.eval.multiply_relin(a, b, rlk)?)
            }
            OpCode::SquareRelin => {
                let rlk = self.sessions.get(it.session)?.relin_key()?;
                Ok(self.eval.multiply_relin(a, a, rlk)?)
            }
            OpCode::Rescale => Ok(self.eval.rescale(a)?),
            OpCode::Rotate => {
                let gks = self.sessions.get(it.session)?.galois_keys(it.step)?;
                Ok(self.eval.rotate(a, it.step, gks)?)
            }
            OpCode::Fetch => Ok(a.clone()),
        }
    }

    /// Executes a fused rotation group: one hoisted decomposition, one
    /// accumulation pass per member with a key. Members lacking a key
    /// fail individually; the rest still share the hoisting.
    fn exec_rotate_group(
        &mut self,
        items: &[Pending],
        members: &[usize],
        results: &mut [Option<Result<Ciphertext, ServerError>>],
    ) {
        let fail_all = |results: &mut [Option<Result<Ciphertext, ServerError>>],
                        e: &ServerError| {
            for &i in members {
                results[i] = Some(Err(e.clone()));
            }
        };
        let first = &items[members[0]];
        let sess = match self.sessions.get(first.session) {
            Ok(s) => s,
            Err(e) => return fail_all(results, &e),
        };
        let gks = match sess.galois_keys(first.step) {
            Ok(g) => g,
            Err(e) => return fail_all(results, &e),
        };
        let input = match self.resolve(first.session, &first.operands[0]) {
            Ok(ct) => ct,
            Err(e) => return fail_all(results, &e),
        };
        // Partition members by key availability so one uncovered step
        // doesn't sink its siblings.
        let mut covered: Vec<usize> = Vec::with_capacity(members.len());
        let mut steps: Vec<i64> = Vec::with_capacity(members.len());
        for &i in members {
            let step = items[i].step;
            if gks.key(galois_elt_from_step(step, self.ctx.n())).is_ok() {
                covered.push(i);
                steps.push(step);
            } else {
                results[i] = Some(Err(ServerError::MissingGaloisKey { step }));
            }
        }
        match covered.len() {
            0 => {}
            // A lone rotation takes the plain path (bit-identical to the
            // unbatched server; hoisting would only add noise headroom).
            1 => {
                results[covered[0]] =
                    Some(self.eval.rotate(input, steps[0], gks).map_err(Into::into));
            }
            _ => match self.eval.rotate_many(input, &steps, gks) {
                Ok(outputs) => {
                    self.metrics.hoisted_groups = self.metrics.hoisted_groups.saturating_add(1);
                    self.metrics.hoisted_rotations = self
                        .metrics
                        .hoisted_rotations
                        .saturating_add(covered.len() as u64);
                    for (&i, ct) in covered.iter().zip(outputs) {
                        results[i] = Some(Ok(ct));
                    }
                }
                Err(e) => {
                    let e = ServerError::from(e);
                    for &i in &covered {
                        results[i] = Some(Err(e.clone()));
                    }
                }
            },
        }
    }

    /// Builds (and accounts) an error frame at the peer's wire version.
    fn error_frame(&mut self, version: u8, session: u64, request: u64, e: &ServerError) -> Vec<u8> {
        let payload = wire::encode_error(e.code(), &e.to_string());
        let frame = wire::encode_frame(version, MessageKind::Error, session, request, &payload);
        self.note_out(session, &frame);
        frame
    }

    /// Outbound frame accounting.
    fn note_out(&mut self, session: u64, frame: &[u8]) {
        self.metrics.frames_out = self.metrics.frames_out.saturating_add(1);
        self.metrics.bytes_out = self.metrics.bytes_out.saturating_add(frame.len() as u64);
        if let Ok(sess) = self.sessions.get_mut(session) {
            sess.stats.bytes_out = sess.stats.bytes_out.saturating_add(frame.len() as u64);
        }
    }

    /// A point-in-time snapshot of every server metric.
    pub fn stats(&self) -> ServerStats {
        let mut per_session: Vec<(u64, SessionStats)> =
            self.sessions.iter().map(|(id, s)| (id, s.stats)).collect();
        per_session.sort_unstable_by_key(|&(id, _)| id);
        ServerStats {
            sessions_open: self.sessions.len(),
            sessions_total: self.sessions.opened_total(),
            frames_in: self.metrics.frames_in,
            frames_out: self.metrics.frames_out,
            bytes_in: self.metrics.bytes_in,
            bytes_out: self.metrics.bytes_out,
            decode_errors: self.metrics.decode_errors,
            queue_depth: self.queue.len(),
            queue_high_water: self.metrics.queue_high_water,
            batches: self.metrics.batches,
            batched_requests: self.metrics.batched_requests,
            hoisted_groups: self.metrics.hoisted_groups,
            hoisted_rotations: self.metrics.hoisted_rotations,
            seeded_operands: self.metrics.seeded_operands,
            compressed_replies: self.metrics.compressed_replies,
            shed_requests: self.metrics.shed_requests,
            degraded_replies: self.metrics.degraded_replies,
            retries: self.metrics.retries,
            key_evictions: self.metrics.key_evictions,
            key_reregistrations: self.metrics.key_reregistrations,
            parked_entries: self.system.mapped_entries(),
            parked_bytes: self.system.dram_used_bytes(),
            per_op: self.metrics.per_op_snapshot(),
            per_session,
            modeled: self.board_model.as_ref().map(|m| m.stats),
            cluster: self.cluster_model.as_ref().map(|m| m.stats),
        }
    }
}

/// Lowers a batch of pending requests into the shared op-stream IR —
/// one [`IrOp`] per request, submission order. Pure: no evaluator, no
/// board model, no side effects, so the lowering is unit-testable on
/// its own and `flush` and [`HeaxServer::queued_stream`] share it.
///
/// Identity assignment:
/// * every distinct `(session, handle)` parked name gets a handle id —
///   used both as operand identity (`input_id`) and park target
///   (`output_id`), so the IR fusion pass sees handle overwrites;
/// * the *first* operand of a rotation, when inline, gets an id by
///   full ciphertext equality against earlier inline rotation inputs —
///   equal inline inputs fuse exactly as the wire-level batching
///   semantics promise;
/// * parked reads gain dependency edges on the request that last
///   parked the handle within this batch.
fn lower_ops(items: &[&Pending]) -> OpStream {
    let mut stream = OpStream::new();
    let mut next_id: u64 = 1;
    let mut handle_ids: HashMap<(u64, &str), u64> = HashMap::new();
    let mut last_writer: HashMap<u64, usize> = HashMap::new();
    // Inline rotation inputs seen so far: (item index, assigned id).
    let mut inline_reps: Vec<(usize, u64)> = Vec::new();
    for (idx, it) in items.iter().enumerate() {
        let kind = match it.op {
            OpCode::Add => OpKind::Add,
            OpCode::MultiplyRelin | OpCode::SquareRelin => OpKind::Multiply,
            OpCode::Rescale => OpKind::Rescale,
            OpCode::Rotate => OpKind::Rotate,
            OpCode::Fetch => OpKind::Fetch,
        };
        let mut op = IrOp::new(kind).with_session(it.session);
        if !it.operands.is_empty() && it.operands.iter().all(|o| matches!(o, Operand::Parked(_))) {
            op = op.with_parked_input();
        }
        // v2 transfer shaping: seeded uploads halve the host→board leg;
        // a compressed wire-returned reply ships one limb of k. Both
        // are priced by the board/cluster models through these flags.
        if it.seeded_input {
            op = op.with_seeded_input();
        }
        if it.compress_reply && it.park_as.is_none() {
            op = op.with_reply_limbs(1);
        }
        match it.operands.first() {
            Some(Operand::Parked(name)) => {
                let id = *handle_ids
                    .entry((it.session, name.as_str()))
                    .or_insert_with(|| {
                        let id = next_id;
                        next_id += 1;
                        id
                    });
                op = op.with_input_id(id);
            }
            Some(Operand::Inline(ct)) if it.op == OpCode::Rotate => {
                let found = inline_reps.iter().find(
                    |&&(rep, _)| matches!(&items[rep].operands[0], Operand::Inline(rc) if rc == ct),
                );
                let id = match found {
                    Some(&(_, id)) => id,
                    None => {
                        let id = next_id;
                        next_id += 1;
                        inline_reps.push((idx, id));
                        id
                    }
                };
                op = op.with_input_id(id);
            }
            _ => {}
        }
        for operand in it.operands.iter().take(2) {
            if let Operand::Parked(name) = operand {
                if let Some(&id) = handle_ids.get(&(it.session, name.as_str())) {
                    if let Some(&writer) = last_writer.get(&id) {
                        op = op.with_dep(writer as u32);
                    }
                }
            }
        }
        if let Some(name) = &it.park_as {
            let id = *handle_ids
                .entry((it.session, name.as_str()))
                .or_insert_with(|| {
                    let id = next_id;
                    next_id += 1;
                    id
                });
            op = op.with_parked_output().with_output_id(id);
            last_writer.insert(id, idx);
        }
        stream.push(op);
    }
    stream
}

/// Session-scoped park handle, so sessions can never read or clobber
/// each other's DRAM-resident results.
fn scoped(session: u64, name: &str) -> String {
    format!("s{session}/{name}")
}
