//! The multi-session server: frame intake, work queue, and the batch
//! scheduler that amortizes shared work across a flush.
//!
//! ## Serving model
//!
//! [`HeaxServer`] is a synchronous byte-in/byte-out engine, deliberately
//! free of I/O so any transport (TCP, RPC, a test harness, a bench
//! loop) can drive it:
//!
//! * [`HeaxServer::handle_frame`] ingests one client frame. Control
//!   frames (session open/close, key registration) are answered
//!   immediately; request frames are validated, decoded, and queued.
//! * [`HeaxServer::flush`] drains the queue as **one batch**, returning
//!   a response frame per queued request in submission order.
//!
//! ## Batching semantics
//!
//! Within a flush, rotation requests of one session that target the
//! same input ciphertext are fused into a single hoisted
//! [`Evaluator::rotate_many`] call: the input's RNS decomposition is
//! computed once and every requested step reuses it, so `t` rotations
//! cost one decomposition plus `t` cheap accumulation passes. A fused
//! group executes at the queue position of its *first* member and
//! resolves its input there; a `park_as` that overwrites a handle the
//! group reads closes the group, so rotations submitted after the
//! write start a fresh group and observe the new value — in-order
//! semantics hold even across handle reuse. Results decrypt to the
//! same values as sequential rotations (hoisting is decrypt-equal,
//! not bit-equal).
//! All other requests execute individually, in order, against the
//! server's shared evaluator — whose key-switch scratch and the
//! sessions' Shoup-ready cached keys are themselves cross-request
//! amortizations.
//!
//! Results can be **parked** in modeled board DRAM ([`HeaxSystem`]'s
//! Figure 7 memory map) instead of shipping back: a request with
//! `park_as` stores its output under a session-scoped handle that later
//! requests reference as an operand, avoiding the serialize → ship →
//! deserialize round trip between dependent steps. Parked operands are
//! released when their session closes.
//!
//! ## Failure containment
//!
//! Every failure is answered with a structured error frame carrying an
//! [`ErrorCode`](crate::error::ErrorCode); neither the session nor the
//! server is ever torn down by hostile or malformed input.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use heax_ckks::galois::galois_elt_from_step;
use heax_ckks::serialize::{
    deserialize_ciphertext, deserialize_galois_keys, deserialize_relin_key,
    serialize_ciphertext_into,
};
use heax_ckks::{Ciphertext, CkksContext, Evaluator};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::scheduler::{BoardOp, BoardOpKind, PipelineConfig, PipelineReport};
use heax_math::exec::Executor;

use crate::error::ServerError;
use crate::metrics::{Metrics, ModeledBoardStats, ServerStats, SessionStats};
use crate::session::SessionRegistry;
use crate::wire::{self, Frame, MessageKind, OpCode, ReplyBody, WireOperand};

/// A decoded, validated request waiting for the next flush.
#[derive(Debug)]
struct Pending {
    session: u64,
    request: u64,
    op: OpCode,
    step: i64,
    park_as: Option<String>,
    operands: Vec<Operand>,
}

/// A resolved-at-submit operand: inline ciphertexts are deserialized
/// (and validated against the context) when the request frame arrives,
/// parked handles are looked up lazily at execution time.
#[derive(Debug)]
enum Operand {
    Inline(Ciphertext),
    Parked(String),
}

impl Operand {
    /// Whether two operands denote the same input for rotation fusion.
    fn same_input(&self, other: &Operand) -> bool {
        match (self, other) {
            (Operand::Parked(a), Operand::Parked(b)) => a == b,
            (Operand::Inline(a), Operand::Inline(b)) => a == b,
            _ => false,
        }
    }
}

/// The board model attached by [`HeaxServer::with_board_model`]: every
/// flush's op stream is replayed on the board-level pipeline scheduler
/// and the modeled cost accumulates into [`ModeledBoardStats`].
#[derive(Debug)]
struct BoardModel {
    config: PipelineConfig,
    stats: ModeledBoardStats,
    last_report: Option<PipelineReport>,
}

/// The multi-session HEAX server (see the module docs for the serving
/// model).
#[derive(Debug)]
pub struct HeaxServer<'a> {
    ctx: &'a CkksContext,
    eval: Evaluator<'a>,
    system: HeaxSystem<'a>,
    sessions: SessionRegistry,
    queue: VecDeque<Pending>,
    metrics: Metrics,
    board_model: Option<BoardModel>,
    scratch_out: Vec<u8>,
}

impl<'a> HeaxServer<'a> {
    /// Builds a server around the given board for a paper parameter-set
    /// context (ring degree 4096/8192/16384).
    ///
    /// # Errors
    ///
    /// [`ServerError::Core`] if the accelerator cannot be derived for
    /// the context (non-paper ring degree — use
    /// [`HeaxServer::with_system`] for custom rings).
    pub fn new(ctx: &'a CkksContext, board: Board) -> Result<Self, ServerError> {
        let accel = HeaxAccelerator::new(ctx, board)?;
        Ok(Self::with_system(ctx, HeaxSystem::new(accel)))
    }

    /// Builds a server around an explicit host+board system (small test
    /// rings construct their accelerator via
    /// [`HeaxAccelerator::with_arch`]).
    pub fn with_system(ctx: &'a CkksContext, system: HeaxSystem<'a>) -> Self {
        Self {
            ctx,
            eval: Evaluator::new(ctx),
            system,
            sessions: SessionRegistry::default(),
            queue: VecDeque::new(),
            metrics: Metrics::default(),
            board_model: None,
            scratch_out: Vec::new(),
        }
    }

    /// Builder option: pins the evaluation backend (default: the global
    /// `HEAX_THREADS`-selected executor).
    #[must_use]
    pub fn with_executor(mut self, exec: Arc<dyn Executor>) -> Self {
        self.eval = Evaluator::with_executor(self.ctx, exec);
        self
    }

    /// Builder option: attaches the board-level pipeline model with
    /// `num_cores` modeled HEAX cores. Every subsequent flush replays
    /// its executed op stream (hoisted groups and all) on the
    /// [`heax_hw::scheduler`] pipeline; aggregates surface as
    /// [`ServerStats::modeled`], per-request compute cost as
    /// [`crate::metrics::OpStats::modeled_cycles`], and the latest
    /// flush's full [`PipelineReport`] via
    /// [`HeaxServer::board_report`]. Functional results are untouched —
    /// the model runs beside the evaluator, not instead of it.
    ///
    /// # Errors
    ///
    /// [`ServerError::Core`] if the pipeline configuration is invalid
    /// for this server's accelerator (zero cores).
    pub fn with_board_model(mut self, num_cores: usize) -> Result<Self, ServerError> {
        let config = self.system.accelerator().pipeline_config(num_cores)?;
        let stats = ModeledBoardStats {
            cores: num_cores,
            freq_mhz: config.freq_mhz,
            ..Default::default()
        };
        self.board_model = Some(BoardModel {
            config,
            stats,
            last_report: None,
        });
        Ok(self)
    }

    /// The board-pipeline report of the most recent modeled flush
    /// (`None` before the first flush or without
    /// [`HeaxServer::with_board_model`]).
    pub fn board_report(&self) -> Option<&PipelineReport> {
        self.board_model
            .as_ref()
            .and_then(|m| m.last_report.as_ref())
    }

    /// The server's context.
    pub fn context(&self) -> &CkksContext {
        self.ctx
    }

    /// The host+board system holding parked results.
    pub fn system(&self) -> &HeaxSystem<'a> {
        &self.system
    }

    /// A parked result, if present (introspection/tests).
    pub fn parked(&self, session: u64, name: &str) -> Option<&Ciphertext> {
        self.system.load(&scoped(session, name))
    }

    /// Ingests one client frame.
    ///
    /// Control frames are answered immediately (`Some(reply)`); request
    /// frames are queued for the next [`HeaxServer::flush`] and return
    /// `None`. Any failure — including bytes that don't decode as a
    /// frame at all — is answered with an error frame rather than by
    /// dropping state.
    pub fn handle_frame(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        self.metrics.frames_in += 1;
        self.metrics.bytes_in += bytes.len() as u64;
        let (session, request, outcome) = match wire::decode_frame(bytes) {
            Ok(frame) => {
                if let Ok(sess) = self.sessions.get_mut(frame.session) {
                    sess.stats.bytes_in += bytes.len() as u64;
                }
                let (s, r) = (frame.session, frame.request);
                (s, r, self.dispatch_control(frame))
            }
            Err(e) => (0, 0, Err(e)),
        };
        match outcome {
            Ok(reply) => reply.inspect(|frame| self.note_out(session, frame)),
            Err(e) => {
                if matches!(e, ServerError::Malformed { .. }) {
                    self.metrics.decode_errors += 1;
                }
                if let Ok(sess) = self.sessions.get_mut(session) {
                    sess.stats.errors += 1;
                }
                Some(self.error_frame(session, request, &e))
            }
        }
    }

    /// Routes one decoded frame; `Ok(None)` means "queued".
    fn dispatch_control(&mut self, frame: Frame<'_>) -> Result<Option<Vec<u8>>, ServerError> {
        match frame.kind {
            MessageKind::OpenSession => {
                let id = self.sessions.open();
                Ok(Some(wire::encode_frame(
                    MessageKind::SessionOpened,
                    id,
                    frame.request,
                    &[],
                )))
            }
            MessageKind::RegisterRelinKey => {
                // Session first: key parsing (a Shoup-table rebuild) is
                // exactly the cost a bogus session id must not be able
                // to bill the server for.
                self.sessions.get(frame.session)?;
                // Deserialize (rebuilding Shoup tables) once; every later
                // request of this session hits the cache.
                let rlk = deserialize_relin_key(frame.payload, self.ctx)?;
                self.sessions.get_mut(frame.session)?.rlk = Some(rlk);
                Ok(Some(wire::encode_frame(
                    MessageKind::KeyRegistered,
                    frame.session,
                    frame.request,
                    &[],
                )))
            }
            MessageKind::RegisterGaloisKeys => {
                self.sessions.get(frame.session)?;
                let gks = deserialize_galois_keys(frame.payload, self.ctx)?;
                self.sessions.get_mut(frame.session)?.gks = Some(gks);
                Ok(Some(wire::encode_frame(
                    MessageKind::KeyRegistered,
                    frame.session,
                    frame.request,
                    &[],
                )))
            }
            MessageKind::Request => {
                self.enqueue(frame)?;
                Ok(None)
            }
            MessageKind::CloseSession => {
                let closed = self.sessions.close(frame.session)?;
                for name in &closed.parked {
                    self.system.remove(&scoped(frame.session, name));
                }
                Ok(Some(wire::encode_frame(
                    MessageKind::SessionClosed,
                    frame.session,
                    frame.request,
                    &[],
                )))
            }
            // Server→client kinds bounced back at us.
            _ => Err(ServerError::Unsupported {
                reason: format!("{:?} is not a client message", frame.kind),
            }),
        }
    }

    /// Validates and queues one request frame.
    fn enqueue(&mut self, frame: Frame<'_>) -> Result<(), ServerError> {
        // The session must exist before any payload work.
        self.sessions.get(frame.session)?;
        let req = wire::decode_request(frame.payload)?;
        let mut operands = Vec::with_capacity(req.operands.len());
        for operand in &req.operands {
            operands.push(match operand {
                // Inline ciphertexts are decoded (and validated against
                // the context) at intake, so a malformed operand fails
                // here with a structured error instead of poisoning the
                // batch.
                WireOperand::Inline(bytes) => {
                    Operand::Inline(deserialize_ciphertext(bytes, self.ctx)?)
                }
                WireOperand::Parked(name) => Operand::Parked((*name).to_string()),
            });
        }
        let sess = self.sessions.get_mut(frame.session)?;
        sess.stats.requests += 1;
        self.queue.push_back(Pending {
            session: frame.session,
            request: frame.request,
            op: req.op,
            step: req.step,
            park_as: req.park_as.map(str::to_string),
            operands,
        });
        self.metrics.queue_high_water = self.metrics.queue_high_water.max(self.queue.len());
        Ok(())
    }

    /// Requests currently waiting for a flush.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Executes every queued request as one batch and returns a response
    /// frame per request, in submission order.
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        let items: Vec<Pending> = self.queue.drain(..).collect();
        if items.is_empty() {
            return Vec::new();
        }
        self.metrics.batches += 1;
        self.metrics.batched_requests += items.len() as u64;

        // Fusion plan: rotation requests sharing (session, input) form a
        // group keyed by its first member's index. A group resolves its
        // input once, at the first member's queue position — so a later
        // `park_as` that overwrites a handle the group reads must CLOSE
        // the group: rotations submitted after the write start a fresh
        // group and see the new value, preserving in-order semantics.
        struct RotGroup {
            session: u64,
            first: usize,
            members: Vec<usize>,
            open: bool,
        }
        let mut groups: Vec<RotGroup> = Vec::new();
        for (idx, it) in items.iter().enumerate() {
            if it.op == OpCode::Rotate {
                let found = groups.iter_mut().find(|g| {
                    g.open
                        && g.session == it.session
                        && items[g.first].operands[0].same_input(&it.operands[0])
                });
                match found {
                    Some(g) => g.members.push(idx),
                    None => groups.push(RotGroup {
                        session: it.session,
                        first: idx,
                        members: vec![idx],
                        open: true,
                    }),
                }
            }
            if let Some(written) = &it.park_as {
                for g in groups.iter_mut().filter(|g| g.session == it.session) {
                    if matches!(&items[g.first].operands[0], Operand::Parked(n) if n == written) {
                        g.open = false;
                    }
                }
            }
        }

        let mut results: Vec<Option<Result<Ciphertext, ServerError>>> =
            (0..items.len()).map(|_| None).collect();
        // The board-model op stream of this flush, in execution order
        // (one entry per executed op — a fused group is one entry).
        let mut modeled: Vec<(OpCode, BoardOp)> = Vec::new();
        let mut replies = Vec::with_capacity(items.len());
        for idx in 0..items.len() {
            // Execute (a fused group executes when its first member is
            // reached and pre-fills every member's slot).
            if results[idx].is_none() {
                let start = Instant::now();
                let group = items[idx].op == OpCode::Rotate;
                if group {
                    let members = groups
                        .iter()
                        .find(|g| g.first == idx)
                        .map(|g| g.members.clone())
                        .unwrap_or_else(|| vec![idx]);
                    self.exec_rotate_group(&items, &members, &mut results);
                    if self.board_model.is_some() {
                        modeled.push((OpCode::Rotate, Self::board_op_group(&items, &members)));
                    }
                    let stats = self.metrics.op_mut(OpCode::Rotate);
                    stats.requests += members.len() as u64;
                    stats.busy_us += start.elapsed().as_secs_f64() * 1e6;
                } else {
                    let outcome = self.exec_single(&items[idx]);
                    if self.board_model.is_some() {
                        modeled.push((items[idx].op, Self::board_op_single(&items[idx])));
                    }
                    let stats = self.metrics.op_mut(items[idx].op);
                    stats.requests += 1;
                    stats.busy_us += start.elapsed().as_secs_f64() * 1e6;
                    results[idx] = Some(outcome);
                }
            }
            // Park or serialize, then frame the reply. Parking happens
            // here — at the request's queue position — so a handle is
            // visible to every later request in the same flush.
            let it = &items[idx];
            let outcome = results[idx].take().expect("slot filled by executor");
            let frame = match self.finish_request(it, outcome) {
                Ok(frame) => {
                    self.note_out(it.session, &frame);
                    frame
                }
                Err(e) => {
                    self.metrics.op_mut(it.op).errors += 1;
                    if let Ok(sess) = self.sessions.get_mut(it.session) {
                        sess.stats.errors += 1;
                    }
                    self.error_frame(it.session, it.request, &e)
                }
            };
            replies.push(frame);
        }
        self.model_flush(&modeled);
        replies
    }

    /// The board-model descriptor of a fused rotation group. Parking is
    /// accounted per member: only the outputs that actually return over
    /// the wire are charged PCIe-out.
    fn board_op_group(items: &[Pending], members: &[usize]) -> BoardOp {
        let first = &items[members[0]];
        let parked = members
            .iter()
            .filter(|&&i| items[i].park_as.is_some())
            .count();
        let kind = if members.len() == 1 {
            BoardOpKind::Rotate
        } else {
            BoardOpKind::RotateMany {
                count: members.len(),
                parked_outputs: parked,
            }
        };
        let mut op = BoardOp::new(kind);
        if matches!(first.operands[0], Operand::Parked(_)) {
            op = op.with_parked_input();
        }
        if members.len() == 1 && parked == 1 {
            op = op.with_parked_output();
        }
        op
    }

    /// The board-model descriptor of one non-fused request.
    fn board_op_single(it: &Pending) -> BoardOp {
        let kind = match it.op {
            OpCode::Add => BoardOpKind::Add,
            OpCode::MultiplyRelin | OpCode::SquareRelin => BoardOpKind::Multiply,
            OpCode::Rescale => BoardOpKind::Rescale,
            OpCode::Rotate => BoardOpKind::Rotate,
            OpCode::Fetch => BoardOpKind::Fetch,
        };
        let mut op = BoardOp::new(kind);
        if !it.operands.is_empty() && it.operands.iter().all(|o| matches!(o, Operand::Parked(_))) {
            op = op.with_parked_input();
        }
        if it.park_as.is_some() {
            op = op.with_parked_output();
        }
        op
    }

    /// Replays one flush's executed op stream on the board model and
    /// accumulates its modeled cost.
    fn model_flush(&mut self, modeled: &[(OpCode, BoardOp)]) {
        let Some(model) = self.board_model.as_mut() else {
            return;
        };
        if modeled.is_empty() {
            return;
        }
        let ops: Vec<BoardOp> = modeled.iter().map(|&(_, op)| op).collect();
        let report = match model.config.schedule_stream(&ops) {
            Ok(r) => r,
            // Unreachable: the op descriptors above are well-formed by
            // construction; never let a model hiccup fail serving.
            Err(_) => return,
        };
        let s = &mut model.stats;
        s.flushes += 1;
        s.modeled_ops += report.ops.len() as u64;
        s.modeled_requests += report.requests();
        s.modeled_cycles += report.total_cycles;
        s.core_busy_cycles += report.core_busy();
        s.fifo_high_water = s.fifo_high_water.max(report.fifo_high_water);
        let stalls = report.stalls();
        s.input_wait_cycles += stalls.input_wait;
        s.output_wait_cycles += stalls.output_wait;
        s.fifo_backpressure_cycles += stalls.fifo_backpressure;
        s.last_bound = report.bound();
        for (&(code, _), timing) in modeled.iter().zip(&report.ops) {
            self.metrics.op_mut(code).modeled_cycles += timing.compute.1 - timing.compute.0;
        }
        model.last_report = Some(report);
    }

    /// Parks or serializes one successful result into a complete
    /// response frame (written in one pass — the result bytes are
    /// copied exactly once).
    fn finish_request(
        &mut self,
        it: &Pending,
        outcome: Result<Ciphertext, ServerError>,
    ) -> Result<Vec<u8>, ServerError> {
        let ct = outcome?;
        match &it.park_as {
            Some(name) => {
                // Session before store: a request can outlive its session
                // (closed between submit and flush), and parking for a
                // dead session would orphan the DRAM entry forever —
                // session ids are never reused, so nothing could release
                // it afterwards.
                self.sessions.get(it.session)?;
                self.system.store(&scoped(it.session, name), ct)?;
                let sess = self.sessions.get_mut(it.session)?;
                if !sess.parked.contains(name) {
                    sess.parked.push(name.clone());
                }
                Ok(wire::encode_response_frame(
                    it.session,
                    it.request,
                    &ReplyBody::Parked(name),
                ))
            }
            None => {
                serialize_ciphertext_into(&ct, &mut self.scratch_out);
                Ok(wire::encode_response_frame(
                    it.session,
                    it.request,
                    &ReplyBody::Ciphertext(&self.scratch_out),
                ))
            }
        }
    }

    /// Resolves an operand to a borrowed ciphertext.
    fn resolve<'s>(
        &'s self,
        session: u64,
        operand: &'s Operand,
    ) -> Result<&'s Ciphertext, ServerError> {
        match operand {
            Operand::Inline(ct) => Ok(ct),
            Operand::Parked(name) => self
                .system
                .load(&scoped(session, name))
                .ok_or_else(|| ServerError::UnknownHandle { name: name.clone() }),
        }
    }

    /// Executes one non-fused request.
    fn exec_single(&self, it: &Pending) -> Result<Ciphertext, ServerError> {
        let a = self.resolve(it.session, &it.operands[0])?;
        match it.op {
            OpCode::Add => {
                let b = self.resolve(it.session, &it.operands[1])?;
                Ok(self.eval.add(a, b)?)
            }
            OpCode::MultiplyRelin => {
                let b = self.resolve(it.session, &it.operands[1])?;
                let rlk = self.sessions.get(it.session)?.relin_key()?;
                Ok(self.eval.multiply_relin(a, b, rlk)?)
            }
            OpCode::SquareRelin => {
                let rlk = self.sessions.get(it.session)?.relin_key()?;
                Ok(self.eval.multiply_relin(a, a, rlk)?)
            }
            OpCode::Rescale => Ok(self.eval.rescale(a)?),
            OpCode::Rotate => {
                let gks = self.sessions.get(it.session)?.galois_keys(it.step)?;
                Ok(self.eval.rotate(a, it.step, gks)?)
            }
            OpCode::Fetch => Ok(a.clone()),
        }
    }

    /// Executes a fused rotation group: one hoisted decomposition, one
    /// accumulation pass per member with a key. Members lacking a key
    /// fail individually; the rest still share the hoisting.
    fn exec_rotate_group(
        &mut self,
        items: &[Pending],
        members: &[usize],
        results: &mut [Option<Result<Ciphertext, ServerError>>],
    ) {
        let fail_all = |results: &mut [Option<Result<Ciphertext, ServerError>>],
                        e: &ServerError| {
            for &i in members {
                results[i] = Some(Err(e.clone()));
            }
        };
        let first = &items[members[0]];
        let sess = match self.sessions.get(first.session) {
            Ok(s) => s,
            Err(e) => return fail_all(results, &e),
        };
        let gks = match sess.galois_keys(first.step) {
            Ok(g) => g,
            Err(e) => return fail_all(results, &e),
        };
        let input = match self.resolve(first.session, &first.operands[0]) {
            Ok(ct) => ct,
            Err(e) => return fail_all(results, &e),
        };
        // Partition members by key availability so one uncovered step
        // doesn't sink its siblings.
        let mut covered: Vec<usize> = Vec::with_capacity(members.len());
        let mut steps: Vec<i64> = Vec::with_capacity(members.len());
        for &i in members {
            let step = items[i].step;
            if gks.key(galois_elt_from_step(step, self.ctx.n())).is_ok() {
                covered.push(i);
                steps.push(step);
            } else {
                results[i] = Some(Err(ServerError::MissingGaloisKey { step }));
            }
        }
        match covered.len() {
            0 => {}
            // A lone rotation takes the plain path (bit-identical to the
            // unbatched server; hoisting would only add noise headroom).
            1 => {
                results[covered[0]] =
                    Some(self.eval.rotate(input, steps[0], gks).map_err(Into::into));
            }
            _ => match self.eval.rotate_many(input, &steps, gks) {
                Ok(outputs) => {
                    self.metrics.hoisted_groups += 1;
                    self.metrics.hoisted_rotations += covered.len() as u64;
                    for (&i, ct) in covered.iter().zip(outputs) {
                        results[i] = Some(Ok(ct));
                    }
                }
                Err(e) => {
                    let e = ServerError::from(e);
                    for &i in &covered {
                        results[i] = Some(Err(e.clone()));
                    }
                }
            },
        }
    }

    /// Builds (and accounts) an error frame.
    fn error_frame(&mut self, session: u64, request: u64, e: &ServerError) -> Vec<u8> {
        let payload = wire::encode_error(e.code(), &e.to_string());
        let frame = wire::encode_frame(MessageKind::Error, session, request, &payload);
        self.note_out(session, &frame);
        frame
    }

    /// Outbound frame accounting.
    fn note_out(&mut self, session: u64, frame: &[u8]) {
        self.metrics.frames_out += 1;
        self.metrics.bytes_out += frame.len() as u64;
        if let Ok(sess) = self.sessions.get_mut(session) {
            sess.stats.bytes_out += frame.len() as u64;
        }
    }

    /// A point-in-time snapshot of every server metric.
    pub fn stats(&self) -> ServerStats {
        let mut per_session: Vec<(u64, SessionStats)> =
            self.sessions.iter().map(|(id, s)| (id, s.stats)).collect();
        per_session.sort_unstable_by_key(|&(id, _)| id);
        ServerStats {
            sessions_open: self.sessions.len(),
            sessions_total: self.sessions.opened_total(),
            frames_in: self.metrics.frames_in,
            frames_out: self.metrics.frames_out,
            bytes_in: self.metrics.bytes_in,
            bytes_out: self.metrics.bytes_out,
            decode_errors: self.metrics.decode_errors,
            queue_depth: self.queue.len(),
            queue_high_water: self.metrics.queue_high_water,
            batches: self.metrics.batches,
            batched_requests: self.metrics.batched_requests,
            hoisted_groups: self.metrics.hoisted_groups,
            hoisted_rotations: self.metrics.hoisted_rotations,
            parked_entries: self.system.mapped_entries(),
            parked_bytes: self.system.dram_used_bytes(),
            per_op: self.metrics.per_op_snapshot(),
            per_session,
            modeled: self.board_model.as_ref().map(|m| m.stats),
        }
    }
}

/// Session-scoped park handle, so sessions can never read or clobber
/// each other's DRAM-resident results.
fn scoped(session: u64, name: &str) -> String {
    format!("s{session}/{name}")
}
