//! The framed wire protocol between clients and [`HeaxServer`].
//!
//! Object payloads (ciphertexts, keys) reuse the versioned
//! [`heax_ckks::serialize`] codecs; this module adds the *transport*
//! layer around them: a length-prefixed frame with a versioned header
//! that carries routing (session id), correlation (request id), and a
//! message kind, plus the encoding of request and reply bodies.
//!
//! ## Frame layout (little-endian)
//!
//! | field     | size | meaning                                    |
//! |-----------|------|--------------------------------------------|
//! | magic     | 4    | `"HEAW"`                                   |
//! | version   | 1    | `1` or `2`                                 |
//! | kind      | 1    | [`MessageKind`]                            |
//! | session   | 8    | session id (`0` before a session exists)   |
//! | request   | 8    | client-chosen request id, echoed in replies|
//! | length    | 4    | payload byte count                         |
//! | payload   | n    | kind-specific body                         |
//!
//! The normative byte-level specification of every header and body —
//! including the v1/v2 differences — lives in `PROTOCOL.md` at the
//! repository root; this module is its implementation.
//!
//! ## Versioning
//!
//! Two wire versions are live. [`WIRE_V1`] is the original protocol;
//! [`WIRE_V2`] adds a request **flags** byte (bit 0 = *compress
//! reply*: the server modulus-switches a wire-returned result down to
//! one RNS limb before serializing) and, at the object layer
//! underneath, seeded fresh ciphertexts
//! ([`heax_ckks::serialize::deserialize_operand`]). Version
//! negotiation is implicit and per-frame: the server accepts both
//! versions and **echoes the request frame's version** in every reply,
//! so a v1 client never sees a v2 byte. The [`client`] builders emit
//! the current version ([`WIRE_VERSION`] = v2).
//!
//! ## Totality
//!
//! Like the object codecs underneath, frame and body decoding is
//! **total on untrusted input**: every length field is bounded by the
//! bytes actually present before any allocation, and every failure is a
//! structured [`ServerError`] — never a panic. The server answers a
//! frame it cannot decode with an error frame instead of dropping the
//! connection state.
//!
//! [`HeaxServer`]: crate::server::HeaxServer

use crate::error::{ErrorCode, ServerError};

/// Frame magic: "HEAW" (HEAX wire) — distinct from the object-level
/// `"HEAX"` magic so a frame can never be confused with a bare object.
pub const FRAME_MAGIC: [u8; 4] = *b"HEAW";
/// Wire protocol version 1: the original frame and body layouts.
pub const WIRE_V1: u8 = 1;
/// Wire protocol version 2: request bodies carry a flags byte
/// (bit 0 = compress reply) and operands may be seeded ciphertexts.
pub const WIRE_V2: u8 = 2;
/// The current (preferred) wire protocol version, emitted by the
/// [`client`] builders. The server accepts every version in
/// `WIRE_V1..=WIRE_VERSION` and echoes the request's version back.
pub const WIRE_VERSION: u8 = WIRE_V2;
/// Request flags byte (v2 bodies only), bit 0: the client only needs
/// decrypt-level precision, so the server modulus-switches a
/// wire-returned result down to one RNS limb before serializing.
pub const REQUEST_FLAG_COMPRESS_REPLY: u8 = 0b0000_0001;
/// All request flag bits a v2 body may carry; unknown bits are
/// rejected as malformed rather than ignored.
pub const REQUEST_FLAGS_ALL: u8 = REQUEST_FLAG_COMPRESS_REPLY;
/// Frame header size in bytes (everything before the payload).
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8 + 4;

/// Message kinds. Values `< 16` flow client → server; values `>= 16`
/// flow server → client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// Client asks for a fresh session.
    OpenSession = 1,
    /// Payload: a serialized relinearization key for this session.
    RegisterRelinKey = 2,
    /// Payload: serialized Galois keys for this session.
    RegisterGaloisKeys = 3,
    /// Payload: a [`Request`] body; enqueued for the next batch.
    Request = 4,
    /// Client closes the session; parked operands are released.
    CloseSession = 5,
    /// Reply to `OpenSession`; the new id is in the session field.
    SessionOpened = 16,
    /// Reply to a key registration.
    KeyRegistered = 17,
    /// Successful reply to a request; payload is a [`ReplyBody`].
    Response = 18,
    /// Structured failure; payload is an [`ErrorCode`] plus message.
    Error = 19,
    /// Reply to `CloseSession`.
    SessionClosed = 20,
}

impl MessageKind {
    fn from_u8(v: u8) -> Option<MessageKind> {
        Some(match v {
            1 => MessageKind::OpenSession,
            2 => MessageKind::RegisterRelinKey,
            3 => MessageKind::RegisterGaloisKeys,
            4 => MessageKind::Request,
            5 => MessageKind::CloseSession,
            16 => MessageKind::SessionOpened,
            17 => MessageKind::KeyRegistered,
            18 => MessageKind::Response,
            19 => MessageKind::Error,
            20 => MessageKind::SessionClosed,
            _ => return None,
        })
    }
}

/// Operation selector inside a request body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Component-wise sum of two ciphertexts.
    Add = 1,
    /// Multiply then relinearize (needs a registered relin key).
    MultiplyRelin = 2,
    /// Square then relinearize (needs a registered relin key).
    SquareRelin = 3,
    /// Rescale by the last active prime.
    Rescale = 4,
    /// Slot rotation (needs a registered Galois key for the step).
    Rotate = 5,
    /// Return the operand unchanged (fetch a parked result).
    Fetch = 6,
}

impl OpCode {
    fn from_u8(v: u8) -> Option<OpCode> {
        Some(match v {
            1 => OpCode::Add,
            2 => OpCode::MultiplyRelin,
            3 => OpCode::SquareRelin,
            4 => OpCode::Rescale,
            5 => OpCode::Rotate,
            6 => OpCode::Fetch,
            _ => return None,
        })
    }

    /// Stable metric/table label for the op.
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Add => "add",
            OpCode::MultiplyRelin => "multiply_relin",
            OpCode::SquareRelin => "square_relin",
            OpCode::Rescale => "rescale",
            OpCode::Rotate => "rotate",
            OpCode::Fetch => "fetch",
        }
    }

    /// All op codes, for metric tables.
    pub const ALL: [OpCode; 6] = [
        OpCode::Add,
        OpCode::MultiplyRelin,
        OpCode::SquareRelin,
        OpCode::Rescale,
        OpCode::Rotate,
        OpCode::Fetch,
    ];
}

/// One operand of a request: either serialized ciphertext bytes carried
/// inline, or the name of a result parked in board DRAM by an earlier
/// request of the same session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOperand<'a> {
    /// `serialize_ciphertext` bytes.
    Inline(&'a [u8]),
    /// Handle of a parked result (session-scoped).
    Parked(&'a str),
}

/// A decoded request body.
#[derive(Clone, Debug, PartialEq)]
pub struct Request<'a> {
    /// The operation to perform.
    pub op: OpCode,
    /// Rotation step (only meaningful for [`OpCode::Rotate`]).
    pub step: i64,
    /// v2 only: ask the server to modulus-switch a wire-returned
    /// result down to one RNS limb before serializing (the reply still
    /// decrypts, at decrypt-only precision). Ignored for parked
    /// results; a v1 body cannot express it.
    pub compress_reply: bool,
    /// Park the result in board DRAM under this session-scoped name
    /// instead of returning ciphertext bytes.
    pub park_as: Option<&'a str>,
    /// Operands, in op order (1 or 2 depending on the op).
    pub operands: Vec<WireOperand<'a>>,
}

/// A decoded reply body (payload of a [`MessageKind::Response`] frame).
#[derive(Clone, Debug, PartialEq)]
pub enum ReplyBody<'a> {
    /// Serialized result ciphertext.
    Ciphertext(&'a [u8]),
    /// The result was parked under this name.
    Parked(&'a str),
}

/// A decoded frame borrowing the input buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame<'a> {
    /// Wire version this frame was encoded with ([`WIRE_V1`] or
    /// [`WIRE_V2`]); replies must echo it.
    pub version: u8,
    /// Message kind.
    pub kind: MessageKind,
    /// Session id (`0` when no session applies yet).
    pub session: u64,
    /// Request correlation id (echoed by replies).
    pub request: u64,
    /// Kind-specific body.
    pub payload: &'a [u8],
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes a frame into a caller-provided buffer (cleared first).
///
/// # Panics
///
/// If `version` is not a known wire version — emitting undecodable
/// frames is a caller bug, not an input condition.
pub fn encode_frame_into(
    version: u8,
    kind: MessageKind,
    session: u64,
    request: u64,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    // heax-lint: allow(L2) -- documented `# Panics` guard on an encode path; rejects caller bugs, not input
    assert!(
        (WIRE_V1..=WIRE_VERSION).contains(&version),
        "unknown wire version {version}"
    );
    out.clear();
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(version);
    out.push(kind as u8);
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&request.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a frame at the given wire version.
pub fn encode_frame(
    version: u8,
    kind: MessageKind,
    session: u64,
    request: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(version, kind, session, request, payload, &mut out);
    out
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_operand(out: &mut Vec<u8>, operand: &WireOperand<'_>) {
    match operand {
        WireOperand::Inline(bytes) => {
            out.push(0);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        WireOperand::Parked(name) => {
            out.push(1);
            put_str(out, name);
        }
    }
}

/// Encodes a request body (the payload of a [`MessageKind::Request`]
/// frame) at the given wire version. The v2 layout inserts a flags
/// byte after the step; v1 has no flags byte at all.
///
/// # Panics
///
/// If `req.compress_reply` is set at [`WIRE_V1`] — the v1 body cannot
/// carry the flag, and silently dropping it would corrupt intent.
pub fn encode_request(version: u8, req: &Request<'_>) -> Vec<u8> {
    // heax-lint: allow(L2) -- documented `# Panics` guard on an encode path; rejects caller bugs, not input
    assert!(
        version >= WIRE_V2 || !req.compress_reply,
        "compress_reply requires wire v2"
    );
    let mut out = Vec::new();
    out.push(req.op as u8);
    out.extend_from_slice(&req.step.to_le_bytes());
    if version >= WIRE_V2 {
        let flags = if req.compress_reply {
            REQUEST_FLAG_COMPRESS_REPLY
        } else {
            0
        };
        out.push(flags);
    }
    match req.park_as {
        Some(name) => {
            out.push(1);
            put_str(&mut out, name);
        }
        None => out.push(0),
    }
    out.push(req.operands.len() as u8);
    for operand in &req.operands {
        put_operand(&mut out, operand);
    }
    out
}

/// Encodes a reply body (the payload of a [`MessageKind::Response`]
/// frame).
pub fn encode_reply(body: &ReplyBody<'_>) -> Vec<u8> {
    let mut out = Vec::new();
    match body {
        ReplyBody::Ciphertext(bytes) => {
            out.push(0);
            out.extend_from_slice(bytes);
        }
        ReplyBody::Parked(name) => {
            out.push(1);
            out.extend_from_slice(name.as_bytes());
        }
    }
    out
}

/// Encodes a complete [`MessageKind::Response`] frame — header, reply
/// tag, and body written in one pass, so a megabyte ciphertext result
/// is copied exactly once on the serving hot path (no intermediate
/// payload buffer). `version` is echoed from the request frame.
///
/// # Panics
///
/// If `version` is not a known wire version — emitting undecodable
/// frames is a caller bug, not an input condition.
pub fn encode_response_frame(
    version: u8,
    session: u64,
    request: u64,
    body: &ReplyBody<'_>,
) -> Vec<u8> {
    // heax-lint: allow(L2) -- documented `# Panics` guard on an encode path; rejects caller bugs, not input
    assert!(
        (WIRE_V1..=WIRE_VERSION).contains(&version),
        "unknown wire version {version}"
    );
    let (tag, bytes): (u8, &[u8]) = match body {
        ReplyBody::Ciphertext(b) => (0, b),
        ReplyBody::Parked(name) => (1, name.as_bytes()),
    };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 1 + bytes.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(version);
    out.push(MessageKind::Response as u8);
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&request.to_le_bytes());
    out.extend_from_slice(&((1 + bytes.len()) as u32).to_le_bytes());
    out.push(tag);
    out.extend_from_slice(bytes);
    out
}

/// Encodes an error payload: code + UTF-8 message.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

// ---------------------------------------------------------------------
// Decoding (total on untrusted input)
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over untrusted bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServerError> {
        // `get(..n)` on the tail, never `pos + n > len`: the latter
        // overflows on hostile length fields.
        let s = self
            .buf
            .get(self.pos..)
            .and_then(|rest| rest.get(..n))
            .ok_or_else(|| ServerError::malformed("truncated"))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServerError> {
        match self.take(1)? {
            &[b] => Ok(b),
            _ => Err(ServerError::malformed("truncated")),
        }
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], ServerError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ServerError::malformed("truncated"))
    }

    fn u32(&mut self) -> Result<u32, ServerError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, ServerError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64, ServerError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// A `u32`-length-prefixed byte run; the length is bounded by the
    /// remaining buffer before any slicing.
    fn bytes(&mut self) -> Result<&'a [u8], ServerError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn str(&mut self) -> Result<&'a str, ServerError> {
        core::str::from_utf8(self.bytes()?).map_err(|_| ServerError::malformed("name is not UTF-8"))
    }

    fn finish(&self) -> Result<(), ServerError> {
        if self.pos != self.buf.len() {
            return Err(ServerError::malformed("trailing bytes"));
        }
        Ok(())
    }
}

/// Decodes one frame; the buffer must contain exactly one frame.
///
/// # Errors
///
/// [`ServerError::Malformed`] on any structural problem — never panics,
/// regardless of input.
pub fn decode_frame(buf: &[u8]) -> Result<Frame<'_>, ServerError> {
    let mut r = Reader::new(buf);
    if r.take(4)? != FRAME_MAGIC {
        return Err(ServerError::malformed("bad frame magic"));
    }
    let version = r.u8()?;
    if !(WIRE_V1..=WIRE_VERSION).contains(&version) {
        return Err(ServerError::malformed(format!(
            "unsupported wire version {version}"
        )));
    }
    let kind = MessageKind::from_u8(r.u8()?)
        .ok_or_else(|| ServerError::malformed("unknown message kind"))?;
    let session = r.u64()?;
    let request = r.u64()?;
    let len = r.u32()? as usize;
    let payload = r.take(len)?;
    r.finish()?;
    Ok(Frame {
        version,
        kind,
        session,
        request,
        payload,
    })
}

fn decode_operand<'a>(r: &mut Reader<'a>) -> Result<WireOperand<'a>, ServerError> {
    match r.u8()? {
        0 => Ok(WireOperand::Inline(r.bytes()?)),
        1 => Ok(WireOperand::Parked(r.str()?)),
        _ => Err(ServerError::malformed("unknown operand tag")),
    }
}

/// Decodes a request body laid out per the given wire version (the
/// enclosing frame's): v1 bodies have no flags byte, v2 bodies carry
/// one right after the step.
///
/// # Errors
///
/// [`ServerError::Malformed`] on any structural problem, including an
/// operand count that disagrees with the op's arity or a v2 flags
/// byte with unknown bits set.
pub fn decode_request(buf: &[u8], version: u8) -> Result<Request<'_>, ServerError> {
    let mut r = Reader::new(buf);
    let op = OpCode::from_u8(r.u8()?).ok_or_else(|| ServerError::malformed("unknown op code"))?;
    let step = r.i64()?;
    let compress_reply = if version >= WIRE_V2 {
        let flags = r.u8()?;
        if flags & !REQUEST_FLAGS_ALL != 0 {
            return Err(ServerError::malformed(format!(
                "unknown request flags {flags:#04x}"
            )));
        }
        flags & REQUEST_FLAG_COMPRESS_REPLY != 0
    } else {
        false
    };
    let park_as = match r.u8()? {
        0 => None,
        1 => {
            let name = r.str()?;
            if name.is_empty() || name.len() > 256 {
                return Err(ServerError::malformed("park name must be 1..=256 bytes"));
            }
            Some(name)
        }
        _ => return Err(ServerError::malformed("unknown park tag")),
    };
    let count = r.u8()? as usize;
    let arity = match op {
        OpCode::Add | OpCode::MultiplyRelin => 2,
        OpCode::SquareRelin | OpCode::Rescale | OpCode::Rotate | OpCode::Fetch => 1,
    };
    if count != arity {
        return Err(ServerError::malformed(format!(
            "op {} takes {arity} operand(s), got {count}",
            op.name()
        )));
    }
    let mut operands = Vec::with_capacity(count);
    for _ in 0..count {
        operands.push(decode_operand(&mut r)?);
    }
    r.finish()?;
    Ok(Request {
        op,
        step,
        compress_reply,
        park_as,
        operands,
    })
}

/// Decodes a reply body.
///
/// # Errors
///
/// [`ServerError::Malformed`] on an unknown tag or non-UTF-8 park name.
pub fn decode_reply(buf: &[u8]) -> Result<ReplyBody<'_>, ServerError> {
    let (&tag, body) = buf
        .split_first()
        .ok_or_else(|| ServerError::malformed("empty reply"))?;
    match tag {
        0 => Ok(ReplyBody::Ciphertext(body)),
        1 => core::str::from_utf8(body)
            .map(ReplyBody::Parked)
            .map_err(|_| ServerError::malformed("park name is not UTF-8")),
        _ => Err(ServerError::malformed("unknown reply tag")),
    }
}

/// Decodes an error payload into `(code, message)`. Total: short
/// payloads decode to an empty message, invalid UTF-8 is replaced.
pub fn decode_error(buf: &[u8]) -> (ErrorCode, String) {
    let code = match buf {
        &[a, b, ..] => u16::from_le_bytes([a, b]),
        _ => 0,
    };
    let message = String::from_utf8_lossy(buf.get(2..).unwrap_or_default()).into_owned();
    (ErrorCode::from_u16(code), message)
}

/// Client-side frame builders and reply parsing, so examples, benches,
/// and tests can speak the protocol without hand-rolling byte layouts.
///
/// All builders emit the current wire version ([`WIRE_VERSION`], i.e.
/// v2). A v1 peer can still be spoken to by calling [`encode_frame`] /
/// [`encode_request`] with [`WIRE_V1`] directly; the server keeps
/// accepting both.
pub mod client {
    use super::*;

    /// Builds an `OpenSession` frame.
    pub fn open_session() -> Vec<u8> {
        encode_frame(WIRE_VERSION, MessageKind::OpenSession, 0, 0, &[])
    }

    /// Builds a `RegisterRelinKey` frame around serialized key bytes.
    pub fn register_relin_key(session: u64, key_bytes: &[u8]) -> Vec<u8> {
        encode_frame(
            WIRE_VERSION,
            MessageKind::RegisterRelinKey,
            session,
            0,
            key_bytes,
        )
    }

    /// Builds a `RegisterGaloisKeys` frame around serialized key bytes.
    pub fn register_galois_keys(session: u64, key_bytes: &[u8]) -> Vec<u8> {
        encode_frame(
            WIRE_VERSION,
            MessageKind::RegisterGaloisKeys,
            session,
            0,
            key_bytes,
        )
    }

    /// Builds a `CloseSession` frame.
    pub fn close_session(session: u64) -> Vec<u8> {
        encode_frame(WIRE_VERSION, MessageKind::CloseSession, session, 0, &[])
    }

    /// Builds a request frame from a structured [`Request`] at the
    /// current wire version.
    pub fn request(session: u64, request_id: u64, req: &Request<'_>) -> Vec<u8> {
        encode_frame(
            WIRE_VERSION,
            MessageKind::Request,
            session,
            request_id,
            &encode_request(WIRE_VERSION, req),
        )
    }

    /// Shorthand: a rotation request on inline ciphertext bytes.
    pub fn rotate(session: u64, request_id: u64, ct_bytes: &[u8], step: i64) -> Vec<u8> {
        request(
            session,
            request_id,
            &Request {
                op: OpCode::Rotate,
                step,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Inline(ct_bytes)],
            },
        )
    }

    /// A parsed server reply.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Reply {
        /// Session granted; the id is the frame's session field.
        SessionOpened,
        /// Key registration acknowledged.
        KeyRegistered,
        /// Result ciphertext bytes.
        Ciphertext(Vec<u8>),
        /// Result parked under this name.
        Parked(String),
        /// Structured failure.
        Error {
            /// Wire error code.
            code: ErrorCode,
            /// Human-readable message.
            message: String,
        },
        /// Session closed.
        SessionClosed,
    }

    /// Parses one server→client frame into `(session, request, reply)`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Malformed`] if the frame is not a well-formed
    /// server→client message.
    pub fn parse_reply(bytes: &[u8]) -> Result<(u64, u64, Reply), ServerError> {
        let frame = decode_frame(bytes)?;
        let reply = match frame.kind {
            MessageKind::SessionOpened => Reply::SessionOpened,
            MessageKind::KeyRegistered => Reply::KeyRegistered,
            MessageKind::Response => match decode_reply(frame.payload)? {
                ReplyBody::Ciphertext(b) => Reply::Ciphertext(b.to_vec()),
                ReplyBody::Parked(n) => Reply::Parked(n.to_string()),
            },
            MessageKind::Error => {
                let (code, message) = decode_error(frame.payload);
                Reply::Error { code, message }
            }
            MessageKind::SessionClosed => Reply::SessionClosed,
            other => {
                return Err(ServerError::malformed(format!(
                    "not a server reply: {other:?}"
                )))
            }
        };
        Ok((frame.session, frame.request, reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        for version in [WIRE_V1, WIRE_V2] {
            let bytes = encode_frame(version, MessageKind::Request, 7, 42, b"payload");
            let frame = decode_frame(&bytes).unwrap();
            assert_eq!(frame.version, version);
            assert_eq!(frame.kind, MessageKind::Request);
            assert_eq!(frame.session, 7);
            assert_eq!(frame.request, 42);
            assert_eq!(frame.payload, b"payload");
            assert_eq!(bytes.len(), FRAME_HEADER_LEN + 7);
        }
    }

    #[test]
    fn request_roundtrip_all_shapes() {
        let reqs = [
            Request {
                op: OpCode::Add,
                step: 0,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Inline(b"aaaa"), WireOperand::Parked("x2")],
            },
            Request {
                op: OpCode::Rotate,
                step: -3,
                compress_reply: true,
                park_as: Some("out"),
                operands: vec![WireOperand::Parked("x2")],
            },
            Request {
                op: OpCode::Fetch,
                step: 0,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Parked("out")],
            },
        ];
        for req in &reqs {
            let bytes = encode_request(WIRE_V2, req);
            assert_eq!(&decode_request(&bytes, WIRE_V2).unwrap(), req);
        }
    }

    #[test]
    fn v1_request_bodies_still_decode() {
        // A v1 body has no flags byte; it must decode byte-for-byte as
        // before, with `compress_reply` defaulting to off.
        let req = Request {
            op: OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: Some("sum"),
            operands: vec![WireOperand::Inline(b"aa"), WireOperand::Inline(b"bb")],
        };
        let v1 = encode_request(WIRE_V1, &req);
        let v2 = encode_request(WIRE_V2, &req);
        assert_eq!(v2.len(), v1.len() + 1, "v2 adds exactly one flags byte");
        assert_eq!(decode_request(&v1, WIRE_V1).unwrap(), req);
        // Cross-version confusion is caught: a v1 body parsed as v2
        // (or vice versa) fails structurally rather than silently
        // misreading the park tag as flags.
        assert!(
            decode_request(&v1, WIRE_V2).is_err() || decode_request(&v1, WIRE_V2).unwrap() != req
        );
    }

    #[test]
    fn v2_unknown_flag_bits_rejected() {
        let req = Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: true,
            park_as: None,
            operands: vec![WireOperand::Parked("x")],
        };
        let mut bytes = encode_request(WIRE_V2, &req);
        assert_eq!(decode_request(&bytes, WIRE_V2).unwrap(), req);
        let flags_off = 1 + 8; // op + step
        assert_eq!(bytes[flags_off], REQUEST_FLAG_COMPRESS_REPLY);
        bytes[flags_off] |= 0b1000_0000;
        let err = decode_request(&bytes, WIRE_V2).unwrap_err();
        assert!(err.to_string().contains("unknown request flags"), "{err}");
    }

    #[test]
    #[should_panic(expected = "compress_reply requires wire v2")]
    fn v1_cannot_express_compression() {
        let _ = encode_request(
            WIRE_V1,
            &Request {
                op: OpCode::Fetch,
                step: 0,
                compress_reply: true,
                park_as: None,
                operands: vec![WireOperand::Parked("x")],
            },
        );
    }

    #[test]
    fn response_frame_fast_path_matches_two_step_encoding() {
        for version in [WIRE_V1, WIRE_V2] {
            for body in [
                ReplyBody::Ciphertext(b"some ciphertext bytes".as_slice()),
                ReplyBody::Parked("handle"),
            ] {
                let fast = encode_response_frame(version, 9, 77, &body);
                let slow =
                    encode_frame(version, MessageKind::Response, 9, 77, &encode_reply(&body));
                assert_eq!(fast, slow);
                let frame = decode_frame(&fast).unwrap();
                assert_eq!(frame.version, version);
                assert_eq!(decode_reply(frame.payload).unwrap(), body);
            }
        }
    }

    #[test]
    fn reply_and_error_roundtrip() {
        let bytes = encode_reply(&ReplyBody::Ciphertext(b"ct"));
        assert_eq!(
            decode_reply(&bytes).unwrap(),
            ReplyBody::Ciphertext(b"ct".as_slice())
        );
        let bytes = encode_reply(&ReplyBody::Parked("name"));
        assert_eq!(decode_reply(&bytes).unwrap(), ReplyBody::Parked("name"));
        let bytes = encode_error(ErrorCode::MissingKey, "no key for step 9");
        let (code, message) = decode_error(&bytes);
        assert_eq!(code, ErrorCode::MissingKey);
        assert_eq!(message, "no key for step 9");
        // decode_error is total even on an empty payload.
        assert_eq!(decode_error(&[]).0, ErrorCode::Unsupported);
    }

    #[test]
    fn every_error_code_roundtrips_through_both_wire_versions() {
        use super::client;
        // Exhaustive: each of the nine codes (including the fault-path
        // LoadShed and Degraded) survives encode → frame → parse at v1
        // and v2, through both the raw decoder and the client parser.
        for version in [WIRE_V1, WIRE_V2] {
            for &code in &ErrorCode::ALL {
                let frame = encode_frame(
                    version,
                    MessageKind::Error,
                    5,
                    9,
                    &encode_error(code, "why"),
                );
                let decoded = decode_frame(&frame).unwrap();
                assert_eq!(decoded.version, version);
                assert_eq!(decode_error(decoded.payload), (code, "why".to_string()));
                let (session, request, reply) = client::parse_reply(&frame).unwrap();
                assert_eq!((session, request), (5, 9));
                assert_eq!(
                    reply,
                    client::Reply::Error {
                        code,
                        message: "why".into()
                    }
                );
            }
        }
    }

    #[test]
    fn unknown_and_hostile_error_payloads_decode_without_panic() {
        use super::client;
        // A peer speaking a future protocol revision may send codes we
        // do not know; they must decode (to Unsupported), never panic.
        for raw in [0u16, 10, 999, u16::MAX] {
            let mut payload = raw.to_le_bytes().to_vec();
            payload.extend_from_slice(b"m");
            for version in [WIRE_V1, WIRE_V2] {
                let frame = encode_frame(version, MessageKind::Error, 1, 1, &payload);
                let (_, _, reply) = client::parse_reply(&frame).unwrap();
                assert_eq!(
                    reply,
                    client::Reply::Error {
                        code: ErrorCode::Unsupported,
                        message: "m".into()
                    }
                );
            }
        }
        // One stray byte: too short for a code, still total.
        assert_eq!(
            decode_error(&[0x07]),
            (ErrorCode::Unsupported, String::new())
        );
        // Non-UTF-8 message bytes are replaced, not rejected.
        let mut payload = (ErrorCode::Crypto as u16).to_le_bytes().to_vec();
        payload.extend_from_slice(&[0xFF, 0xFE, b'!']);
        let (code, message) = decode_error(&payload);
        assert_eq!(code, ErrorCode::Crypto);
        assert!(message.ends_with('!'));
    }

    #[test]
    fn hostile_frames_rejected_not_panicking() {
        let good = encode_frame(WIRE_V2, MessageKind::Request, 1, 1, b"abc");
        // Truncations at every length.
        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Oversized length field.
        let mut bad = good.clone();
        bad[FRAME_HEADER_LEN - 4..FRAME_HEADER_LEN].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&bad).is_err());
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
        // Unknown kind / bad version / bad magic.
        let mut bad = good.clone();
        bad[5] = 99;
        assert!(decode_frame(&bad).is_err());
        let mut bad = good.clone();
        bad[4] = 77;
        assert!(decode_frame(&bad).is_err());
        let mut bad = good;
        bad[0] ^= 0xff;
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn request_arity_and_tags_checked() {
        // Add with one operand.
        let bytes = encode_request(
            WIRE_V2,
            &Request {
                op: OpCode::Add,
                step: 0,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Inline(b"a"), WireOperand::Inline(b"b")],
            },
        );
        // Truncate away the second operand *and* patch the count.
        let mut short = decode_request(&bytes, WIRE_V2)
            .map(|_| bytes.clone())
            .unwrap();
        let count_off = 1 + 8 + 1 + 1; // op + step + flags + park flag
        short[count_off] = 1;
        assert!(decode_request(&short, WIRE_V2).is_err());
        // Unknown op.
        let mut bad = short.clone();
        bad[0] = 200;
        assert!(decode_request(&bad, WIRE_V2).is_err());
        // Park name must be valid UTF-8 and bounded.
        let req = Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: Some("ok"),
            operands: vec![WireOperand::Parked("x")],
        };
        let bytes = encode_request(WIRE_V2, &req);
        assert_eq!(decode_request(&bytes, WIRE_V2).unwrap(), req);
    }

    #[test]
    fn client_reply_parsing() {
        use super::client;
        let frame = encode_frame(
            WIRE_V1,
            MessageKind::Error,
            3,
            9,
            &encode_error(ErrorCode::Crypto, "scale"),
        );
        let (session, request, reply) = client::parse_reply(&frame).unwrap();
        assert_eq!((session, request), (3, 9));
        assert!(matches!(
            reply,
            client::Reply::Error {
                code: ErrorCode::Crypto,
                ..
            }
        ));
        // A client→server frame is not a reply.
        assert!(client::parse_reply(&client::open_session()).is_err());
    }
}
