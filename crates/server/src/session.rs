//! Session registry: per-client key material cached server-side.
//!
//! Deserializing an evaluation key is expensive — beyond parsing, the
//! Shoup (`MulRedConstant`) multiplication tables are rebuilt from the
//! residues ([`heax_ckks::serialize::deserialize_ksk`]). The registry
//! makes that a **once-per-session** cost: clients upload keys when they
//! connect, and every later request hits the cached, Shoup-ready keys.
//! The seed deployment example paid that cost per request batch; the
//! `bench_server` snapshot quantifies the difference.

use std::collections::HashMap;

use heax_ckks::{GaloisKeys, RelinKey};

use crate::error::ServerError;
use crate::metrics::SessionStats;

/// Per-session server state: cached keys, parked-handle ownership, and
/// traffic counters.
#[derive(Debug, Default)]
pub struct Session {
    /// Cached relinearization key (Shoup tables rebuilt at registration).
    pub(crate) rlk: Option<RelinKey>,
    /// Cached Galois keys (permutation tables rebuilt at registration).
    pub(crate) gks: Option<GaloisKeys>,
    /// Unscoped names of results this session parked in board DRAM.
    pub(crate) parked: Vec<String>,
    /// Whether this session's cached keys were evicted under DRAM
    /// pressure (see `HeaxServer::evict_session_keys`): the next key
    /// registration is billed as a re-registration, not a first upload.
    pub(crate) keys_evicted: bool,
    /// Per-session traffic counters.
    pub(crate) stats: SessionStats,
}

impl Session {
    /// The session's Galois keys.
    ///
    /// # Errors
    ///
    /// [`ServerError::MissingGaloisKey`] (with the offending step) when
    /// none were registered.
    pub(crate) fn galois_keys(&self, step: i64) -> Result<&GaloisKeys, ServerError> {
        self.gks
            .as_ref()
            .ok_or(ServerError::MissingGaloisKey { step })
    }

    /// The session's relinearization key.
    ///
    /// # Errors
    ///
    /// [`ServerError::MissingRelinKey`] when none was registered.
    pub(crate) fn relin_key(&self) -> Result<&RelinKey, ServerError> {
        self.rlk.as_ref().ok_or(ServerError::MissingRelinKey)
    }
}

/// The registry of live sessions.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next_id: u64,
    sessions: HashMap<u64, Session>,
    opened_total: u64,
}

impl SessionRegistry {
    /// Opens a fresh session and returns its id (ids start at 1; `0` is
    /// the wire's "no session" sentinel).
    pub fn open(&mut self) -> u64 {
        self.next_id += 1;
        self.opened_total += 1;
        self.sessions.insert(self.next_id, Session::default());
        self.next_id
    }

    /// Looks up a session.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`] for ids never opened or already
    /// closed.
    pub(crate) fn get(&self, id: u64) -> Result<&Session, ServerError> {
        self.sessions
            .get(&id)
            .ok_or(ServerError::UnknownSession { session: id })
    }

    /// Mutable session lookup.
    ///
    /// # Errors
    ///
    /// Same as [`SessionRegistry::get`].
    pub(crate) fn get_mut(&mut self, id: u64) -> Result<&mut Session, ServerError> {
        self.sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession { session: id })
    }

    /// Closes a session, returning its final state (for parked-handle
    /// cleanup).
    pub(crate) fn close(&mut self, id: u64) -> Result<Session, ServerError> {
        self.sessions
            .remove(&id)
            .ok_or(ServerError::UnknownSession { session: id })
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions ever opened (monotonic).
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Iterates live sessions as `(id, session)`.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &Session)> {
        self.sessions.iter().map(|(&id, s)| (id, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_lifecycle() {
        let mut reg = SessionRegistry::default();
        assert!(reg.is_empty());
        let a = reg.open();
        let b = reg.open();
        assert_ne!(a, 0, "0 is the no-session sentinel");
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert!(reg.get(a).is_ok());
        assert!(matches!(
            reg.get(999),
            Err(ServerError::UnknownSession { session: 999 })
        ));
        reg.close(a).unwrap();
        assert!(reg.get(a).is_err());
        assert!(reg.close(a).is_err());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.opened_total(), 2);
    }

    #[test]
    fn missing_keys_are_structured_errors() {
        let s = Session::default();
        assert!(matches!(
            s.galois_keys(4),
            Err(ServerError::MissingGaloisKey { step: 4 })
        ));
        assert!(matches!(s.relin_key(), Err(ServerError::MissingRelinKey)));
    }
}
