//! Server observability: per-op and per-session counters, queue and
//! batching gauges, exposed as a cloneable [`ServerStats`] snapshot.
//!
//! Counters are plain fields updated inline on the serving path (the
//! server is driven single-threaded per instance; parallelism lives
//! *below* it, in the executor's limb lanes), so a snapshot is just a
//! clone — no atomics, no sampling error within one snapshot.

use crate::wire::OpCode;

/// Counters for one operation kind.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    /// Requests executed (including failed ones).
    pub requests: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Wall-clock µs spent executing this op (shared batch work is
    /// attributed to the op that triggered it).
    pub busy_us: f64,
    /// Modeled board compute cycles this op occupied a HEAX core for
    /// (0 unless the board model is enabled; hoisted-group cost is
    /// attributed to the rotation op).
    pub modeled_cycles: u64,
}

impl OpStats {
    /// Throughput over the server's lifetime so far.
    pub fn ops_per_sec(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            self.requests as f64 / (self.busy_us / 1e6)
        }
    }
}

/// Per-session traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// Requests this session submitted.
    pub requests: u64,
    /// Error frames this session received.
    pub errors: u64,
    /// Frame bytes received from this session.
    pub bytes_in: u64,
    /// Frame bytes sent to this session.
    pub bytes_out: u64,
    /// Modeled board compute cycles this session's requests occupied,
    /// accumulated across **every** flush (0 without a board or
    /// cluster model) — the attribution figure for long-running
    /// sessions; a hoisted group's cost is billed to the group's
    /// owning session.
    pub modeled_cycles: u64,
}

/// Aggregated board-model figures for a server with the modeled
/// backend enabled (see `HeaxServer::with_board_model`): every flush's
/// op stream is scheduled on the board-level pipeline of
/// [`heax_hw::scheduler`], and its cycle/occupancy outcome accumulates
/// here.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModeledBoardStats {
    /// HEAX cores the model schedules across.
    pub cores: usize,
    /// Board clock in MHz (for converting cycles to time).
    pub freq_mhz: f64,
    /// Flushes that were modeled.
    pub flushes: u64,
    /// Board-level ops scheduled (a hoisted group is one op).
    pub modeled_ops: u64,
    /// Client requests those ops answered.
    pub modeled_requests: u64,
    /// Sum of per-flush makespans, in cycles.
    pub modeled_cycles: u64,
    /// Core compute busy cycles across all flushes.
    pub core_busy_cycles: u64,
    /// Deepest any core's input FIFO got, across all flushes.
    pub fifo_high_water: u64,
    /// Core idle cycles spent waiting on input transfers.
    pub input_wait_cycles: u64,
    /// Result cycles spent waiting on the board→host channel.
    pub output_wait_cycles: u64,
    /// Input-DMA cycles spent waiting on FIFO backpressure.
    pub fifo_backpressure_cycles: u64,
    /// What bound the most recent modeled flush
    /// (`"compute"` / `"pcie-in"` / `"pcie-out"`; empty before any).
    pub last_bound: &'static str,
}

impl ModeledBoardStats {
    /// Modeled wall time across all flushes, microseconds (0.0 for an
    /// unconfigured default snapshot rather than NaN).
    pub fn modeled_us(&self) -> f64 {
        if self.freq_mhz <= 0.0 {
            0.0
        } else {
            self.modeled_cycles as f64 / self.freq_mhz
        }
    }

    /// Modeled sustained request throughput across all flushes.
    pub fn modeled_requests_per_sec(&self) -> f64 {
        let us = self.modeled_us();
        if us <= 0.0 {
            0.0
        } else {
            self.modeled_requests as f64 / (us / 1e6)
        }
    }

    /// Fraction of core-cycles spent computing across all flushes.
    pub fn core_utilization(&self) -> f64 {
        let capacity = (self.cores as u64).saturating_mul(self.modeled_cycles);
        if capacity == 0 {
            0.0
        } else {
            self.core_busy_cycles as f64 / capacity as f64
        }
    }
}

/// Aggregated cluster-model figures for a server with the multi-board
/// model enabled (see `HeaxServer::with_cluster_model`): every flush's
/// fused IR stream is routed across the modeled board cluster of
/// [`heax_hw::cluster`], and the routing/throughput outcome accumulates
/// here.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModeledClusterStats {
    /// Boards the cluster model routes across.
    pub boards: usize,
    /// HEAX cores per modeled board.
    pub cores_per_board: usize,
    /// Board clock in MHz (for converting cycles to time).
    pub freq_mhz: f64,
    /// Flushes that were modeled.
    pub flushes: u64,
    /// Cluster-level ops routed (a hoisted group is one op).
    pub modeled_ops: u64,
    /// Client requests those ops answered.
    pub modeled_requests: u64,
    /// Sum of per-flush cluster makespans, in cycles.
    pub modeled_cycles: u64,
    /// Key-consuming ops routed to a board already holding their ksk.
    pub routing_hits: u64,
    /// Key-consuming ops that had to replicate their ksk first.
    pub routing_misses: u64,
    /// Warm-session ops stolen to a less-loaded board.
    pub steals: u64,
    /// Total key bytes replicated across the host link.
    pub replication_bytes: u64,
    /// Dependency edges dropped across board boundaries.
    pub cross_board_deps: u64,
    /// Boards still alive after the most recent modeled flush (equals
    /// `boards` unless a fault plan crashed some).
    pub boards_alive: usize,
    /// Sessions that lost their resident ksk to a board crash and
    /// recovered on a healthy board.
    pub failovers: u64,
    /// Key re-replications forced by faults (failovers plus corruption
    /// re-uploads).
    pub re_replications: u64,
    /// Resident ksk copies evicted after a checksum mismatch.
    pub corrupt_ksk_evictions: u64,
    /// Parked operands re-materialized from the host after a crash.
    pub parked_rematerializations: u64,
    /// Modeled cycles spent re-replicating key material after faults.
    pub recovery_cycles: u64,
}

impl ModeledClusterStats {
    /// Modeled wall time across all flushes, microseconds (0.0 for an
    /// unconfigured default snapshot rather than NaN).
    pub fn modeled_us(&self) -> f64 {
        if self.freq_mhz <= 0.0 {
            0.0
        } else {
            self.modeled_cycles as f64 / self.freq_mhz
        }
    }

    /// Modeled sustained request throughput across all flushes.
    pub fn modeled_requests_per_sec(&self) -> f64 {
        let us = self.modeled_us();
        if us <= 0.0 {
            0.0
        } else {
            self.modeled_requests as f64 / (us / 1e6)
        }
    }

    /// Fraction of key-consuming ops that hit resident keys.
    pub fn hit_rate(&self) -> f64 {
        let total = self.routing_hits.saturating_add(self.routing_misses);
        if total == 0 {
            0.0
        } else {
            self.routing_hits as f64 / total as f64
        }
    }

    /// Modeled fault-recovery time across all flushes, microseconds.
    pub fn recovery_us(&self) -> f64 {
        if self.freq_mhz <= 0.0 {
            0.0
        } else {
            self.recovery_cycles as f64 / self.freq_mhz
        }
    }
}

/// A point-in-time snapshot of every server gauge and counter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Live sessions.
    pub sessions_open: usize,
    /// Sessions ever opened.
    pub sessions_total: u64,
    /// Frames received (all kinds).
    pub frames_in: u64,
    /// Frames sent (all kinds).
    pub frames_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// Frames that failed to decode at the frame or body layer.
    pub decode_errors: u64,
    /// Requests currently queued (waiting for the next flush).
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub queue_high_water: usize,
    /// Flushes that executed at least one request.
    pub batches: u64,
    /// Requests executed through batched flushes.
    pub batched_requests: u64,
    /// Rotation groups executed through one hoisted decomposition.
    pub hoisted_groups: u64,
    /// Rotations served by those hoisted groups.
    pub hoisted_rotations: u64,
    /// Inline operands that arrived as seeded ciphertexts (v2 upload
    /// compression: a 32-byte PRNG seed replaces the uniform
    /// polynomial and is re-expanded server-side).
    pub seeded_operands: u64,
    /// Wire-returned results modulus-switched down to one RNS limb
    /// because the request set the v2 compress-reply flag.
    pub compressed_replies: u64,
    /// Requests answered with a load-shed error because their deadline
    /// budget ran out before they could be served.
    pub shed_requests: u64,
    /// Requests answered with a degraded error after the bounded retry
    /// policy was exhausted.
    pub degraded_replies: u64,
    /// Execution retries attempted under the flush retry policy.
    pub retries: u64,
    /// Sessions whose cached (Shoup-ready) keys were evicted from the
    /// modeled DRAM key cache under budget pressure (see
    /// `HeaxServer::evict_session_keys` and `heax_server::net`'s LRU).
    pub key_evictions: u64,
    /// Key registrations that re-uploaded a previously evicted
    /// session's keys (the evict + re-register-on-miss cycle of the
    /// transport-layer key cache).
    pub key_reregistrations: u64,
    /// Results currently parked in board DRAM.
    pub parked_entries: usize,
    /// Modeled DRAM bytes used by parked results.
    pub parked_bytes: u64,
    /// Per-op counters, in [`OpCode::ALL`] order as `(name, stats)`.
    pub per_op: Vec<(&'static str, OpStats)>,
    /// Per-session counters as `(session_id, stats)`, sorted by id.
    pub per_session: Vec<(u64, SessionStats)>,
    /// Board-model aggregates (`None` unless the server was built with
    /// `with_board_model`).
    pub modeled: Option<ModeledBoardStats>,
    /// Cluster-model aggregates (`None` unless the server was built
    /// with `with_cluster_model`).
    pub cluster: Option<ModeledClusterStats>,
}

impl ServerStats {
    /// Mean requests per non-empty flush — the batch-occupancy figure
    /// the scheduler's amortization depends on.
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Looks up one op's counters by code.
    pub fn op(&self, op: OpCode) -> OpStats {
        self.per_op
            .iter()
            .find(|(name, _)| *name == op.name())
            .map(|&(_, s)| s)
            .unwrap_or_default()
    }
}

/// Internal mutable counters behind [`ServerStats`].
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub(crate) frames_in: u64,
    pub(crate) frames_out: u64,
    pub(crate) bytes_in: u64,
    pub(crate) bytes_out: u64,
    pub(crate) decode_errors: u64,
    pub(crate) queue_high_water: usize,
    pub(crate) batches: u64,
    pub(crate) batched_requests: u64,
    pub(crate) hoisted_groups: u64,
    pub(crate) hoisted_rotations: u64,
    pub(crate) seeded_operands: u64,
    pub(crate) compressed_replies: u64,
    pub(crate) shed_requests: u64,
    pub(crate) degraded_replies: u64,
    pub(crate) retries: u64,
    pub(crate) key_evictions: u64,
    pub(crate) key_reregistrations: u64,
    pub(crate) per_op: [OpStats; OpCode::ALL.len()],
}

impl Metrics {
    pub(crate) fn op_mut(&mut self, op: OpCode) -> &mut OpStats {
        // `OpCode::ALL` is ordered by discriminant starting at 1.
        &mut self.per_op[op as usize - 1]
    }

    pub(crate) fn per_op_snapshot(&self) -> Vec<(&'static str, OpStats)> {
        OpCode::ALL
            .iter()
            .map(|&op| (op.name(), self.per_op[op as usize - 1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_board_stats_helpers() {
        let m = ModeledBoardStats {
            cores: 4,
            freq_mhz: 300.0,
            flushes: 2,
            modeled_ops: 8,
            modeled_requests: 64,
            modeled_cycles: 300_000,
            core_busy_cycles: 600_000,
            ..Default::default()
        };
        assert!((m.modeled_us() - 1000.0).abs() < 1e-9);
        assert!((m.modeled_requests_per_sec() - 64_000.0).abs() < 1e-6);
        assert!((m.core_utilization() - 0.5).abs() < 1e-12);
        let zero = ModeledBoardStats::default();
        assert_eq!(zero.modeled_requests_per_sec(), 0.0);
        assert_eq!(zero.core_utilization(), 0.0);
    }

    #[test]
    fn modeled_cluster_stats_helpers() {
        let c = ModeledClusterStats {
            boards: 4,
            cores_per_board: 2,
            freq_mhz: 300.0,
            modeled_requests: 600,
            modeled_cycles: 300_000,
            routing_hits: 9,
            routing_misses: 1,
            ..Default::default()
        };
        assert!((c.modeled_us() - 1000.0).abs() < 1e-9);
        assert!((c.modeled_requests_per_sec() - 600_000.0).abs() < 1e-6);
        assert!((c.hit_rate() - 0.9).abs() < 1e-12);
        let zero = ModeledClusterStats::default();
        assert_eq!(zero.modeled_requests_per_sec(), 0.0);
        assert_eq!(zero.hit_rate(), 0.0);
    }

    #[test]
    fn empty_snapshots_never_divide_by_zero() {
        // The satellite audit: every ratio accessor on a default
        // (never-served) snapshot answers a finite 0.0, not NaN/inf.
        let board = ModeledBoardStats::default();
        assert_eq!(board.modeled_us(), 0.0);
        assert_eq!(board.modeled_requests_per_sec(), 0.0);
        assert_eq!(board.core_utilization(), 0.0);
        let cluster = ModeledClusterStats::default();
        assert_eq!(cluster.modeled_us(), 0.0);
        assert_eq!(cluster.recovery_us(), 0.0);
        assert_eq!(cluster.hit_rate(), 0.0);
        // Cycles without a clock (freq 0) still answer finitely.
        let odd = ModeledClusterStats {
            modeled_cycles: 100,
            recovery_cycles: 50,
            ..Default::default()
        };
        assert_eq!(odd.modeled_us(), 0.0);
        assert_eq!(odd.modeled_requests_per_sec(), 0.0);
        assert_eq!(odd.recovery_us(), 0.0);
        let busy_no_cores = ModeledBoardStats {
            modeled_cycles: 100,
            core_busy_cycles: 10,
            ..Default::default()
        };
        assert_eq!(busy_no_cores.core_utilization(), 0.0);
        // Saturated hit counters must not wrap the ratio's denominator.
        let saturated = ModeledClusterStats {
            routing_hits: u64::MAX,
            routing_misses: 1,
            ..Default::default()
        };
        assert!((0.0..=1.0).contains(&saturated.hit_rate()));
        assert_eq!(ServerStats::default().batch_occupancy(), 0.0);
    }

    #[test]
    fn occupancy_and_lookup() {
        let mut m = Metrics::default();
        m.op_mut(OpCode::Rotate).requests = 10;
        m.op_mut(OpCode::Rotate).busy_us = 2e6;
        let stats = ServerStats {
            batches: 4,
            batched_requests: 14,
            per_op: m.per_op_snapshot(),
            ..ServerStats::default()
        };
        assert_eq!(stats.batch_occupancy(), 3.5);
        assert_eq!(stats.op(OpCode::Rotate).requests, 10);
        assert_eq!(stats.op(OpCode::Rotate).ops_per_sec(), 5.0);
        assert_eq!(stats.op(OpCode::Add), OpStats::default());
        assert_eq!(ServerStats::default().batch_occupancy(), 0.0);
        assert_eq!(OpStats::default().ops_per_sec(), 0.0);
    }
}
