//! Error type for the serving layer, and its mapping onto wire error
//! codes.
//!
//! Every failure a client can trigger — malformed frames, unknown
//! sessions, missing keys, crypto-level mismatches, modeled-DRAM
//! exhaustion — maps to a structured [`ErrorCode`] that travels back
//! over the wire in an error frame. A misbehaving client can never take
//! its session (let alone the server) down; it just receives errors.

use core::fmt;

use heax_ckks::CkksError;
use heax_core::CoreError;

/// Numeric error codes carried by wire error frames.
///
/// Codes are part of the wire contract (version 1) and must not be
/// renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame or request body could not be decoded.
    Malformed = 1,
    /// The frame referenced a session id the server does not know.
    UnknownSession = 2,
    /// A parked-operand handle did not resolve.
    UnknownHandle = 3,
    /// The session has not registered the key the operation needs.
    MissingKey = 4,
    /// The CKKS layer rejected the operation (level/scale/shape).
    Crypto = 5,
    /// Board DRAM capacity would be exceeded by parking the result.
    Capacity = 6,
    /// The request is structurally valid but not supported.
    Unsupported = 7,
    /// The request was shed: it could not be served within its
    /// deadline budget and was dropped rather than queued forever.
    LoadShed = 8,
    /// The serving path is degraded: bounded retries were exhausted
    /// without a healthy completion.
    Degraded = 9,
}

impl ErrorCode {
    /// Decodes a wire code; unknown values collapse to `Unsupported`
    /// (decoding replies is total, like everything else on this wire).
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownSession,
            3 => ErrorCode::UnknownHandle,
            4 => ErrorCode::MissingKey,
            5 => ErrorCode::Crypto,
            6 => ErrorCode::Capacity,
            8 => ErrorCode::LoadShed,
            9 => ErrorCode::Degraded,
            _ => ErrorCode::Unsupported,
        }
    }

    /// Every code, numeric order — the round-trip tests sweep this.
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::Malformed,
        ErrorCode::UnknownSession,
        ErrorCode::UnknownHandle,
        ErrorCode::MissingKey,
        ErrorCode::Crypto,
        ErrorCode::Capacity,
        ErrorCode::Unsupported,
        ErrorCode::LoadShed,
        ErrorCode::Degraded,
    ];
}

/// Errors produced by the serving layer.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServerError {
    /// A frame or request body failed to decode.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
    /// A frame referenced an unknown session.
    UnknownSession {
        /// The session id the client sent.
        session: u64,
    },
    /// A parked-operand handle did not resolve in this session.
    UnknownHandle {
        /// The handle the request named.
        name: String,
    },
    /// The session has not registered a relinearization key.
    MissingRelinKey,
    /// The session's Galois keys do not cover the requested step.
    MissingGaloisKey {
        /// The rotation step that lacked a key.
        step: i64,
    },
    /// The underlying CKKS operation failed.
    Ckks(CkksError),
    /// The accelerator system rejected the operation (e.g. DRAM full).
    Core(CoreError),
    /// Structurally valid but unsupported request.
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// The request was shed: its deadline budget ran out before it
    /// could be served.
    LoadShed {
        /// Modeled microseconds the request had already consumed.
        spent_us: u64,
        /// The per-request deadline budget, microseconds.
        budget_us: u64,
    },
    /// The serving path is degraded: the bounded retry policy was
    /// exhausted without a healthy completion.
    Degraded {
        /// Retries attempted before giving up.
        retries: u32,
        /// Human-readable reason from the last attempt.
        reason: String,
    },
}

impl ServerError {
    /// Shorthand for a malformed-input error.
    pub(crate) fn malformed(reason: impl Into<String>) -> Self {
        ServerError::Malformed {
            reason: reason.into(),
        }
    }

    /// The wire error code this error travels as.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServerError::Malformed { .. } => ErrorCode::Malformed,
            ServerError::UnknownSession { .. } => ErrorCode::UnknownSession,
            ServerError::UnknownHandle { .. } => ErrorCode::UnknownHandle,
            ServerError::MissingRelinKey | ServerError::MissingGaloisKey { .. } => {
                ErrorCode::MissingKey
            }
            // Key lookups that surface from inside the evaluator keep
            // their own code so clients can tell "generate more keys"
            // from "your ciphertext is malformed".
            ServerError::Ckks(CkksError::MissingGaloisKey { .. }) => ErrorCode::MissingKey,
            ServerError::Ckks(_) => ErrorCode::Crypto,
            ServerError::Core(CoreError::DramFull { .. }) => ErrorCode::Capacity,
            ServerError::Core(_) => ErrorCode::Unsupported,
            ServerError::Unsupported { .. } => ErrorCode::Unsupported,
            ServerError::LoadShed { .. } => ErrorCode::LoadShed,
            ServerError::Degraded { .. } => ErrorCode::Degraded,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Malformed { reason } => write!(f, "malformed message: {reason}"),
            ServerError::UnknownSession { session } => write!(f, "unknown session {session}"),
            ServerError::UnknownHandle { name } => write!(f, "unknown parked handle {name:?}"),
            ServerError::MissingRelinKey => {
                write!(f, "session has no relinearization key registered")
            }
            ServerError::MissingGaloisKey { step } => {
                write!(f, "session has no Galois key for rotation step {step}")
            }
            ServerError::Ckks(e) => write!(f, "ckks error: {e}"),
            ServerError::Core(e) => write!(f, "system error: {e}"),
            ServerError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            ServerError::LoadShed {
                spent_us,
                budget_us,
            } => write!(
                f,
                "request shed: {spent_us} us spent of a {budget_us} us deadline budget"
            ),
            ServerError::Degraded { retries, reason } => {
                write!(f, "degraded after {retries} retries: {reason}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Ckks(e) => Some(e),
            ServerError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkksError> for ServerError {
    fn from(e: CkksError) -> Self {
        ServerError::Ckks(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_total() {
        assert_eq!(ErrorCode::Malformed as u16, 1);
        assert_eq!(ErrorCode::from_u16(2), ErrorCode::UnknownSession);
        assert_eq!(ErrorCode::from_u16(999), ErrorCode::Unsupported);
        assert_eq!(ErrorCode::LoadShed as u16, 8);
        assert_eq!(ErrorCode::Degraded as u16, 9);
        assert_eq!(
            ServerError::MissingGaloisKey { step: 3 }.code(),
            ErrorCode::MissingKey
        );
        assert_eq!(ServerError::malformed("x").code(), ErrorCode::Malformed);
        // Every code survives the numeric round trip, and ALL is in
        // numeric order with no gaps after the legacy block.
        for (i, code) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(ErrorCode::from_u16(*code as u16), *code);
            if i > 0 {
                assert!((*code as u16) > (ErrorCode::ALL[i - 1] as u16));
            }
        }
        assert_eq!(
            ServerError::LoadShed {
                spent_us: 10,
                budget_us: 5
            }
            .code(),
            ErrorCode::LoadShed
        );
        assert_eq!(
            ServerError::Degraded {
                retries: 3,
                reason: "x".into()
            }
            .code(),
            ErrorCode::Degraded
        );
    }

    #[test]
    fn display_and_source() {
        let e: ServerError = CkksError::LevelExhausted.into();
        assert!(e.to_string().contains("ckks"));
        assert!(std::error::Error::source(&e).is_some());
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ServerError>();
    }
}
