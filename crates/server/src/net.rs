//! Real-socket nonblocking server runtime: a hand-rolled epoll event
//! loop multiplexing many concurrent TCP connections — each carrying
//! any number of sessions — onto the batch scheduler of
//! [`HeaxServer`].
//!
//! ## Runtime model
//!
//! [`NetServer`] owns a nonblocking [`TcpListener`], a level-triggered
//! readiness poller (the vendored `epoll` shim: raw Linux syscalls, no
//! `libc`, no tokio/mio — the same own-your-substrate policy as
//! `heax_math::exec`), and one `Conn` state machine per accepted
//! connection. A connection is a byte pipe, nothing more: frames may
//! arrive fragmented at any byte boundary and replies are written in
//! whatever chunks the socket accepts, with the remainder parked in a
//! per-connection write ring until the peer drains it.
//!
//! Each [`NetServer::poll`] turn is one event-loop iteration: accept
//! pending connections, read every readable connection into its
//! [`FrameAssembler`], dispatch completed frames into the inner
//! [`HeaxServer`], decide whether to flush the batch queue, and write
//! pending reply bytes back out. The loop is single-threaded by
//! design — parallelism lives *below* the server, in the executor's
//! limb lanes — so driving it from a test, a binary, or a bench loop
//! is the same `while … { poll() }`.
//!
//! ## Admission control and backpressure
//!
//! Request frames are admitted against [`NetConfig::max_queue_depth`]:
//! past the bound the request is answered immediately with the same
//! structured [`ErrorCode::LoadShed`] frame the [`crate::FlushPolicy`]
//! deadline machinery uses when a queued request's budget runs out —
//! one load-shedding vocabulary whether pressure shows up at the door
//! or inside the batch. A connection whose peer stops reading
//! (its write ring exceeding [`NetConfig::max_write_buffer`]) is
//! dropped rather than allowed to wedge the loop.
//!
//! ## The session-key LRU
//!
//! Cached, Shoup-ready session keys live in modeled board DRAM, and
//! DRAM is finite ([`heax_core::HeaxSystem::dram_capacity_bytes`]).
//! [`SessionKeyLru`] bounds the resident key bytes: registrations
//! stash the serialized key payload host-side and make the session
//! *resident* (billed against the budget), evicting the
//! least-recently-used idle session when space runs out — the evicted
//! session's deserialized keys are dropped from the inner server
//! ([`HeaxServer::evict_session_keys`]) and transparently re-registered
//! from the host-side copy on that session's next request. Sessions
//! with in-flight (queued) requests are never evicted. Evictions and
//! re-registrations are billed through
//! [`ServerStats`](crate::ServerStats) (`key_evictions`,
//! `key_reregistrations`).
//!
//! ## Failure containment
//!
//! A hostile connection (bad frame magic, oversized frame) is answered
//! with a structured [`ErrorCode::Malformed`] error frame and dropped;
//! a dying or stalled connection is reaped; replies whose connection
//! is gone are discarded. None of it disturbs co-scheduled sessions:
//! the batch still flushes and every other connection's replies still
//! route. The loopback suites (`tests/net_loopback.rs`) pin this
//! behavior against the in-process server byte-for-byte.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;

use crate::error::ErrorCode;
use crate::server::HeaxServer;
use crate::wire::{self, MessageKind, FRAME_HEADER_LEN, FRAME_MAGIC};

/// Hard cap on a single frame's payload length accepted by the
/// transport (64 MiB). A header announcing more is a framing attack
/// (or a corrupt stream), not a request — the connection is dropped
/// with a structured error before any allocation of that size.
/// Pinned by PROTOCOL.md §7 and the heax-lint L6 rule.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 26;

/// Poller token reserved for the listening socket.
const LISTENER_TOKEN: u64 = 0;

/// Read-chunk size for draining a readable connection.
const READ_CHUNK: usize = 16 * 1024;

// ---------------------------------------------------------------------
// Byte ring
// ---------------------------------------------------------------------

/// A growable byte ring: bytes pushed at the tail, consumed at the
/// head, no per-frame allocations on the steady-state path. Backs both
/// directions of a connection — inbound bytes awaiting frame assembly
/// and outbound reply bytes awaiting a writable socket.
#[derive(Debug, Default)]
pub struct RingBuf {
    data: Vec<u8>,
    head: usize,
    len: usize,
}

impl RingBuf {
    /// An empty ring (first push allocates).
    pub fn new() -> Self {
        RingBuf::default()
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Re-linearizes into an allocation of at least `need` bytes.
    fn grow(&mut self, need: usize) {
        let mut cap = self.data.len().max(64);
        while cap < need {
            cap *= 2;
        }
        let mut fresh = vec![0u8; cap];
        let copied = self.peek(&mut fresh[..self.len]);
        debug_assert_eq!(copied, self.len);
        self.data = fresh;
        self.head = 0;
    }

    /// Appends `bytes` at the tail, growing as needed.
    pub fn push_slice(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            // Guards the tail computation below: a never-allocated
            // ring has capacity 0, and an empty push must not reach
            // the `% cap`.
            return;
        }
        if self.len + bytes.len() > self.data.len() {
            self.grow(self.len + bytes.len());
        }
        let cap = self.data.len();
        let tail = (self.head + self.len) % cap;
        let first = (cap - tail).min(bytes.len());
        self.data[tail..tail + first].copy_from_slice(&bytes[..first]);
        let rest = bytes.len() - first;
        if rest > 0 {
            self.data[..rest].copy_from_slice(&bytes[first..]);
        }
        self.len += bytes.len();
    }

    /// Copies up to `out.len()` bytes from the head without consuming;
    /// returns the number copied.
    pub fn peek(&self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.len);
        if n == 0 {
            return 0;
        }
        let cap = self.data.len();
        let first = (cap - self.head).min(n);
        out[..first].copy_from_slice(&self.data[self.head..self.head + first]);
        if n > first {
            out[first..n].copy_from_slice(&self.data[..n - first]);
        }
        n
    }

    /// The longest contiguous slice at the head (what one `write` call
    /// can take without copying).
    pub fn first_slice(&self) -> &[u8] {
        let end = (self.head + self.len).min(self.data.len());
        &self.data[self.head..end]
    }

    /// Drops up to `n` bytes from the head; returns the number dropped.
    pub fn consume(&mut self, n: usize) -> usize {
        let n = n.min(self.len);
        if self.data.is_empty() {
            return 0;
        }
        self.head = (self.head + n) % self.data.len();
        self.len -= n;
        if self.len == 0 {
            self.head = 0;
        }
        n
    }

    /// Copies and consumes up to `n` bytes from the head.
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        let n = n.min(self.len);
        let mut out = vec![0u8; n];
        self.peek(&mut out);
        self.consume(n);
        out
    }
}

// ---------------------------------------------------------------------
// Frame assembly
// ---------------------------------------------------------------------

/// A framing-layer violation: the stream can no longer be trusted to
/// contain frames, so the connection must be dropped (after a
/// best-effort structured error frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameIntakeError {
    /// The next 4 buffered bytes are not the `"HEAW"` frame magic —
    /// either garbage or a desynchronized stream.
    BadMagic,
    /// The header announces a payload larger than the transport accepts.
    Oversized {
        /// Announced payload length.
        len: u32,
        /// The transport's cap ([`MAX_FRAME_PAYLOAD`] by default).
        max: u32,
    },
}

impl std::fmt::Display for FrameIntakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameIntakeError::BadMagic => write!(f, "bad frame magic"),
            FrameIntakeError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameIntakeError {}

/// Incremental frame assembly over an arbitrarily fragmented byte
/// stream: push whatever the socket produced, pop complete frames.
///
/// The assembler validates only what framing needs — the magic and the
/// payload-length bound. Version, kind, and body validation stay with
/// [`wire::decode_frame`] / the server, so a well-framed-but-invalid
/// message is answered with an error frame while the connection lives
/// on; only unframeable bytes kill the connection.
///
/// Standalone (no socket) by design: the fragmentation proptests in
/// `tests/net_props.rs` drive it byte-at-a-time and in random chunks
/// and require the decoded requests to be identical to whole-buffer
/// decoding.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: RingBuf,
    max_payload: u32,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        FrameAssembler::new()
    }
}

impl FrameAssembler {
    /// An assembler with the default [`MAX_FRAME_PAYLOAD`] cap.
    pub fn new() -> Self {
        FrameAssembler::with_max_payload(MAX_FRAME_PAYLOAD)
    }

    /// An assembler with an explicit payload cap (tests use tiny caps
    /// to exercise the oversize path cheaply).
    pub fn with_max_payload(max_payload: u32) -> Self {
        FrameAssembler {
            buf: RingBuf::new(),
            max_payload,
        }
    }

    /// Feeds bytes received from the stream, in any fragmentation.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.push_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; a complete frame is returned
    /// with header and payload as one `Vec` (exactly what
    /// [`HeaxServer::handle_frame`] expects).
    ///
    /// # Errors
    ///
    /// [`FrameIntakeError`] when the buffered bytes cannot be the start
    /// of a frame; the stream is beyond recovery and the connection
    /// must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameIntakeError> {
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.buf.peek(&mut header);
        if header[..4] != FRAME_MAGIC {
            return Err(FrameIntakeError::BadMagic);
        }
        // Payload length: the little-endian u32 closing the header
        // (after magic, version, kind, session, request).
        let len = u32::from_le_bytes([header[22], header[23], header[24], header[25]]);
        if len > self.max_payload {
            return Err(FrameIntakeError::Oversized {
                len,
                max: self.max_payload,
            });
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        Ok(Some(self.buf.take(total)))
    }
}

// ---------------------------------------------------------------------
// Session-key LRU
// ---------------------------------------------------------------------

/// Which evaluation key a cached payload is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyKind {
    /// A relinearization key (`RegisterRelinKey` payload).
    Relin,
    /// A Galois key set (`RegisterGaloisKeys` payload).
    Galois,
}

/// Why the key cache could not make a session resident.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyCacheError {
    /// This session's keys alone exceed the whole budget; no eviction
    /// schedule can ever admit them.
    EntryExceedsBudget {
        /// Bytes the session's keys need.
        need: u64,
        /// The cache's total budget.
        budget: u64,
    },
    /// Every resident session is protected by in-flight requests;
    /// nothing can be evicted right now. The caller sheds the request
    /// and the client retries after the batch drains.
    CachePressure {
        /// Bytes the session's keys need.
        need: u64,
        /// Bytes currently free under the budget.
        free: u64,
    },
}

impl std::fmt::Display for KeyCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyCacheError::EntryExceedsBudget { need, budget } => {
                write!(
                    f,
                    "session keys need {need} B, over the {budget} B DRAM budget"
                )
            }
            KeyCacheError::CachePressure { need, free } => write!(
                f,
                "key cache under pressure: {need} B needed, {free} B free, all residents in flight"
            ),
        }
    }
}

impl std::error::Error for KeyCacheError {}

/// One session's cached key material.
#[derive(Debug, Default)]
struct KeyEntry {
    /// Serialized relin-key payload, kept host-side for re-registration.
    rlk: Option<Vec<u8>>,
    /// Serialized Galois-keys payload, kept host-side.
    gks: Option<Vec<u8>>,
    /// Whether the deserialized (Shoup-ready) keys are DRAM-resident in
    /// the inner server right now.
    resident: bool,
    /// LRU clock stamp of the last touch.
    last_touch: u64,
    /// Requests queued (submitted, not yet flushed) for this session.
    inflight: u64,
}

impl KeyEntry {
    fn bytes(&self) -> u64 {
        self.rlk.as_ref().map_or(0, |b| b.len() as u64)
            + self.gks.as_ref().map_or(0, |b| b.len() as u64)
    }
}

/// An LRU cache bounding the modeled DRAM bytes held by resident
/// session keys.
///
/// The serialized payloads are the billing proxy for the deserialized
/// keys' DRAM footprint (same polynomial data, minus the rebuilt Shoup
/// tables — a consistent under-approximation). Host-side copies are
/// always kept; only *residency* is budgeted. Invariants, pinned by
/// the `net_props` proptests:
///
/// * resident bytes never exceed the budget;
/// * a session with in-flight requests is never evicted;
/// * a re-registered (evicted, then restored) session serves from
///   byte-identical key material, so its Shoup tables rebuild
///   bit-identical.
#[derive(Debug)]
pub struct SessionKeyLru {
    budget: u64,
    resident_bytes: u64,
    clock: u64,
    entries: HashMap<u64, KeyEntry>,
}

impl SessionKeyLru {
    /// A cache with the given byte budget.
    pub fn new(budget: u64) -> Self {
        SessionKeyLru {
            budget,
            resident_bytes: 0,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently billed as resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Number of sessions currently resident.
    pub fn resident_sessions(&self) -> usize {
        self.entries.values().filter(|e| e.resident).count()
    }

    /// Whether the session has any cached key material.
    pub fn has_entry(&self, session: u64) -> bool {
        self.entries.contains_key(&session)
    }

    /// Whether the session's keys are resident.
    pub fn is_resident(&self, session: u64) -> bool {
        self.entries.get(&session).is_some_and(|e| e.resident)
    }

    /// Bumps the session's LRU stamp.
    pub fn touch(&mut self, session: u64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&session) {
            e.last_touch = clock;
        }
    }

    /// Marks one request of this session queued (eviction-protected).
    pub fn begin_request(&mut self, session: u64) {
        if let Some(e) = self.entries.get_mut(&session) {
            e.inflight = e.inflight.saturating_add(1);
        }
    }

    /// Marks one request of this session answered.
    pub fn end_request(&mut self, session: u64) {
        if let Some(e) = self.entries.get_mut(&session) {
            e.inflight = e.inflight.saturating_sub(1);
        }
    }

    /// Stores (or replaces) one serialized key payload for a session
    /// and makes the session resident, evicting idle sessions as
    /// needed. Returns the evicted session ids — the caller must drop
    /// those sessions' keys from the inner server.
    ///
    /// # Errors
    ///
    /// [`KeyCacheError`] when residency is impossible; the payload is
    /// **not** kept (registration failed from the client's view) and a
    /// previously-resident session is left *evicted*. The caller drops
    /// the session's engine-side keys on this path, so advertising
    /// residency here would desynchronize cache and engine — staying
    /// evicted makes the pre-upload keys come back through
    /// [`SessionKeyLru::restore`] instead.
    pub fn store(
        &mut self,
        session: u64,
        kind: KeyKind,
        payload: &[u8],
    ) -> Result<Vec<u64>, KeyCacheError> {
        // Take the entry off-budget while its contents change.
        let entry = self.entries.entry(session).or_default();
        if entry.resident {
            self.resident_bytes -= entry.bytes();
            entry.resident = false;
        }
        let slot = match kind {
            KeyKind::Relin => &mut entry.rlk,
            KeyKind::Galois => &mut entry.gks,
        };
        let previous = slot.replace(payload.to_vec());
        match self.make_resident(session) {
            Ok(evicted) => Ok(evicted),
            Err(e) => {
                // Roll the slot back so a rejected upload leaves no
                // half-registered state behind. Residency is NOT
                // restored (see Errors above).
                if let Some(entry) = self.entries.get_mut(&session) {
                    let slot = match kind {
                        KeyKind::Relin => &mut entry.rlk,
                        KeyKind::Galois => &mut entry.gks,
                    };
                    *slot = previous;
                    if entry.bytes() == 0 {
                        self.entries.remove(&session);
                    }
                }
                Err(e)
            }
        }
    }

    /// Makes an evicted session resident again, returning the sessions
    /// evicted to make room and the host-side payloads to re-register
    /// (in registration order: relin first, then Galois). A session
    /// with no cached keys restores trivially (empty payload list).
    ///
    /// # Errors
    ///
    /// [`KeyCacheError`] when residency is impossible right now; the
    /// caller sheds the triggering request.
    #[allow(clippy::type_complexity)]
    pub fn restore(
        &mut self,
        session: u64,
    ) -> Result<(Vec<u64>, Vec<(KeyKind, Vec<u8>)>), KeyCacheError> {
        if !self.entries.contains_key(&session) {
            return Ok((Vec::new(), Vec::new()));
        }
        if self.is_resident(session) {
            self.touch(session);
            return Ok((Vec::new(), Vec::new()));
        }
        let evicted = self.make_resident(session)?;
        let entry = &self.entries[&session];
        let mut payloads = Vec::new();
        if let Some(b) = &entry.rlk {
            payloads.push((KeyKind::Relin, b.clone()));
        }
        if let Some(b) = &entry.gks {
            payloads.push((KeyKind::Galois, b.clone()));
        }
        Ok((evicted, payloads))
    }

    /// Drops a session's cached keys entirely (session closed),
    /// releasing its resident bytes.
    pub fn remove(&mut self, session: u64) {
        if let Some(e) = self.entries.remove(&session) {
            if e.resident {
                self.resident_bytes -= e.bytes();
            }
        }
    }

    /// Charges `session`'s entry to the budget, evicting
    /// least-recently-touched idle sessions first. Eviction is
    /// all-or-nothing: the victim schedule is computed before anything
    /// is evicted, so a failure leaves the cache untouched.
    fn make_resident(&mut self, session: u64) -> Result<Vec<u64>, KeyCacheError> {
        let need = self.entries.get(&session).map_or(0, KeyEntry::bytes);
        if need > self.budget {
            return Err(KeyCacheError::EntryExceedsBudget {
                need,
                budget: self.budget,
            });
        }
        // Victims: resident, idle, not the session itself, oldest first.
        let mut candidates: Vec<(u64, u64, u64)> = self
            .entries
            .iter()
            .filter(|&(&id, e)| id != session && e.resident && e.inflight == 0)
            .map(|(&id, e)| (e.last_touch, id, e.bytes()))
            .collect();
        candidates.sort_unstable();
        let mut freed = 0u64;
        let mut victims = Vec::new();
        for &(_, id, bytes) in &candidates {
            if self.resident_bytes - freed + need <= self.budget {
                break;
            }
            freed += bytes;
            victims.push(id);
        }
        if self.resident_bytes - freed + need > self.budget {
            return Err(KeyCacheError::CachePressure {
                need,
                free: self.budget - self.resident_bytes,
            });
        }
        for &id in &victims {
            if let Some(e) = self.entries.get_mut(&id) {
                e.resident = false;
            }
        }
        self.resident_bytes = self.resident_bytes - freed + need;
        if let Some(e) = self.entries.get_mut(&session) {
            e.resident = true;
        }
        self.touch(session);
        Ok(victims)
    }
}

// ---------------------------------------------------------------------
// Configuration and counters
// ---------------------------------------------------------------------

/// Tunables of the socket runtime.
///
/// The admission bound (`max_queue_depth`) is the transport half of
/// the [`FlushPolicy`] load-shedding contract: the policy sheds queued
/// requests whose modeled deadline budget runs out, the transport
/// sheds at the door once the queue is this deep — both answer with
/// [`ErrorCode::LoadShed`] so clients see one backpressure vocabulary.
///
/// [`FlushPolicy`]: crate::server::FlushPolicy
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Accepted-connection cap; connections past it are refused at
    /// accept time.
    pub max_conns: usize,
    /// Queue-depth bound for request admission; requests arriving at a
    /// deeper queue are answered with a load-shed error frame.
    pub max_queue_depth: usize,
    /// Per-connection write-ring cap: a peer that stops reading until
    /// this many reply bytes pile up is dropped (stalled-reader
    /// containment).
    pub max_write_buffer: usize,
    /// Per-frame payload cap fed to each connection's
    /// [`FrameAssembler`].
    pub max_frame_payload: u32,
    /// Byte budget of the [`SessionKeyLru`]; `0` derives one eighth of
    /// the modeled board's free DRAM at bind time.
    pub key_cache_budget: u64,
    /// Flush the batch queue as soon as this many requests are pending.
    pub flush_threshold: usize,
    /// Flush whenever a poll turn ingests no new frame and requests are
    /// pending (latency floor for idle periods). Tests that script
    /// exact batch boundaries turn this off and call
    /// [`NetServer::flush_now`] themselves.
    pub flush_on_idle: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_conns: 4096,
            max_queue_depth: 1024,
            max_write_buffer: 8 * 1024 * 1024,
            max_frame_payload: MAX_FRAME_PAYLOAD,
            key_cache_budget: 0,
            flush_threshold: 64,
            flush_on_idle: true,
        }
    }
}

/// Counters of the socket runtime (all saturating), one layer above
/// the inner server's [`ServerStats`](crate::ServerStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the `max_conns` cap.
    pub refused: u64,
    /// Connections that closed or errored from the peer side.
    pub disconnects: u64,
    /// Connections dropped for framing violations (bad magic, oversized
    /// frame), each answered first with a structured error frame.
    pub hostile_drops: u64,
    /// Connections dropped because their write ring exceeded the cap
    /// (peer stopped reading).
    pub overflow_drops: u64,
    /// Complete frames assembled and dispatched.
    pub frames_in: u64,
    /// Reads that ended with a partial frame still buffered — the
    /// fragmentation reality the assembler exists for.
    pub partial_frame_reads: u64,
    /// Writes that could not take the whole pending reply in one call.
    pub short_writes: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Requests answered with a load-shed error at admission (queue
    /// bound or key-cache pressure).
    pub admission_sheds: u64,
    /// Flushes the runtime triggered.
    pub flushes: u64,
    /// Replies routed back to their submitting connection.
    pub replies_routed: u64,
    /// Replies whose connection died before the batch finished.
    pub orphaned_replies: u64,
    /// Sessions evicted from the key LRU (billed in the inner server's
    /// `key_evictions` too).
    pub key_evictions: u64,
    /// Evicted sessions transparently re-registered on their next
    /// request.
    pub key_restores: u64,
    /// Most connections ever open at once.
    pub conns_high_water: u64,
}

/// What one [`NetServer::poll`] turn did — handy for driving tests and
/// closed-loop benches without peeking at internals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetTick {
    /// Connections accepted this turn.
    pub accepted: usize,
    /// Complete frames ingested this turn.
    pub frames: usize,
    /// Replies routed (flush output) this turn.
    pub replies: usize,
    /// Connections dropped this turn (any cause).
    pub dropped: usize,
    /// Whether this turn flushed the batch queue.
    pub flushed: bool,
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Routing record for one queued request: which connection gets the
/// reply that [`HeaxServer::flush`] will emit at this queue position.
#[derive(Clone, Copy, Debug)]
struct Route {
    token: u64,
    session: u64,
}

/// Per-connection state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    out: RingBuf,
    /// Interest bits currently registered with the poller.
    interest: u32,
    /// Marked for reaping at the end of the poll turn.
    dying: bool,
}

/// The nonblocking TCP runtime around a [`HeaxServer`] (see the module
/// docs for the serving model).
#[derive(Debug)]
pub struct NetServer<'a> {
    listener: TcpListener,
    poller: epoll::Poller,
    events: Vec<epoll::Event>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    pending: VecDeque<Route>,
    keys: SessionKeyLru,
    config: NetConfig,
    stats: NetStats,
    inner: HeaxServer<'a>,
}

impl<'a> NetServer<'a> {
    /// Binds a listener and wraps the given engine in the socket
    /// runtime. Bind to port 0 for an ephemeral port
    /// ([`NetServer::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// Socket or poller creation failure.
    pub fn bind(addr: &str, inner: HeaxServer<'a>, config: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let poller = epoll::Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, epoll::READABLE)?;
        let budget = if config.key_cache_budget == 0 {
            inner.system().dram_available_bytes() / 8
        } else {
            config.key_cache_budget
        };
        Ok(NetServer {
            listener,
            poller,
            events: Vec::new(),
            conns: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
            pending: VecDeque::new(),
            keys: SessionKeyLru::new(budget),
            config,
            stats: NetStats::default(),
            inner,
        })
    }

    /// The bound listening address.
    ///
    /// # Errors
    ///
    /// The raw `getsockname` failure, if any.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The inner engine (stats, queue inspection).
    pub fn server(&self) -> &HeaxServer<'a> {
        &self.inner
    }

    /// Mutable access to the inner engine (tests attach models and
    /// policies through the builder before `bind`; this is for
    /// inspection-with-side-effects like `stats()`).
    pub fn server_mut(&mut self) -> &mut HeaxServer<'a> {
        &mut self.inner
    }

    /// The session-key LRU (inspection).
    pub fn key_cache(&self) -> &SessionKeyLru {
        &self.keys
    }

    /// A snapshot of the runtime counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Requests queued in the batch whose replies are still owed to
    /// connections.
    pub fn pending_replies(&self) -> usize {
        self.pending.len()
    }

    /// Runs one event-loop turn: wait up to `timeout_ms` for readiness
    /// (`0` = nonblocking), accept/read/dispatch, auto-flush per
    /// config, write, reap.
    ///
    /// # Errors
    ///
    /// Only poller-level failures; per-connection socket errors are
    /// contained (the connection is dropped, the loop lives).
    pub fn poll(&mut self, timeout_ms: i32) -> io::Result<NetTick> {
        let mut tick = NetTick::default();
        let mut events = std::mem::take(&mut self.events);
        self.poller.wait(&mut events, timeout_ms)?;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                tick.accepted = tick.accepted.saturating_add(self.accept_ready());
            } else if self.conns.contains_key(&ev.token) {
                if ev.is_readable() {
                    tick.frames = tick.frames.saturating_add(self.read_ready(ev.token));
                }
                if ev.is_writable() {
                    self.write_ready(ev.token);
                }
            }
        }
        self.events = events;
        let depth = self.inner.queue_depth();
        if depth > 0
            && (depth >= self.config.flush_threshold
                || (self.config.flush_on_idle && tick.frames == 0))
        {
            tick.replies = tick.replies.saturating_add(self.flush_now());
            tick.flushed = true;
        }
        // Write pass: push out whatever the sockets will take now.
        let writable: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.out.is_empty() && !c.dying)
            .map(|(&t, _)| t)
            .collect();
        for token in writable {
            self.write_ready(token);
        }
        tick.dropped = tick.dropped.saturating_add(self.reap());
        Ok(tick)
    }

    /// Drains the batch queue now and routes every reply to its
    /// connection; returns the number of replies routed (orphans
    /// included in the count's complement, see
    /// [`NetStats::orphaned_replies`]).
    pub fn flush_now(&mut self) -> usize {
        let replies = self.inner.flush();
        if replies.is_empty() {
            return 0;
        }
        self.stats.flushes = self.stats.flushes.saturating_add(1);
        let mut routed = 0;
        for reply in replies {
            // One route per queued request, submission order — the
            // flush contract.
            let Some(route) = self.pending.pop_front() else {
                break;
            };
            self.keys.end_request(route.session);
            if self.enqueue_reply(route.token, &reply) {
                routed += 1;
                self.stats.replies_routed = self.stats.replies_routed.saturating_add(1);
            }
        }
        routed
    }

    /// Accepts every pending connection; returns how many.
    fn accept_ready(&mut self) -> usize {
        let mut accepted = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.config.max_conns {
                        self.stats.refused = self.stats.refused.saturating_add(1);
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.refused = self.stats.refused.saturating_add(1);
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, epoll::READABLE)
                        .is_err()
                    {
                        self.stats.refused = self.stats.refused.saturating_add(1);
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            assembler: FrameAssembler::with_max_payload(
                                self.config.max_frame_payload,
                            ),
                            out: RingBuf::new(),
                            interest: epoll::READABLE,
                            dying: false,
                        },
                    );
                    accepted += 1;
                    self.stats.accepted = self.stats.accepted.saturating_add(1);
                    self.stats.conns_high_water =
                        self.stats.conns_high_water.max(self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        accepted
    }

    /// Reads a readable connection to `WouldBlock`, assembles frames,
    /// and dispatches each; returns the number of frames ingested.
    fn read_ready(&mut self, token: u64) -> usize {
        let mut frames = Vec::new();
        let mut hostile: Option<FrameIntakeError> = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return 0;
            };
            let mut buf = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dying = true;
                        self.stats.disconnects = self.stats.disconnects.saturating_add(1);
                        break;
                    }
                    Ok(n) => {
                        self.stats.bytes_in = self.stats.bytes_in.saturating_add(n as u64);
                        conn.assembler.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dying = true;
                        self.stats.disconnects = self.stats.disconnects.saturating_add(1);
                        break;
                    }
                }
            }
            loop {
                match conn.assembler.next_frame() {
                    Ok(Some(frame)) => frames.push(frame),
                    Ok(None) => break,
                    Err(e) => {
                        hostile = Some(e);
                        break;
                    }
                }
            }
            if hostile.is_none() && conn.assembler.buffered() > 0 {
                self.stats.partial_frame_reads = self.stats.partial_frame_reads.saturating_add(1);
            }
        }
        let count = frames.len();
        self.stats.frames_in = self.stats.frames_in.saturating_add(count as u64);
        for frame in frames {
            self.dispatch(token, &frame);
        }
        if let Some(e) = hostile {
            // Structured error frame, then the axe: the stream is
            // unframeable, so this is the last thing the peer hears.
            let payload = wire::encode_error(ErrorCode::Malformed, &e.to_string());
            let reply = wire::encode_frame(wire::WIRE_V1, MessageKind::Error, 0, 0, &payload);
            self.enqueue_reply(token, &reply);
            self.write_ready(token);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dying = true;
            }
            self.stats.hostile_drops = self.stats.hostile_drops.saturating_add(1);
        }
        count
    }

    /// Routes one complete frame: key registrations pass through the
    /// LRU, requests pass admission control, everything else goes
    /// straight to the engine.
    fn dispatch(&mut self, token: u64, frame: &[u8]) {
        let Ok(decoded) = wire::decode_frame(frame) else {
            // Well-framed but undecodable (bad version/kind): the
            // engine answers a structured error; the connection lives.
            if let Some(reply) = self.inner.handle_frame(frame) {
                self.enqueue_reply(token, &reply);
            }
            return;
        };
        let (version, kind, session, request) = (
            decoded.version,
            decoded.kind,
            decoded.session,
            decoded.request,
        );
        match kind {
            MessageKind::RegisterRelinKey | MessageKind::RegisterGaloisKeys => {
                let key_kind = if kind == MessageKind::RegisterRelinKey {
                    KeyKind::Relin
                } else {
                    KeyKind::Galois
                };
                let payload = decoded.payload.to_vec();
                let Some(reply) = self.inner.handle_frame(frame) else {
                    return;
                };
                let registered = wire::decode_frame(&reply)
                    .map(|f| f.kind == MessageKind::KeyRegistered)
                    .unwrap_or(false);
                if !registered {
                    self.enqueue_reply(token, &reply);
                    return;
                }
                match self.keys.store(session, key_kind, &payload) {
                    Ok(evicted) => {
                        self.apply_evictions(&evicted);
                        self.enqueue_reply(token, &reply);
                    }
                    Err(e) => {
                        // The cache can't hold these keys resident, so
                        // the registration must fail: drop them from
                        // the engine again and shed. store() left the
                        // session evicted, so immediately re-seat the
                        // pre-upload keys (if any) — queued requests
                        // for this session still need them engine-side;
                        // if even that fails under pressure, the next
                        // request retries through the restore path.
                        let _ = self.inner.evict_session_keys(session);
                        if self.keys.has_entry(session) {
                            let _ = self.restore_session_keys(session);
                        }
                        self.stats.admission_sheds = self.stats.admission_sheds.saturating_add(1);
                        let shed = self.shed_frame(version, session, request, &e.to_string());
                        self.enqueue_reply(token, &shed);
                    }
                }
            }
            MessageKind::Request => {
                if self.inner.queue_depth() >= self.config.max_queue_depth {
                    self.stats.admission_sheds = self.stats.admission_sheds.saturating_add(1);
                    let msg = format!(
                        "queue depth {} at the {}-request admission bound",
                        self.inner.queue_depth(),
                        self.config.max_queue_depth
                    );
                    let shed = self.shed_frame(version, session, request, &msg);
                    self.enqueue_reply(token, &shed);
                    return;
                }
                if self.keys.has_entry(session) && !self.keys.is_resident(session) {
                    if let Err(e) = self.restore_session_keys(session) {
                        self.stats.admission_sheds = self.stats.admission_sheds.saturating_add(1);
                        let shed = self.shed_frame(version, session, request, &e.to_string());
                        self.enqueue_reply(token, &shed);
                        return;
                    }
                }
                match self.inner.handle_frame(frame) {
                    None => {
                        self.pending.push_back(Route { token, session });
                        self.keys.begin_request(session);
                        self.keys.touch(session);
                    }
                    Some(reply) => {
                        self.enqueue_reply(token, &reply);
                    }
                }
            }
            MessageKind::CloseSession => {
                if let Some(reply) = self.inner.handle_frame(frame) {
                    let closed = wire::decode_frame(&reply)
                        .map(|f| f.kind == MessageKind::SessionClosed)
                        .unwrap_or(false);
                    if closed {
                        self.keys.remove(session);
                    }
                    self.enqueue_reply(token, &reply);
                }
            }
            _ => {
                if let Some(reply) = self.inner.handle_frame(frame) {
                    self.enqueue_reply(token, &reply);
                }
            }
        }
    }

    /// Re-seats an evicted session's host-cached keys into the engine:
    /// makes the session resident (evicting idle victims) and replays
    /// the stored registrations. Replies to these transparent
    /// re-uploads are the runtime's business, not the client's; they
    /// are dropped.
    fn restore_session_keys(&mut self, session: u64) -> Result<(), KeyCacheError> {
        let (evicted, payloads) = self.keys.restore(session)?;
        self.apply_evictions(&evicted);
        for (key_kind, bytes) in payloads {
            let reg = match key_kind {
                KeyKind::Relin => wire::client::register_relin_key(session, &bytes),
                KeyKind::Galois => wire::client::register_galois_keys(session, &bytes),
            };
            let _ = self.inner.handle_frame(&reg);
        }
        self.stats.key_restores = self.stats.key_restores.saturating_add(1);
        Ok(())
    }

    /// Drops the named sessions' deserialized keys from the engine and
    /// bills the evictions.
    fn apply_evictions(&mut self, evicted: &[u64]) {
        for &victim in evicted {
            // The session may have closed since; the cache entry is
            // gone either way.
            let _ = self.inner.evict_session_keys(victim);
            self.stats.key_evictions = self.stats.key_evictions.saturating_add(1);
        }
    }

    /// A load-shed error frame at the peer's wire version.
    fn shed_frame(&self, version: u8, session: u64, request: u64, msg: &str) -> Vec<u8> {
        let payload = wire::encode_error(ErrorCode::LoadShed, msg);
        wire::encode_frame(version, MessageKind::Error, session, request, &payload)
    }

    /// Queues reply bytes on a connection's write ring; `false` when
    /// the connection is gone or was dropped for overflow.
    fn enqueue_reply(&mut self, token: u64, bytes: &[u8]) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            self.stats.orphaned_replies = self.stats.orphaned_replies.saturating_add(1);
            return false;
        };
        if conn.dying {
            self.stats.orphaned_replies = self.stats.orphaned_replies.saturating_add(1);
            return false;
        }
        if conn.out.len() + bytes.len() > self.config.max_write_buffer {
            // Stalled reader: the peer owes us a read before it gets
            // more replies; containment is dropping it, not buffering
            // without bound.
            conn.dying = true;
            self.stats.overflow_drops = self.stats.overflow_drops.saturating_add(1);
            self.stats.orphaned_replies = self.stats.orphaned_replies.saturating_add(1);
            return false;
        }
        conn.out.push_slice(bytes);
        self.update_interest(token);
        true
    }

    /// Writes as much pending output as the socket takes.
    fn write_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !conn.out.is_empty() {
            let slice = conn.out.first_slice();
            let want = slice.len();
            match conn.stream.write(slice) {
                Ok(0) => {
                    conn.dying = true;
                    self.stats.disconnects = self.stats.disconnects.saturating_add(1);
                    break;
                }
                Ok(n) => {
                    self.stats.bytes_out = self.stats.bytes_out.saturating_add(n as u64);
                    conn.out.consume(n);
                    if n < want {
                        self.stats.short_writes = self.stats.short_writes.saturating_add(1);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.stats.short_writes = self.stats.short_writes.saturating_add(1);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dying = true;
                    self.stats.disconnects = self.stats.disconnects.saturating_add(1);
                    break;
                }
            }
        }
        self.update_interest(token);
    }

    /// Re-arms the poller with `READABLE` (+ `WRITABLE` while output is
    /// pending), skipping the syscall when nothing changed.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = if conn.out.is_empty() {
            epoll::READABLE
        } else {
            epoll::READABLE | epoll::WRITABLE
        };
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Removes every connection marked dying; returns how many.
    fn reap(&mut self) -> usize {
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dying)
            .map(|(&t, _)| t)
            .collect();
        for token in &dead {
            if let Some(conn) = self.conns.remove(token) {
                let _ = self.poller.delete(conn.stream.as_raw_fd());
            }
        }
        dead.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ----- RingBuf -----

    #[test]
    fn ringbuf_push_peek_consume_across_wraps() {
        let mut rb = RingBuf::new();
        assert!(rb.is_empty());
        rb.push_slice(b"hello");
        assert_eq!(rb.len(), 5);
        let mut out = [0u8; 3];
        assert_eq!(rb.peek(&mut out), 3);
        assert_eq!(&out, b"hel");
        assert_eq!(rb.consume(2), 2);
        assert_eq!(rb.take(3), b"llo");
        assert!(rb.is_empty());
        // Force wrap-around: fill, drain half, refill past the seam.
        let big = vec![7u8; 100];
        rb.push_slice(&big);
        rb.consume(90);
        rb.push_slice(b"abcdefghij");
        assert_eq!(rb.len(), 20);
        let all = rb.take(20);
        assert_eq!(&all[..10], &[7u8; 10]);
        assert_eq!(&all[10..], b"abcdefghij");
        // Totality: over-consume and over-take are clamped.
        rb.push_slice(b"xy");
        assert_eq!(rb.consume(99), 2);
        assert_eq!(rb.take(99), b"");
    }

    #[test]
    fn ringbuf_empty_push_is_a_no_op_even_before_first_allocation() {
        let mut rb = RingBuf::new();
        rb.push_slice(&[]);
        assert!(rb.is_empty());
        assert_eq!(rb.capacity(), 0);
        rb.push_slice(b"abc");
        rb.push_slice(&[]);
        assert_eq!(rb.take(3), b"abc");
    }

    #[test]
    fn ringbuf_growth_preserves_order() {
        let mut rb = RingBuf::new();
        for i in 0..1000u32 {
            rb.push_slice(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert_eq!(rb.take(4), i.to_le_bytes());
        }
    }

    // ----- FrameAssembler -----

    fn sample_frames() -> Vec<Vec<u8>> {
        vec![
            wire::client::open_session(),
            wire::encode_frame(wire::WIRE_V2, MessageKind::CloseSession, 3, 9, &[]),
            wire::encode_frame(wire::WIRE_V1, MessageKind::Request, 1, 2, &[1, 2, 3, 4]),
        ]
    }

    #[test]
    fn assembler_reassembles_byte_at_a_time() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.push(&[b]);
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_rejects_bad_magic_and_oversize() {
        let mut asm = FrameAssembler::new();
        asm.push(b"GARBAGE-GARBAGE-GARBAGE-GARBAGE");
        assert_eq!(asm.next_frame(), Err(FrameIntakeError::BadMagic));

        let mut tiny = FrameAssembler::with_max_payload(8);
        let frame = wire::encode_frame(wire::WIRE_V1, MessageKind::Request, 1, 1, &[0u8; 9]);
        tiny.push(&frame);
        assert_eq!(
            tiny.next_frame(),
            Err(FrameIntakeError::Oversized { len: 9, max: 8 })
        );
    }

    #[test]
    fn assembler_needs_full_header_and_payload() {
        let frame = wire::client::open_session();
        let mut asm = FrameAssembler::new();
        asm.push(&frame[..FRAME_HEADER_LEN - 1]);
        assert_eq!(asm.next_frame().unwrap(), None);
        asm.push(&frame[FRAME_HEADER_LEN - 1..]);
        assert_eq!(asm.next_frame().unwrap(), Some(frame));
    }

    // ----- SessionKeyLru -----

    #[test]
    fn lru_budget_is_a_hard_bound() {
        let mut lru = SessionKeyLru::new(100);
        assert_eq!(lru.store(1, KeyKind::Galois, &[0; 60]).unwrap(), vec![]);
        assert_eq!(lru.resident_bytes(), 60);
        // Session 2 fits only by evicting session 1 (LRU victim).
        assert_eq!(lru.store(2, KeyKind::Galois, &[0; 60]).unwrap(), vec![1]);
        assert_eq!(lru.resident_bytes(), 60);
        assert!(!lru.is_resident(1));
        assert!(lru.is_resident(2));
        // A single entry over the whole budget is refused outright.
        assert_eq!(
            lru.store(3, KeyKind::Galois, &[0; 101]),
            Err(KeyCacheError::EntryExceedsBudget {
                need: 101,
                budget: 100
            })
        );
        assert!(!lru.has_entry(3), "rejected upload leaves no state");
        assert_eq!(lru.resident_bytes(), 60);
    }

    #[test]
    fn lru_never_evicts_inflight_sessions() {
        let mut lru = SessionKeyLru::new(100);
        lru.store(1, KeyKind::Galois, &[0; 60]).unwrap();
        lru.begin_request(1);
        // Session 2 cannot fit without evicting 1, and 1 is protected.
        assert!(matches!(
            lru.store(2, KeyKind::Galois, &[0; 60]),
            Err(KeyCacheError::CachePressure { .. })
        ));
        assert!(lru.is_resident(1));
        lru.end_request(1);
        assert_eq!(lru.store(2, KeyKind::Galois, &[0; 60]).unwrap(), vec![1]);
    }

    #[test]
    fn lru_failed_store_leaves_prior_session_evicted_but_restorable() {
        let mut lru = SessionKeyLru::new(100);
        lru.store(1, KeyKind::Relin, &[7; 40]).unwrap();
        assert!(lru.is_resident(1));
        // Replacing the key with one that can never fit fails the
        // store...
        assert!(matches!(
            lru.store(1, KeyKind::Relin, &[0; 101]),
            Err(KeyCacheError::EntryExceedsBudget { .. })
        ));
        // ...keeps the pre-upload payload host-side but leaves the
        // session evicted — the caller drops its engine keys on this
        // path, so residency here would desynchronize cache and
        // engine...
        assert!(lru.has_entry(1));
        assert!(!lru.is_resident(1));
        assert_eq!(lru.resident_bytes(), 0);
        // ...and a restore re-seats exactly the pre-upload payload.
        let (evicted, payloads) = lru.restore(1).unwrap();
        assert!(evicted.is_empty());
        assert_eq!(payloads, vec![(KeyKind::Relin, vec![7; 40])]);
        assert!(lru.is_resident(1));
        assert_eq!(lru.resident_bytes(), 40);
    }

    #[test]
    fn lru_restore_returns_stored_payloads_in_registration_order() {
        let mut lru = SessionKeyLru::new(100);
        lru.store(1, KeyKind::Relin, &[1, 2, 3]).unwrap();
        lru.store(1, KeyKind::Galois, &[4, 5]).unwrap();
        lru.store(2, KeyKind::Galois, &[0; 97]).unwrap(); // evicts 1
        assert!(!lru.is_resident(1));
        let (evicted, payloads) = lru.restore(1).unwrap();
        assert_eq!(evicted, vec![2]);
        assert_eq!(
            payloads,
            vec![
                (KeyKind::Relin, vec![1, 2, 3]),
                (KeyKind::Galois, vec![4, 5])
            ]
        );
        assert!(lru.is_resident(1));
        // Restoring a resident session (or one with no entry) is a
        // cheap no-op.
        assert_eq!(lru.restore(1).unwrap(), (vec![], vec![]));
        assert_eq!(lru.restore(777).unwrap(), (vec![], vec![]));
    }

    #[test]
    fn lru_remove_releases_bytes() {
        let mut lru = SessionKeyLru::new(100);
        lru.store(1, KeyKind::Galois, &[0; 80]).unwrap();
        lru.remove(1);
        assert_eq!(lru.resident_bytes(), 0);
        assert_eq!(lru.resident_sessions(), 0);
        lru.store(2, KeyKind::Galois, &[0; 100]).unwrap();
        assert_eq!(lru.resident_bytes(), 100);
    }

    #[test]
    fn lru_eviction_order_is_least_recently_touched() {
        let mut lru = SessionKeyLru::new(100);
        lru.store(1, KeyKind::Galois, &[0; 40]).unwrap();
        lru.store(2, KeyKind::Galois, &[0; 40]).unwrap();
        lru.touch(1); // 2 is now the LRU victim
        assert_eq!(lru.store(3, KeyKind::Galois, &[0; 40]).unwrap(), vec![2]);
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = NetConfig::default();
        assert!(c.max_conns > 0 && c.max_queue_depth > 0);
        assert_eq!(c.max_frame_payload, MAX_FRAME_PAYLOAD);
        assert!(c.flush_on_idle);
    }
}
