//! # heax-server
//!
//! The serving layer of the HEAX reproduction — the paper's Figure 7
//! deployment promoted from an example into a subsystem. A host
//! receives serialized ciphertexts and evaluation keys from many
//! clients over a framed, versioned wire protocol
//! ([`wire`]), caches each session's keys with their Shoup tables
//! rebuilt **once** ([`session`]), batches queued requests so shared
//! work is amortized — one hoisted decomposition per rotated
//! ciphertext, one reusable key-switch scratch, limbs dispatched
//! through the `HEAX_THREADS` executor — and answers every failure
//! with a structured error frame instead of dropping the session
//! ([`server`]). Per-op and per-session counters surface as a
//! [`ServerStats`] snapshot ([`metrics`]).
//!
//! The engine is transport-agnostic: frames in, frames out. Drive it
//! inline as the tests, examples, and the `bench_server` snapshot do —
//! or serve it over real sockets with [`net`]: a hand-rolled
//! epoll-based nonblocking TCP event loop (no tokio/mio; raw Linux
//! syscalls behind the vendored `epoll` shim) that multiplexes
//! thousands of concurrent sessions onto the batch scheduler, with
//! admission-control backpressure, a DRAM-budgeted session-key LRU,
//! and per-connection failure containment.
//!
//! Every flush lowers its requests into the shared op-stream IR of
//! `heax_hw::ir` (rotation fusion is an IR pass), executes from the
//! fused stream, and — with [`HeaxServer::with_board_model`] and/or
//! [`HeaxServer::with_cluster_model`] — prices the *same* stream on a
//! modeled multi-core HEAX board or a multi-board cluster with
//! session→board key affinity, so [`ServerStats`] reports the modeled
//! cycle cost (and routing/replication behavior) of the served
//! traffic next to the measured wall time — without perturbing any
//! functional result.
//!
//! Serving degrades gracefully under faults: a seeded
//! [`heax_hw::faults::FaultPlan`] attached via
//! [`HeaxServer::with_fault_plan`] drains crashed boards from the
//! modeled cluster (sessions fail over, corrupted keys re-upload), and
//! the [`FlushPolicy`] retry/deadline machinery answers requests that
//! exhaust their budget with structured load-shed/degraded error
//! frames instead of wedging the batch.
//!
//! ```
//! use heax_ckks::serialize::{
//!     deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys,
//! };
//! use heax_ckks::{
//!     CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, GaloisKeys, ParamSet,
//!     PublicKey, SecretKey,
//! };
//! use heax_hw::board::Board;
//! use heax_server::wire::client::{self, Reply};
//! use heax_server::HeaxServer;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Client: keys, one encrypted vector, all serialized for the wire.
//! let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let pk = PublicKey::generate(&ctx, &sk, &mut rng);
//! let gks = GaloisKeys::generate(&ctx, &sk, &[1], &mut rng);
//! let enc = CkksEncoder::new(&ctx);
//! let ct = Encryptor::new(&ctx, &pk).encrypt(
//!     &enc.encode_real(&[1.0, 2.0, 3.0], ctx.params().scale(), ctx.max_level())?,
//!     &mut rng,
//! )?;
//!
//! // Server: open a session, register keys once, rotate over the wire.
//! let mut server = HeaxServer::new(&ctx, Board::stratix10())?;
//! let reply = server.handle_frame(&client::open_session()).unwrap();
//! let (session, _, _) = client::parse_reply(&reply)?;
//! server.handle_frame(&client::register_galois_keys(
//!     session,
//!     &serialize_galois_keys(&gks),
//! ));
//! assert!(server
//!     .handle_frame(&client::rotate(session, 1, &serialize_ciphertext(&ct), 1))
//!     .is_none()); // queued for the batch
//! let replies = server.flush();
//! let (_, _, reply) = client::parse_reply(&replies[0])?;
//! let Reply::Ciphertext(bytes) = reply else { panic!("expected a result") };
//! let rotated = deserialize_ciphertext(&bytes, &ctx)?;
//! let vals = enc.decode_real(&Decryptor::new(&ctx, &sk).decrypt(&rotated)?)?;
//! assert!((vals[0] - 2.0).abs() < 0.05); // slot 0 now holds old slot 1
//! # Ok(())
//! # }
//! ```
//!
//! ## The v2 wire path: seeded uploads, compressed replies
//!
//! Wire v2 (the byte-level spec is `PROTOCOL.md` at the repo root)
//! attacks the transfer-bound serving points from both directions: a
//! fresh symmetric encryption uploads *seeded* — a 32-byte seed stands
//! in for the uniform polynomial, roughly halving ingress — and the
//! `compress_reply` request flag asks the server to modulus-switch a
//! wire-returned result down to one RNS limb (decrypt-only precision):
//!
//! ```
//! use heax_ckks::serialize::{deserialize_ciphertext, serialize_seeded_ciphertext};
//! use heax_ckks::{
//!     encrypt_symmetric_seeded, CkksContext, CkksEncoder, CkksParams, Decryptor, ParamSet,
//!     SecretKey,
//! };
//! use heax_hw::board::Board;
//! use heax_server::wire::client::{self, Reply};
//! use heax_server::wire::{OpCode, Request, WireOperand};
//! use heax_server::HeaxServer;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
//! let mut rng = StdRng::seed_from_u64(9);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let enc = CkksEncoder::new(&ctx);
//! let pt = enc.encode_real(&[4.0], ctx.params().scale(), ctx.max_level())?;
//! // Seeded upload: one polynomial + 32 bytes instead of two polynomials.
//! let seeded = encrypt_symmetric_seeded(&ctx, &sk, &pt, &mut rng)?;
//! let upload = serialize_seeded_ciphertext(&seeded);
//!
//! let mut server = HeaxServer::new(&ctx, Board::stratix10())?;
//! let opened = server.handle_frame(&client::open_session()).unwrap();
//! let (session, _, _) = client::parse_reply(&opened)?;
//! let frame = client::request(session, 1, &Request {
//!     op: OpCode::Add,
//!     step: 0,
//!     compress_reply: true, // one-limb reply, please
//!     park_as: None,
//!     operands: vec![WireOperand::Inline(&upload), WireOperand::Inline(&upload)],
//! });
//! server.handle_frame(&frame);
//! let replies = server.flush();
//! let (_, _, reply) = client::parse_reply(&replies[0])?;
//! let Reply::Ciphertext(bytes) = reply else { panic!("expected a result") };
//! let result = deserialize_ciphertext(&bytes, &ctx)?;
//! assert_eq!(result.level(), 0); // exactly one limb crossed the wire back
//! let vals = enc.decode_real(&Decryptor::new(&ctx, &sk).decrypt(&result)?)?;
//! assert!((vals[0] - 8.0).abs() < 0.05); // the seeded vector added to itself
//! assert_eq!(server.stats().seeded_operands, 2);
//! assert_eq!(server.stats().compressed_replies, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod metrics;
pub mod net;
pub mod server;
pub mod session;
pub mod wire;

pub use error::{ErrorCode, ServerError};
pub use metrics::{ModeledBoardStats, ModeledClusterStats, OpStats, ServerStats, SessionStats};
pub use net::{NetConfig, NetServer, NetStats, SessionKeyLru};
pub use server::{FlushPolicy, HeaxServer};
pub use session::SessionRegistry;
pub use wire::{MessageKind, OpCode};
