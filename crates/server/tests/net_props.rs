//! Property tests for the socket runtime's two pure state machines:
//!
//! * **Frame assembly** — every valid v1/v2 frame shape from the wire
//!   fuzz corpus, concatenated and delivered byte-at-a-time and in
//!   random chunks, must come out of [`FrameAssembler`] byte-identical
//!   to the input frames, with decoded requests identical to
//!   whole-buffer decoding.
//! * **The session-key LRU** — under random interleavings of store /
//!   restore / begin / end / remove, the DRAM budget is never
//!   exceeded, a session with in-flight requests is never evicted, and
//!   a restored session always yields its original key bytes — which
//!   is what makes re-registration rebuild bit-identical Shoup tables
//!   (pinned end-to-end by the engine-level test at the bottom).
//!
//! CI runs this suite under both `HEAX_THREADS=1` and
//! `HEAX_THREADS=4`.

use std::collections::HashMap;

use heax_ckks::serialize::{serialize_ciphertext, serialize_galois_keys};
use heax_ckks::{
    CkksContext, CkksEncoder, CkksParams, Encryptor, GaloisKeys, PublicKey, SecretKey,
};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_server::net::{FrameAssembler, KeyKind, SessionKeyLru};
use heax_server::wire::client::{self, Reply};
use heax_server::wire::{self, MessageKind, OpCode, Request, WireOperand, WIRE_V1, WIRE_V2};
use heax_server::HeaxServer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One valid frame from the wire corpus: every client-side message
/// kind, both wire versions, arbitrary session/request ids and
/// payload blobs (the assembler must not care whether a payload is a
/// real ciphertext).
fn corpus_frame(version: u8, variant: usize, session: u64, request: u64, blob: &[u8]) -> Vec<u8> {
    match variant % 6 {
        0 => wire::encode_frame(version, MessageKind::OpenSession, session, request, &[]),
        1 => wire::encode_frame(
            version,
            MessageKind::RegisterRelinKey,
            session,
            request,
            blob,
        ),
        2 => wire::encode_frame(
            version,
            MessageKind::RegisterGaloisKeys,
            session,
            request,
            blob,
        ),
        3 => {
            let body = wire::encode_request(
                version,
                &Request {
                    op: OpCode::Add,
                    step: 0,
                    compress_reply: false,
                    park_as: None,
                    operands: vec![WireOperand::Inline(blob), WireOperand::Inline(blob)],
                },
            );
            wire::encode_frame(version, MessageKind::Request, session, request, &body)
        }
        4 => wire::encode_frame(version, MessageKind::CloseSession, session, request, &[]),
        _ => {
            let body = wire::encode_request(
                version,
                &Request {
                    op: OpCode::Rotate,
                    step: -3,
                    compress_reply: version == WIRE_V2,
                    park_as: Some("parked-name"),
                    operands: vec![WireOperand::Parked("x")],
                },
            );
            wire::encode_frame(version, MessageKind::Request, session, request, &body)
        }
    }
}

/// Strategy: a batch of corpus frames as `(version, variant, session,
/// request, blob)` tuples.
fn arb_corpus() -> impl Strategy<Value = Vec<(u8, usize, u64, u64, Vec<u8>)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec![WIRE_V1, WIRE_V2]),
            0usize..6,
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..48),
        ),
        1..8,
    )
}

/// Runs a fragmentation schedule over the concatenated corpus and
/// checks the assembler's output against the original frames and
/// whole-buffer decoding.
fn check_reassembly(frames: &[Vec<u8>], chunks: &mut dyn Iterator<Item = usize>) {
    let stream: Vec<u8> = frames.iter().flatten().copied().collect();
    let mut asm = FrameAssembler::new();
    let mut got = Vec::new();
    let mut off = 0;
    while off < stream.len() {
        let n = chunks.next().unwrap_or(1).clamp(1, stream.len() - off);
        asm.push(&stream[off..off + n]);
        off += n;
        while let Some(f) = asm.next_frame().expect("valid streams never error") {
            got.push(f);
        }
    }
    assert_eq!(got, frames, "reassembled frames must be byte-identical");
    assert_eq!(asm.buffered(), 0, "no residue after the last frame");
    // Decoded views are identical to whole-buffer decoding, request
    // bodies included.
    for (reassembled, original) in got.iter().zip(frames) {
        let a = wire::decode_frame(reassembled).expect("corpus frames decode");
        let b = wire::decode_frame(original).expect("corpus frames decode");
        assert_eq!(
            (a.version, a.kind, a.session, a.request, a.payload),
            (b.version, b.kind, b.session, b.request, b.payload)
        );
        if a.kind == MessageKind::Request {
            let ra = wire::decode_request(a.payload, a.version).expect("corpus bodies decode");
            let rb = wire::decode_request(b.payload, b.version).expect("corpus bodies decode");
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
    }
}

proptest! {
    /// Byte-at-a-time delivery of every corpus frame shape.
    #[test]
    fn assembler_is_exact_under_byte_at_a_time_delivery(specs in arb_corpus()) {
        let frames: Vec<Vec<u8>> = specs
            .iter()
            .map(|(v, k, s, r, blob)| corpus_frame(*v, *k, *s, *r, blob))
            .collect();
        check_reassembly(&frames, &mut std::iter::repeat(1));
    }

    /// Random chunk schedules (1..=max bytes per delivery, seeded).
    #[test]
    fn assembler_is_exact_under_random_chunk_delivery(
        specs in arb_corpus(),
        seed in 0u64..1000,
    ) {
        let frames: Vec<Vec<u8>> = specs
            .iter()
            .map(|(v, k, s, r, blob)| corpus_frame(*v, *k, *s, *r, blob))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chunks = std::iter::from_fn(move || Some(rng.gen_range(1usize..=64)));
        check_reassembly(&frames, &mut chunks);
    }

    /// Random interleavings of the LRU's whole API surface hold the
    /// three invariants: hard budget, in-flight protection, and
    /// byte-exact restores.
    #[test]
    fn key_lru_invariants_hold_under_random_interleavings(
        budget in 20u64..200,
        ops in prop::collection::vec(
            (0usize..6, 0u64..6, 0usize..50),
            1..40,
        ),
    ) {
        // Host-side truth: per session, the relin and galois payloads
        // stored, and how many requests it has in flight.
        type KeySlots = (Option<Vec<u8>>, Option<Vec<u8>>);
        let mut lru = SessionKeyLru::new(budget);
        let mut mirror: HashMap<u64, KeySlots> = HashMap::new();
        let mut inflight: HashMap<u64, u64> = HashMap::new();

        for (op, session, size) in ops {
            let payload = vec![(session as u8) ^ (size as u8); size];
            // Sessions protected by in-flight requests before this op.
            let protected: Vec<u64> = inflight
                .iter()
                .filter(|&(&s, &n)| n > 0 && lru.is_resident(s))
                .map(|(&s, _)| s)
                .collect();
            match op {
                0 | 1 => {
                    let kind = if op == 0 { KeyKind::Relin } else { KeyKind::Galois };
                    match lru.store(session, kind, &payload) {
                        Ok(_) => {
                            let entry = mirror.entry(session).or_default();
                            let slot = if op == 0 { &mut entry.0 } else { &mut entry.1 };
                            *slot = Some(payload.clone());
                            prop_assert!(lru.is_resident(session));
                        }
                        Err(_) => {
                            // Rejected uploads leave the prior payloads
                            // untouched but the target session evicted
                            // (the caller drops its engine-side keys on
                            // this path and re-seats them via restore).
                            prop_assert!(!lru.is_resident(session));
                        }
                    }
                }
                2 => {
                    if let Ok((_, payloads)) = lru.restore(session) {
                        if let Some((rlk, gks)) = mirror.get(&session) {
                            if !lru.is_resident(session) {
                                // Entry-less session: nothing restored.
                                prop_assert!(payloads.is_empty());
                            } else if !payloads.is_empty() {
                                let mut expect = Vec::new();
                                if let Some(b) = rlk {
                                    expect.push((KeyKind::Relin, b.clone()));
                                }
                                if let Some(b) = gks {
                                    expect.push((KeyKind::Galois, b.clone()));
                                }
                                prop_assert_eq!(
                                    payloads, expect,
                                    "restores must be byte-exact"
                                );
                            }
                        }
                    }
                }
                3 => {
                    if lru.has_entry(session) {
                        *inflight.entry(session).or_default() += 1;
                    }
                    lru.begin_request(session);
                }
                4 => {
                    if let Some(n) = inflight.get_mut(&session) {
                        *n = n.saturating_sub(1);
                    }
                    lru.end_request(session);
                }
                _ => {
                    lru.remove(session);
                    mirror.remove(&session);
                    inflight.remove(&session);
                }
            }
            // Invariant 1: the budget is a hard bound, always.
            prop_assert!(
                lru.resident_bytes() <= lru.budget(),
                "resident {} over budget {}",
                lru.resident_bytes(),
                lru.budget()
            );
            // Invariant 2: no protected session lost residency, unless
            // this op explicitly removed or re-stored that session.
            for &p in &protected {
                let touched_directly = p == session && matches!(op, 0 | 1 | 5);
                if !touched_directly {
                    prop_assert!(
                        lru.is_resident(p),
                        "session {} evicted while in flight",
                        p
                    );
                }
            }
            // Invariant 3: billed bytes equal the sum over resident
            // sessions of their mirrored payload sizes.
            let billed: u64 = mirror
                .iter()
                .filter(|&(&s, _)| lru.is_resident(s))
                .map(|(_, (r, g))| {
                    r.as_ref().map_or(0, |b| b.len() as u64)
                        + g.as_ref().map_or(0, |b| b.len() as u64)
                })
                .sum();
            prop_assert_eq!(billed, lru.resident_bytes(), "billing drift");
        }
    }
}

// ---------------------------------------------------------------------
// Engine-level bit-identity: the end of satellite 3's chain.
// ---------------------------------------------------------------------

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

fn system(ctx: &CkksContext) -> HeaxSystem<'_> {
    let accel = HeaxAccelerator::with_arch(
        ctx,
        Board::stratix10(),
        KeySwitchArch {
            n: 64,
            k: 3,
            nc_intt0: 4,
            m0: 2,
            nc_ntt0: 4,
            num_dyad: 3,
            nc_dyad: 4,
            nc_intt1: 2,
            nc_ntt1: 4,
            nc_ms: 2,
        },
        NttModuleConfig::new(64, 4).unwrap(),
        MultModuleConfig::new(64, 8).unwrap(),
    )
    .unwrap();
    HeaxSystem::new(accel)
}

/// Evicting a session's deserialized keys and re-registering them from
/// the same serialized bytes must reproduce the same reply bytes for
/// the same request — the re-built Shoup tables are bit-identical, so
/// nothing downstream can tell an evict/re-register cycle happened.
#[test]
fn evict_and_reregister_reproduces_replies_bit_identically() {
    let c = ctx();
    let mut server = HeaxServer::with_system(&c, system(&c));
    let mut rng = StdRng::seed_from_u64(42);
    let sk = SecretKey::generate(&c, &mut rng);
    let pk = PublicKey::generate(&c, &sk, &mut rng);
    let gks = GaloisKeys::generate(&c, &sk, &[1], &mut rng);
    let enc = CkksEncoder::new(&c);
    let ct = Encryptor::new(&c, &pk)
        .encrypt(
            &enc.encode_real(&[1.0, 2.0], c.params().scale(), c.max_level())
                .unwrap(),
            &mut rng,
        )
        .unwrap();
    let gks_bytes = serialize_galois_keys(&gks);
    let ct_bytes = serialize_ciphertext(&ct);

    let opened = server.handle_frame(&client::open_session()).unwrap();
    let (session, _, _) = client::parse_reply(&opened).unwrap();
    server.handle_frame(&client::register_galois_keys(session, &gks_bytes));

    assert!(server
        .handle_frame(&client::rotate(session, 7, &ct_bytes, 1))
        .is_none());
    let first = server.flush().remove(0);

    // Evict, prove the keys are really gone, then re-register the same
    // bytes.
    server.evict_session_keys(session).unwrap();
    assert!(server
        .handle_frame(&client::rotate(session, 7, &ct_bytes, 1))
        .is_none());
    let while_evicted = server.flush().remove(0);
    let (_, _, reply) = client::parse_reply(&while_evicted).unwrap();
    assert!(
        matches!(reply, Reply::Error { .. }),
        "rotation without keys must fail structurally"
    );
    server.handle_frame(&client::register_galois_keys(session, &gks_bytes));

    assert!(server
        .handle_frame(&client::rotate(session, 7, &ct_bytes, 1))
        .is_none());
    let second = server.flush().remove(0);
    assert_eq!(
        first, second,
        "evict + re-register must be bit-transparent, Shoup tables included"
    );

    let stats = server.stats();
    assert_eq!(stats.key_evictions, 1);
    assert_eq!(stats.key_reregistrations, 1);
}
