//! Loopback proof of the socket runtime: real TCP connections over
//! 127.0.0.1, scripted fragmentation and disconnect schedules, and a
//! byte-identical in-process [`HeaxServer`] mirror.
//!
//! The harness is single-threaded and deterministic: client sockets
//! are nonblocking and the server is stepped explicitly with
//! [`NetServer::poll`], so every interleaving in these tests is the
//! one the test scripted — no sleeps, no races. The mirror server is
//! fed the exact same frames in the exact same arrival order, flushed
//! at the same boundaries, so replies must match **byte for byte**,
//! and decrypt-verification closes the loop end to end.
//!
//! CI runs this suite under both `HEAX_THREADS=1` and
//! `HEAX_THREADS=4`.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

use heax_ckks::serialize::{deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys};
use heax_ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, GaloisKeys, PublicKey,
    SecretKey,
};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::faults::{FaultKind, FaultPlan};
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_server::net::{FrameAssembler, NetConfig, NetServer};
use heax_server::wire::client::{self, Reply};
use heax_server::wire::{OpCode, Request, WireOperand};
use heax_server::{ErrorCode, HeaxServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

fn system(ctx: &CkksContext) -> HeaxSystem<'_> {
    let accel = HeaxAccelerator::with_arch(
        ctx,
        Board::stratix10(),
        KeySwitchArch {
            n: 64,
            k: 3,
            nc_intt0: 4,
            m0: 2,
            nc_ntt0: 4,
            num_dyad: 3,
            nc_dyad: 4,
            nc_intt1: 2,
            nc_ntt1: 4,
            nc_ms: 2,
        },
        NttModuleConfig::new(64, 4).unwrap(),
        MultModuleConfig::new(64, 8).unwrap(),
    )
    .unwrap();
    HeaxSystem::new(accel)
}

/// A [`NetConfig`] under which the tests own every flush boundary, so
/// the mirror server can be flushed at the same instants.
fn manual_flush() -> NetConfig {
    NetConfig {
        flush_threshold: usize::MAX,
        flush_on_idle: false,
        ..NetConfig::default()
    }
}

/// One simulated client: its own keys and a sample ciphertext.
struct Client {
    sk: SecretKey,
    gks: GaloisKeys,
    ct: Ciphertext,
    vals: Vec<f64>,
}

fn client(ctx: &CkksContext, seed: u64, steps: &[i64]) -> Client {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(ctx, &mut rng);
    let pk = PublicKey::generate(ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(ctx, &sk, steps, &mut rng);
    let enc = CkksEncoder::new(ctx);
    let vals: Vec<f64> = (0..ctx.n() / 2)
        .map(|i| (i as f64) * 0.25 - 2.0 + seed as f64 * 0.125)
        .collect();
    let ct = Encryptor::new(ctx, &pk)
        .encrypt(
            &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                .unwrap(),
            &mut rng,
        )
        .unwrap();
    Client { sk, gks, ct, vals }
}

fn decrypt(ctx: &CkksContext, sk: &SecretKey, ct: &Ciphertext) -> Vec<f64> {
    let enc = CkksEncoder::new(ctx);
    enc.decode_real(&Decryptor::new(ctx, sk).decrypt(ct).unwrap())
        .unwrap()
}

/// A client-side loopback connection: nonblocking socket plus a frame
/// assembler for the replies coming back.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    replies: Vec<Vec<u8>>,
}

impl Conn {
    /// Connects and steps the server until the connection is accepted.
    fn connect(net: &mut NetServer<'_>) -> Conn {
        let before = net.connections();
        let stream = TcpStream::connect(net.local_addr().unwrap()).unwrap();
        stream.set_nonblocking(true).unwrap();
        for _ in 0..100 {
            net.poll(10).unwrap();
            if net.connections() > before {
                return Conn {
                    stream,
                    asm: FrameAssembler::new(),
                    replies: Vec::new(),
                };
            }
        }
        panic!("server never accepted the connection");
    }

    /// Writes `bytes` in chunks of at most `chunk` bytes, stepping the
    /// server between chunks so the runtime sees every fragmentation
    /// boundary the schedule dictates.
    fn send_chunked(&mut self, net: &mut NetServer<'_>, bytes: &[u8], chunk: usize) {
        let target = net.stats().bytes_in + bytes.len() as u64;
        for piece in bytes.chunks(chunk.max(1)) {
            let mut off = 0;
            while off < piece.len() {
                match self.stream.write(&piece[off..]) {
                    Ok(n) => off += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        net.poll(1).unwrap();
                    }
                    Err(e) => panic!("client write failed: {e}"),
                }
            }
            net.poll(0).unwrap();
            self.drain(net);
        }
        // Loopback writes are not synchronously visible to epoll; step
        // the server until every sent byte has actually been ingested.
        for _ in 0..500 {
            if net.stats().bytes_in >= target {
                return;
            }
            net.poll(1).unwrap();
            self.drain(net);
        }
        panic!("server never ingested the sent bytes");
    }

    /// Reads whatever the server has written back, assembling frames.
    fn drain(&mut self, net: &mut NetServer<'_>) {
        let _ = net;
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => self.asm.push(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        while let Some(frame) = self.asm.next_frame().unwrap() {
            self.replies.push(frame);
        }
    }

    /// Steps the server until this connection has `n` replies total.
    fn recv_until(&mut self, net: &mut NetServer<'_>, n: usize) {
        for _ in 0..500 {
            if self.replies.len() >= n {
                return;
            }
            net.poll(1).unwrap();
            self.drain(net);
        }
        panic!(
            "expected {n} replies, got {} after 500 polls",
            self.replies.len()
        );
    }

    /// Sends a frame whole and waits for one immediate reply.
    fn roundtrip(&mut self, net: &mut NetServer<'_>, frame: &[u8]) -> Vec<u8> {
        let want = self.replies.len() + 1;
        self.send_chunked(net, frame, frame.len());
        self.recv_until(net, want);
        self.replies.last().unwrap().clone()
    }

    /// Opens a session over the socket, returning its id.
    fn open_session(&mut self, net: &mut NetServer<'_>) -> u64 {
        let reply = self.roundtrip(net, &client::open_session());
        let (session, _, reply) = client::parse_reply(&reply).unwrap();
        assert_eq!(reply, Reply::SessionOpened);
        session
    }
}

/// Keys replies by `(session, request)` for order-insensitive
/// byte-identity comparison against the mirror.
fn keyed(replies: &[Vec<u8>]) -> BTreeMap<(u64, u64), Vec<u8>> {
    replies
        .iter()
        .map(|r| {
            let f = heax_server::wire::decode_frame(r).unwrap();
            ((f.session, f.request), r.clone())
        })
        .collect()
}

fn expect_ciphertext(ctx: &CkksContext, frame: &[u8]) -> Ciphertext {
    let (_, _, reply) = client::parse_reply(frame).unwrap();
    match reply {
        Reply::Ciphertext(bytes) => deserialize_ciphertext(&bytes, ctx).unwrap(),
        other => panic!("expected a ciphertext reply, got {other:?}"),
    }
}

/// Rotation moves slot `i+step` into slot `i`.
fn assert_rotated(vals: &[f64], rotated: &[f64], step: usize) {
    let n = vals.len();
    for i in 0..n {
        assert!(
            (rotated[i] - vals[(i + step) % n]).abs() < 0.05,
            "slot {i}: {} != {}",
            rotated[i],
            vals[(i + step) % n]
        );
    }
}

/// The acceptance-criterion test: two connections, every byte of every
/// frame delivered **one byte at a time** (connection B in 3-byte
/// chunks), replies byte-identical to an in-process mirror server fed
/// the same frames in the same order, and decrypt-verified.
#[test]
fn byte_at_a_time_fragmentation_matches_in_process_server() {
    let c = ctx();
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        manual_flush(),
    )
    .unwrap();
    let mut mirror = HeaxServer::with_system(&c, system(&c));

    let ca = client(&c, 1, &[1]);
    let cb = client(&c, 2, &[2]);
    let mut conn_a = Conn::connect(&mut net);
    let mut conn_b = Conn::connect(&mut net);

    // Scripted frame schedule, connection A first, then B — the mirror
    // sees the identical order.
    let mut mirror_replies = Vec::new();
    let mut drive = |net: &mut NetServer<'_>,
                     mirror: &mut HeaxServer<'_>,
                     conn: &mut Conn,
                     frames: &[Vec<u8>],
                     chunk: usize| {
        for frame in frames {
            conn.send_chunked(net, frame, chunk);
            if let Some(r) = mirror.handle_frame(frame) {
                mirror_replies.push(r);
            }
        }
    };

    // Session ids are assigned in arrival order on both servers.
    let a_frames = vec![client::open_session()];
    drive(&mut net, &mut mirror, &mut conn_a, &a_frames, 1);
    conn_a.recv_until(&mut net, 1);
    let b_frames = vec![client::open_session()];
    drive(&mut net, &mut mirror, &mut conn_b, &b_frames, 3);
    conn_b.recv_until(&mut net, 1);
    let (sa, _, _) = client::parse_reply(&conn_a.replies[0]).unwrap();
    let (sb, _, _) = client::parse_reply(&conn_b.replies[0]).unwrap();
    assert_ne!(sa, sb);

    let a_frames = vec![
        client::register_galois_keys(sa, &serialize_galois_keys(&ca.gks)),
        client::rotate(sa, 10, &serialize_ciphertext(&ca.ct), 1),
        client::rotate(sa, 11, &serialize_ciphertext(&ca.ct), 1),
    ];
    drive(&mut net, &mut mirror, &mut conn_a, &a_frames, 1);
    let b_frames = vec![
        client::register_galois_keys(sb, &serialize_galois_keys(&cb.gks)),
        client::rotate(sb, 20, &serialize_ciphertext(&cb.ct), 2),
        client::rotate(sb, 21, &serialize_ciphertext(&cb.ct), 2),
    ];
    drive(&mut net, &mut mirror, &mut conn_b, &b_frames, 3);
    conn_a.recv_until(&mut net, 2); // open + key ack
    conn_b.recv_until(&mut net, 2);

    // Both servers now hold the same four queued rotations.
    assert_eq!(net.pending_replies(), 4);
    assert_eq!(net.server().queue_depth(), 4);
    assert_eq!(mirror.queue_depth(), 4);
    mirror_replies.extend(mirror.flush());
    net.flush_now();
    conn_a.recv_until(&mut net, 4);
    conn_b.recv_until(&mut net, 4);

    // Byte-identical to the in-process mirror, reply for reply.
    let mut socket_side = conn_a.replies.clone();
    socket_side.extend(conn_b.replies.clone());
    assert_eq!(keyed(&socket_side), keyed(&mirror_replies));

    // And the results are real: decrypt-verify every rotation.
    for (conn, cl, step, ids) in [
        (&conn_a, &ca, 1usize, [10u64, 11]),
        (&conn_b, &cb, 2, [20, 21]),
    ] {
        for (reply, id) in conn.replies[2..].iter().zip(ids) {
            let (_, request, _) = client::parse_reply(reply).unwrap();
            assert_eq!(request, id);
            let rotated = expect_ciphertext(&c, reply);
            assert_rotated(&cl.vals, &decrypt(&c, &cl.sk, &rotated), step);
        }
    }

    let stats = net.stats();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.frames_in, 8);
    assert_eq!(stats.hostile_drops, 0);
    assert!(
        stats.partial_frame_reads > 0,
        "byte-at-a-time delivery must exercise partial-frame reads"
    );
}

/// The second acceptance criterion: a connection dies mid-run — after
/// queueing work, before the flush — and its replies are orphaned
/// without disturbing the co-scheduled survivor, whose replies stay
/// byte-identical to the mirror.
#[test]
fn mid_run_disconnect_orphans_only_the_dead_connections_replies() {
    let c = ctx();
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        manual_flush(),
    )
    .unwrap();
    let mut mirror = HeaxServer::with_system(&c, system(&c));

    let ca = client(&c, 3, &[1]);
    let cb = client(&c, 4, &[1]);
    let mut survivor = Conn::connect(&mut net);
    let mut doomed = Conn::connect(&mut net);

    let sa = survivor.open_session(&mut net);
    let sb = doomed.open_session(&mut net);
    let mut mirror_replies = Vec::new();
    let mut feed = |mirror: &mut HeaxServer<'_>, frame: &[u8]| {
        if let Some(r) = mirror.handle_frame(frame) {
            mirror_replies.push(r);
        }
    };
    feed(&mut mirror, &client::open_session());
    feed(&mut mirror, &client::open_session());

    for (conn, cl, s, id) in [(&mut survivor, &ca, sa, 30u64), (&mut doomed, &cb, sb, 40)] {
        let frames = [
            client::register_galois_keys(s, &serialize_galois_keys(&cl.gks)),
            client::rotate(s, id, &serialize_ciphertext(&cl.ct), 1),
        ];
        for f in &frames {
            conn.send_chunked(&mut net, f, 64);
            feed(&mut mirror, f);
        }
    }
    assert_eq!(net.pending_replies(), 2);

    // The doomed peer hangs up mid-run: half a frame still in flight.
    let half = client::rotate(sb, 41, &serialize_ciphertext(&cb.ct), 1);
    let mut wrote = 0;
    while wrote < half.len() / 2 {
        wrote += doomed.stream.write(&half[wrote..half.len() / 2]).unwrap();
    }
    drop(doomed);
    for _ in 0..50 {
        net.poll(1).unwrap();
        if net.connections() == 1 {
            break;
        }
    }
    assert_eq!(net.connections(), 1, "EOF must reap the dead connection");

    // Flush: both queued rotations execute; only the survivor's reply
    // routes.
    mirror_replies.extend(mirror.flush());
    net.flush_now();
    survivor.recv_until(&mut net, 3);

    let stats = net.stats();
    assert_eq!(stats.disconnects, 1);
    assert_eq!(stats.orphaned_replies, 1);
    assert_eq!(stats.replies_routed, 1);

    // The survivor's rotation is byte-identical to the mirror's reply
    // for the same (session, request) — the dead peer changed nothing.
    let mirror_keyed = keyed(&mirror_replies);
    let survivor_rotate = survivor.replies.last().unwrap();
    assert_eq!(mirror_keyed[&(sa, 30)], *survivor_rotate);
    let rotated = expect_ciphertext(&c, survivor_rotate);
    assert_rotated(&ca.vals, &decrypt(&c, &ca.sk, &rotated), 1);

    // The runtime is still serving: a fresh connection works.
    let mut fresh = Conn::connect(&mut net);
    assert_ne!(fresh.open_session(&mut net), 0);
}

/// A hostile connection (garbage bytes where a frame should start) is
/// answered with a structured `Malformed` error frame and dropped;
/// a well-framed-but-invalid frame is answered and the connection
/// lives.
#[test]
fn hostile_bytes_get_an_error_frame_then_the_axe() {
    let c = ctx();
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        manual_flush(),
    )
    .unwrap();

    // Well-framed, bad version: answered, connection survives.
    let mut sloppy = Conn::connect(&mut net);
    let mut bad_version = client::open_session();
    bad_version[4] = 99;
    let reply = sloppy.roundtrip(&mut net, &bad_version);
    let (_, _, parsed) = client::parse_reply(&reply).unwrap();
    assert!(matches!(parsed, Reply::Error { code, .. } if code == ErrorCode::Malformed));
    assert_eq!(net.connections(), 1);
    assert_eq!(net.stats().hostile_drops, 0);

    // Unframeable garbage: one error frame, then EOF.
    let mut hostile = Conn::connect(&mut net);
    hostile
        .stream
        .write_all(b"this is not a HEAW frame at all, not even close")
        .unwrap();
    for _ in 0..50 {
        net.poll(1).unwrap();
        hostile.drain(&mut net);
        if net.connections() == 1 {
            break;
        }
    }
    assert_eq!(net.connections(), 1, "hostile connection must be dropped");
    assert_eq!(net.stats().hostile_drops, 1);
    assert_eq!(hostile.replies.len(), 1, "last words: a structured error");
    let (_, _, parsed) = client::parse_reply(&hostile.replies[0]).unwrap();
    assert!(matches!(parsed, Reply::Error { code, .. } if code == ErrorCode::Malformed));

    // The co-resident connection is untouched and still served.
    assert_ne!(sloppy.open_session(&mut net), 0);
}

/// Requests past the admission bound are answered immediately with the
/// same structured `LoadShed` error the flush-policy deadline machinery
/// uses; admitted requests are unaffected.
#[test]
fn admission_bound_sheds_with_structured_loadshed_frames() {
    let c = ctx();
    let config = NetConfig {
        max_queue_depth: 2,
        ..manual_flush()
    };
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        config,
    )
    .unwrap();
    let ca = client(&c, 5, &[1]);
    let mut conn = Conn::connect(&mut net);
    let s = conn.open_session(&mut net);
    conn.roundtrip(
        &mut net,
        &client::register_galois_keys(s, &serialize_galois_keys(&ca.gks)),
    );

    let ct_bytes = serialize_ciphertext(&ca.ct);
    conn.send_chunked(&mut net, &client::rotate(s, 1, &ct_bytes, 1), 4096);
    conn.send_chunked(&mut net, &client::rotate(s, 2, &ct_bytes, 1), 4096);
    assert_eq!(net.pending_replies(), 2);

    // Third request: queue is at the bound — shed at the door.
    let shed = conn.roundtrip(&mut net, &client::rotate(s, 3, &ct_bytes, 1));
    let (_, request, parsed) = client::parse_reply(&shed).unwrap();
    assert_eq!(request, 3);
    assert!(matches!(parsed, Reply::Error { code, .. } if code == ErrorCode::LoadShed));
    assert_eq!(net.stats().admission_sheds, 1);
    assert_eq!(net.pending_replies(), 2, "shed request never queued");

    // The admitted requests still execute and verify.
    net.flush_now();
    conn.recv_until(&mut net, 5);
    for reply in &conn.replies[3..] {
        let rotated = expect_ciphertext(&c, reply);
        assert_rotated(&ca.vals, &decrypt(&c, &ca.sk, &rotated), 1);
    }
}

/// A peer that triggers more reply bytes than the runtime will buffer
/// (a reader that never drains) is dropped; a small-reply co-tenant is
/// served normally.
#[test]
fn stalled_reader_is_dropped_without_disturbing_cotenants() {
    let c = ctx();
    let config = NetConfig {
        max_write_buffer: 512, // acks fit; a full ciphertext reply cannot
        ..manual_flush()
    };
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        config,
    )
    .unwrap();
    let ca = client(&c, 6, &[1]);
    let cb = client(&c, 7, &[1]);

    let mut stalled = Conn::connect(&mut net);
    let mut parker = Conn::connect(&mut net);
    let ss = stalled.open_session(&mut net);
    let sp = parker.open_session(&mut net);
    stalled.roundtrip(
        &mut net,
        &client::register_galois_keys(ss, &serialize_galois_keys(&ca.gks)),
    );
    parker.roundtrip(
        &mut net,
        &client::register_galois_keys(sp, &serialize_galois_keys(&cb.gks)),
    );

    // The stalled peer asks for a full ciphertext back; the parker asks
    // for a tiny parked-handle ack.
    stalled.send_chunked(
        &mut net,
        &client::rotate(ss, 1, &serialize_ciphertext(&ca.ct), 1),
        4096,
    );
    let park = client::request(
        sp,
        2,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: Some("kept"),
            operands: vec![WireOperand::Inline(&serialize_ciphertext(&cb.ct))],
        },
    );
    parker.send_chunked(&mut net, &park, 4096);
    assert_eq!(net.pending_replies(), 2);

    net.flush_now();
    for _ in 0..50 {
        net.poll(1).unwrap();
        parker.drain(&mut net);
        if net.connections() == 1 {
            break;
        }
    }

    let stats = net.stats();
    assert_eq!(
        stats.overflow_drops, 1,
        "oversized reply burst drops the peer"
    );
    assert_eq!(stats.orphaned_replies, 1);
    assert_eq!(net.connections(), 1);

    // The parker got its ack and its result is really parked.
    parker.recv_until(&mut net, 3);
    let (_, _, parsed) = client::parse_reply(parker.replies.last().unwrap()).unwrap();
    assert!(matches!(parsed, Reply::Parked(name) if name == "kept"));
    assert_eq!(net.server_mut().stats().parked_entries, 1);
}

/// The DRAM-budgeted key LRU over real sockets: with room for only one
/// resident session, two sessions alternating rotations force
/// evict/restore cycles — every reply still decrypt-verifies, repeat
/// requests are byte-identical across an evict/restore cycle, and the
/// eviction/re-registration traffic is billed in both stats layers.
#[test]
fn session_key_lru_evicts_and_restores_over_sockets() {
    let c = ctx();
    let ca = client(&c, 8, &[1]);
    let cb = client(&c, 9, &[1]);
    let gks_a = serialize_galois_keys(&ca.gks);
    let gks_b = serialize_galois_keys(&cb.gks);
    assert_eq!(gks_a.len(), gks_b.len());
    // Budget: one session's keys fit, two sessions' cannot.
    let config = NetConfig {
        key_cache_budget: gks_a.len() as u64 + gks_a.len() as u64 / 2,
        ..manual_flush()
    };
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        config,
    )
    .unwrap();

    let mut conn_a = Conn::connect(&mut net);
    let mut conn_b = Conn::connect(&mut net);
    let sa = conn_a.open_session(&mut net);
    let sb = conn_b.open_session(&mut net);
    conn_a.roundtrip(&mut net, &client::register_galois_keys(sa, &gks_a));
    assert!(net.key_cache().is_resident(sa));
    conn_b.roundtrip(&mut net, &client::register_galois_keys(sb, &gks_b));
    assert!(net.key_cache().is_resident(sb));
    assert!(!net.key_cache().is_resident(sa), "B's upload evicted A");

    let ct_a = serialize_ciphertext(&ca.ct);
    let ct_b = serialize_ciphertext(&cb.ct);
    // A's request restores A (evicting B); B's request restores B.
    // Repeating request id 100 after a full evict/restore cycle must
    // reproduce the reply byte for byte — the restored keys are the
    // same key material, Shoup tables and all.
    let round = |net: &mut NetServer<'_>,
                 conn: &mut Conn,
                 session: u64,
                 id: u64,
                 bytes: &[u8]|
     -> Vec<u8> {
        conn.send_chunked(net, &client::rotate(session, id, bytes, 1), 4096);
        net.flush_now();
        let want = conn.replies.len() + 1;
        conn.recv_until(net, want);
        conn.replies.last().unwrap().clone()
    };
    let first = round(&mut net, &mut conn_a, sa, 100, &ct_a);
    assert!(net.key_cache().is_resident(sa));
    assert!(!net.key_cache().is_resident(sb));
    let b_reply = round(&mut net, &mut conn_b, sb, 200, &ct_b);
    assert!(net.key_cache().is_resident(sb));
    let second = round(&mut net, &mut conn_a, sa, 100, &ct_a);
    assert_eq!(first, second, "evict/restore must be bit-transparent");

    let rotated = expect_ciphertext(&c, &second);
    assert_rotated(&ca.vals, &decrypt(&c, &ca.sk, &rotated), 1);
    let rotated_b = expect_ciphertext(&c, &b_reply);
    assert_rotated(&cb.vals, &decrypt(&c, &cb.sk, &rotated_b), 1);

    let net_stats = net.stats();
    assert!(net_stats.key_evictions >= 3);
    assert!(net_stats.key_restores >= 3);
    let inner = net.server_mut().stats();
    assert!(inner.key_evictions >= 3);
    assert!(inner.key_reregistrations >= 3);
    assert!(
        net.key_cache().resident_bytes() <= net.key_cache().budget(),
        "the DRAM budget is a hard bound"
    );
}

/// Satellite 2 — chaos: a seeded [`FaultPlan`] (modeled board crash
/// mid-run) composed with scripted socket failures (mid-frame
/// disconnect, connect-then-silence). Surviving sessions
/// decrypt-verify, and both stats layers stay consistent.
#[test]
fn fault_plan_composed_with_socket_chaos() {
    let c = ctx();
    let inner = HeaxServer::with_system(&c, system(&c))
        .with_cluster_model(2, 2)
        .unwrap()
        .with_fault_plan(FaultPlan::new().with_event(0, 1, FaultKind::BoardCrash));
    let mut net = NetServer::bind("127.0.0.1:0", inner, manual_flush()).unwrap();

    let ch = client(&c, 10, &[1]);
    let cm = client(&c, 11, &[1]);
    let mut healthy = Conn::connect(&mut net);
    let mut mid_frame = Conn::connect(&mut net);
    let silent = Conn::connect(&mut net); // connects, never speaks

    let sh = healthy.open_session(&mut net);
    let sm = mid_frame.open_session(&mut net);
    healthy.roundtrip(
        &mut net,
        &client::register_galois_keys(sh, &serialize_galois_keys(&ch.gks)),
    );
    mid_frame.roundtrip(
        &mut net,
        &client::register_galois_keys(sm, &serialize_galois_keys(&cm.gks)),
    );

    // Both queue a rotation; the chaos peer dies with a second frame
    // half-sent.
    healthy.send_chunked(
        &mut net,
        &client::rotate(sh, 1, &serialize_ciphertext(&ch.ct), 1),
        7,
    );
    mid_frame.send_chunked(
        &mut net,
        &client::rotate(sm, 2, &serialize_ciphertext(&cm.ct), 1),
        7,
    );
    let torn = client::rotate(sm, 3, &serialize_ciphertext(&cm.ct), 1);
    mid_frame.stream.write_all(&torn[..torn.len() / 3]).unwrap();
    drop(mid_frame);
    for _ in 0..50 {
        net.poll(1).unwrap();
        if net.connections() == 2 {
            break;
        }
    }

    // Flush under the board crash: every queued request still executes
    // (failover), the dead peer's reply is orphaned, the survivor's
    // decrypt-verifies.
    net.flush_now();
    healthy.recv_until(&mut net, 3);
    let rotated = expect_ciphertext(&c, healthy.replies.last().unwrap());
    assert_rotated(&ch.vals, &decrypt(&c, &ch.sk, &rotated), 1);

    let net_stats = net.stats();
    assert_eq!(net_stats.disconnects, 1);
    assert_eq!(net_stats.orphaned_replies, 1);
    assert_eq!(net_stats.replies_routed, 1);
    assert_eq!(net.connections(), 2, "healthy + silent are still here");

    let stats = net.server_mut().stats();
    let cluster = stats.cluster.expect("cluster model attached");
    assert_eq!(cluster.boards, 2);
    assert_eq!(cluster.boards_alive, 1, "the fault plan crashed board 0");
    assert!(
        cluster.failovers + cluster.re_replications + cluster.routing_misses > 0,
        "the surviving board must have (re)replicated session keys"
    );
    assert_eq!(stats.batched_requests, 2, "both rotations executed");
    drop(silent);
}

/// Auto-flush: with `flush_on_idle`, a quiet poll turn drains the
/// queue without anyone calling `flush_now`; with a small
/// `flush_threshold`, bursts flush as soon as the threshold is hit.
#[test]
fn auto_flush_drains_the_queue_without_manual_flushes() {
    let c = ctx();
    let config = NetConfig {
        flush_threshold: 2,
        flush_on_idle: true,
        ..NetConfig::default()
    };
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        config,
    )
    .unwrap();
    let ca = client(&c, 12, &[1]);
    let mut conn = Conn::connect(&mut net);
    let s = conn.open_session(&mut net);
    conn.roundtrip(
        &mut net,
        &client::register_galois_keys(s, &serialize_galois_keys(&ca.gks)),
    );

    let ct_bytes = serialize_ciphertext(&ca.ct);
    // One lone request: the idle turn flushes it.
    conn.send_chunked(&mut net, &client::rotate(s, 1, &ct_bytes, 1), 4096);
    conn.recv_until(&mut net, 3);
    // A burst of two: the threshold flushes them.
    conn.send_chunked(&mut net, &client::rotate(s, 2, &ct_bytes, 1), 4096);
    conn.send_chunked(&mut net, &client::rotate(s, 3, &ct_bytes, 1), 4096);
    conn.recv_until(&mut net, 5);

    for reply in &conn.replies[2..] {
        let rotated = expect_ciphertext(&c, reply);
        assert_rotated(&ca.vals, &decrypt(&c, &ca.sk, &rotated), 1);
    }
    assert!(net.stats().flushes >= 2);
    assert_eq!(net.pending_replies(), 0);
}

/// Fragmentation schedules driven by a seeded RNG: random chunk sizes
/// over one connection must be invisible to the protocol layer.
#[test]
fn random_chunk_schedules_are_invisible_to_the_protocol() {
    let c = ctx();
    let mut net = NetServer::bind(
        "127.0.0.1:0",
        HeaxServer::with_system(&c, system(&c)),
        manual_flush(),
    )
    .unwrap();
    let ca = client(&c, 13, &[1]);
    let mut conn = Conn::connect(&mut net);
    let s = conn.open_session(&mut net);

    let mut rng = StdRng::seed_from_u64(1313);
    let frames = [
        client::register_galois_keys(s, &serialize_galois_keys(&ca.gks)),
        client::rotate(s, 1, &serialize_ciphertext(&ca.ct), 1),
        client::rotate(s, 2, &serialize_ciphertext(&ca.ct), 1),
    ];
    // One interleaved byte stream, cut at random points.
    let stream: Vec<u8> = frames.iter().flatten().copied().collect();
    let mut off = 0;
    while off < stream.len() {
        let chunk = rng.gen_range(1..=97.min(stream.len() - off));
        conn.send_chunked(&mut net, &stream[off..off + chunk], chunk);
        off += chunk;
    }
    conn.recv_until(&mut net, 2); // open + key ack
    assert_eq!(net.pending_replies(), 2);
    net.flush_now();
    conn.recv_until(&mut net, 4);
    for reply in &conn.replies[2..] {
        let rotated = expect_ciphertext(&c, reply);
        assert_rotated(&ca.vals, &decrypt(&c, &ca.sk, &rotated), 1);
    }
}
