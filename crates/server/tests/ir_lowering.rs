//! IR-layer tests for the server's lower → fuse pipeline, exercised
//! **without** any board or cluster model attached: lowering queued
//! requests into the shared `heax_hw::ir` op stream is a pure
//! inspection ([`HeaxServer::queued_stream`] / `queued_plan`), so its
//! shape — kinds, operand placement, identity ids, dependency edges,
//! hoisted groups — is unit-testable on its own. Also pins two batch
//! properties: rotation fusion is order-insensitive across session
//! interleavings, and per-session modeled cycles accumulate across
//! flushes.

use heax_ckks::serialize::{serialize_ciphertext, serialize_galois_keys};
use heax_ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksParams, Encryptor, GaloisKeys, PublicKey, SecretKey,
};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::ir::{FusedStream, OpKind};
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_server::wire::client::{self};
use heax_server::wire::{OpCode, Request, WireOperand};
use heax_server::HeaxServer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

fn system(ctx: &CkksContext) -> HeaxSystem<'_> {
    let accel = HeaxAccelerator::with_arch(
        ctx,
        Board::stratix10(),
        KeySwitchArch {
            n: 64,
            k: 3,
            nc_intt0: 4,
            m0: 2,
            nc_ntt0: 4,
            num_dyad: 3,
            nc_dyad: 4,
            nc_intt1: 2,
            nc_ntt1: 4,
            nc_ms: 2,
        },
        NttModuleConfig::new(64, 4).unwrap(),
        MultModuleConfig::new(64, 8).unwrap(),
    )
    .unwrap();
    HeaxSystem::new(accel)
}

/// A keyed client: Galois keys (covering ±1, ±2) plus one fresh
/// ciphertext, both ready for the wire.
struct Client {
    gks: GaloisKeys,
    ct: Ciphertext,
}

fn client_rig(ctx: &CkksContext, seed: u64) -> Client {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(ctx, &mut rng);
    let pk = PublicKey::generate(ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(ctx, &sk, &[1, 2, -1, -2], &mut rng);
    let enc = CkksEncoder::new(ctx);
    let vals: Vec<f64> = (0..ctx.n() / 2)
        .map(|i| (i as f64) * 0.04 + seed as f64 * 0.03)
        .collect();
    let ct = Encryptor::new(ctx, &pk)
        .encrypt(
            &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                .unwrap(),
            &mut rng,
        )
        .unwrap();
    Client { gks, ct }
}

/// Opens one session and registers its Galois keys.
fn open_keyed(server: &mut HeaxServer<'_>, c: &Client) -> u64 {
    let reply = server.handle_frame(&client::open_session()).unwrap();
    let (session, _, _) = client::parse_reply(&reply).unwrap();
    let frame = client::register_galois_keys(session, &serialize_galois_keys(&c.gks));
    server.handle_frame(&frame).unwrap();
    session
}

fn submit(server: &mut HeaxServer<'_>, session: u64, id: u64, req: &Request<'_>) {
    assert!(server
        .handle_frame(&client::request(session, id, req))
        .is_none());
}

/// The multiset of hoisted rotation groups in a fused plan, as
/// `(session, fanout)` pairs sorted for comparison — the shape the
/// order-insensitivity property compares across submission orders.
fn group_shape(plan: &FusedStream) -> Vec<(u64, usize)> {
    let mut shape: Vec<(u64, usize)> = plan
        .ops
        .iter()
        .zip(&plan.members)
        .filter(|(op, _)| matches!(op.kind, OpKind::Rotate | OpKind::RotateMany { .. }))
        .map(|(op, members)| (op.session, members.len()))
        .collect();
    shape.sort_unstable();
    shape
}

#[test]
fn lowering_is_pure_and_captures_placement_ids_and_deps() {
    let c = ctx();
    let rig = client_rig(&c, 11);
    let mut server = HeaxServer::with_system(&c, system(&c));
    let session = open_keyed(&mut server, &rig);
    let ct_bytes = serialize_ciphertext(&rig.ct);

    // fetch(inline) → "a"; rotate("a") → "b"; add("a","b") → "c";
    // fetch("c") out.
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: Some("a"),
            operands: vec![WireOperand::Inline(&ct_bytes)],
        },
    );
    submit(
        &mut server,
        session,
        2,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: Some("b"),
            operands: vec![WireOperand::Parked("a")],
        },
    );
    submit(
        &mut server,
        session,
        3,
        &Request {
            op: OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: Some("c"),
            operands: vec![WireOperand::Parked("a"), WireOperand::Parked("b")],
        },
    );
    submit(
        &mut server,
        session,
        4,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("c")],
        },
    );

    let stream = server.queued_stream();
    assert_eq!(stream.len(), 4);
    let ops = &stream.ops;

    // fetch(inline) → "a": inline input, parked output with an id.
    assert_eq!(ops[0].kind, OpKind::Fetch);
    assert!(!ops[0].input_parked);
    assert!(ops[0].park_output);
    let a = ops[0].output_id;
    assert_ne!(a, 0);
    assert_eq!(ops[0].dep_indices().count(), 0);

    // rotate("a") → "b": parked input carries "a"'s id and a dep edge
    // on its writer.
    assert_eq!(ops[1].kind, OpKind::Rotate);
    assert!(ops[1].input_parked);
    assert_eq!(ops[1].input_id, a);
    assert_eq!(ops[1].dep_indices().collect::<Vec<_>>(), vec![0]);
    let b = ops[1].output_id;
    assert!(b != 0 && b != a);

    // add("a","b") → "c": depends on both writers.
    assert_eq!(ops[2].kind, OpKind::Add);
    assert!(ops[2].input_parked);
    let mut deps: Vec<usize> = ops[2].dep_indices().collect();
    deps.sort_unstable();
    assert_eq!(deps, vec![0, 1]);

    // fetch("c"): read-only tail, no parked output.
    assert_eq!(ops[3].kind, OpKind::Fetch);
    assert!(ops[3].input_parked);
    assert!(!ops[3].park_output);
    assert_eq!(ops[3].output_id, 0);
    assert_eq!(ops[3].dep_indices().collect::<Vec<_>>(), vec![2]);

    assert!(ops.iter().all(|op| op.session == session));

    // Inspection drained nothing; the same queue still flushes fully.
    assert_eq!(server.queue_depth(), 4);
    let plan = server.queued_plan();
    assert_eq!(plan.requests(), 4);
    assert_eq!(server.flush().len(), 4);
    assert_eq!(server.queue_depth(), 0);
}

#[test]
fn fanout_plan_fuses_same_input_rotations_only() {
    let c = ctx();
    let rig = client_rig(&c, 12);
    let other = client_rig(&c, 13);
    let mut server = HeaxServer::with_system(&c, system(&c));
    let session = open_keyed(&mut server, &rig);
    let ct_bytes = serialize_ciphertext(&rig.ct);
    let other_bytes = serialize_ciphertext(&other.ct);

    // Three rotations of one ciphertext, then one of a different one.
    for (id, step) in [(1u64, 1i64), (2, 2), (3, -1)] {
        let frame = client::rotate(session, id, &ct_bytes, step);
        assert!(server.handle_frame(&frame).is_none());
    }
    let frame = client::rotate(session, 4, &other_bytes, 1);
    assert!(server.handle_frame(&frame).is_none());

    let plan = server.queued_plan();
    assert_eq!(plan.ops.len(), 2, "one hoisted group plus one singleton");
    assert_eq!(
        plan.ops[0].kind,
        OpKind::RotateMany {
            count: 3,
            parked_outputs: 0
        }
    );
    assert_eq!(plan.members[0], vec![0, 1, 2]);
    assert_eq!(plan.ops[1].kind, OpKind::Rotate);
    assert_eq!(plan.members[1], vec![3]);
    assert_eq!(plan.requests(), 4);
}

#[test]
fn per_session_modeled_cycles_accumulate_across_flushes() {
    let c = ctx();
    let rig = client_rig(&c, 14);

    // Board model: each flush's attributed cycles add onto the
    // session's running total.
    let mut server = HeaxServer::with_system(&c, system(&c))
        .with_board_model(2)
        .unwrap();
    let session = open_keyed(&mut server, &rig);
    let ct_bytes = serialize_ciphertext(&rig.ct);

    let frame = client::rotate(session, 1, &ct_bytes, 1);
    assert!(server.handle_frame(&frame).is_none());
    server.flush();
    let after_one = session_cycles(&server, session);
    assert!(after_one > 0, "first flush must bill the session");

    for id in [2u64, 3] {
        let frame = client::rotate(session, id, &ct_bytes, 1);
        assert!(server.handle_frame(&frame).is_none());
    }
    server.flush();
    let after_two = session_cycles(&server, session);
    assert!(
        after_two > after_one,
        "second flush must add to the running total ({after_two} vs {after_one})"
    );

    // Cluster model alone attributes per-session cycles the same way.
    let mut cluster = HeaxServer::with_system(&c, system(&c))
        .with_cluster_model(2, 2)
        .unwrap();
    let session = open_keyed(&mut cluster, &rig);
    let frame = client::rotate(session, 1, &ct_bytes, 1);
    assert!(cluster.handle_frame(&frame).is_none());
    cluster.flush();
    let first = session_cycles(&cluster, session);
    assert!(first > 0, "cluster model must bill the session");
    let frame = client::rotate(session, 2, &ct_bytes, 1);
    assert!(cluster.handle_frame(&frame).is_none());
    cluster.flush();
    assert!(session_cycles(&cluster, session) > first);
}

fn session_cycles(server: &HeaxServer<'_>, session: u64) -> u64 {
    server
        .stats()
        .per_session
        .iter()
        .find(|&&(id, _)| id == session)
        .map(|&(_, s)| s.modeled_cycles)
        .expect("session registered")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rotation fusion is order-insensitive: interleaving requests
    /// from different sessions within a flush yields the same hoisted
    /// groups (same per-session fan-outs) as submitting them sorted by
    /// session.
    #[test]
    fn fusion_is_order_insensitive_across_sessions(
        fanouts in prop::collection::vec(1usize..5, 2..4),
        seed in 0u64..1000,
    ) {
        let c = ctx();
        let rigs: Vec<Client> = (0..fanouts.len())
            .map(|i| client_rig(&c, seed.wrapping_add(i as u64)))
            .collect();

        // Two servers, sessions opened in the same order so ids match.
        let mut interleaved = HeaxServer::with_system(&c, system(&c));
        let mut sorted = HeaxServer::with_system(&c, system(&c));
        let mut sessions = Vec::new();
        for rig in &rigs {
            let a = open_keyed(&mut interleaved, rig);
            let b = open_keyed(&mut sorted, rig);
            prop_assert_eq!(a, b);
            sessions.push(a);
        }
        let cts: Vec<Vec<u8>> = rigs.iter().map(|r| serialize_ciphertext(&r.ct)).collect();

        // Round-robin interleaving across sessions...
        let mut id = 0u64;
        let mut left: Vec<usize> = fanouts.clone();
        while left.iter().any(|&n| n > 0) {
            for (i, n) in left.iter_mut().enumerate() {
                if *n > 0 {
                    *n -= 1;
                    id += 1;
                    let frame = client::rotate(sessions[i], id, &cts[i], 1);
                    prop_assert!(interleaved.handle_frame(&frame).is_none());
                }
            }
        }
        // ...versus strictly session-sorted submission.
        let mut id = 0u64;
        for (i, &n) in fanouts.iter().enumerate() {
            for _ in 0..n {
                id += 1;
                let frame = client::rotate(sessions[i], id, &cts[i], 1);
                prop_assert!(sorted.handle_frame(&frame).is_none());
            }
        }

        let shape_a = group_shape(&interleaved.queued_plan());
        let shape_b = group_shape(&sorted.queued_plan());
        prop_assert_eq!(&shape_a, &shape_b);
        // Every session contributes exactly one group of its fan-out.
        let mut want: Vec<(u64, usize)> = sessions
            .iter()
            .zip(&fanouts)
            .map(|(&s, &n)| (s, n))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(shape_a, want);
    }
}
