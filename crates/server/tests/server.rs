//! End-to-end tests of the serving layer on a small ring: full wire
//! round trips, batch-vs-sequential equivalence, parked intermediates,
//! session isolation, and failure containment.

use heax_ckks::serialize::{
    deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys, serialize_relin_key,
    serialize_seeded_ciphertext,
};
use heax_ckks::{
    encrypt_symmetric_seeded, Ciphertext, CkksContext, CkksEncoder, CkksParams, Decryptor,
    Encryptor, Evaluator, GaloisKeys, PublicKey, RelinKey, SecretKey,
};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::faults::{FaultKind, FaultPlan};
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_server::wire::client::{self, Reply};
use heax_server::wire::{self, MessageKind, OpCode, Request, WireOperand, WIRE_V1, WIRE_V2};
use heax_server::{ErrorCode, FlushPolicy, HeaxServer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

fn system(ctx: &CkksContext) -> HeaxSystem<'_> {
    let accel = HeaxAccelerator::with_arch(
        ctx,
        Board::stratix10(),
        KeySwitchArch {
            n: 64,
            k: 3,
            nc_intt0: 4,
            m0: 2,
            nc_ntt0: 4,
            num_dyad: 3,
            nc_dyad: 4,
            nc_intt1: 2,
            nc_ntt1: 4,
            nc_ms: 2,
        },
        NttModuleConfig::new(64, 4).unwrap(),
        MultModuleConfig::new(64, 8).unwrap(),
    )
    .unwrap();
    HeaxSystem::new(accel)
}

/// One simulated client: its own keys and a sample ciphertext.
struct Client {
    sk: SecretKey,
    rlk: RelinKey,
    gks: GaloisKeys,
    ct: Ciphertext,
    vals: Vec<f64>,
}

fn client(ctx: &CkksContext, seed: u64, steps: &[i64]) -> Client {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(ctx, &mut rng);
    let pk = PublicKey::generate(ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(ctx, &sk, steps, &mut rng);
    let enc = CkksEncoder::new(ctx);
    let vals: Vec<f64> = (0..ctx.n() / 2)
        .map(|i| (i as f64) * 0.25 - 2.0 + seed as f64 * 0.125)
        .collect();
    let ct = Encryptor::new(ctx, &pk)
        .encrypt(
            &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                .unwrap(),
            &mut rng,
        )
        .unwrap();
    Client {
        sk,
        rlk,
        gks,
        ct,
        vals,
    }
}

fn decrypt(ctx: &CkksContext, sk: &SecretKey, ct: &Ciphertext) -> Vec<f64> {
    let enc = CkksEncoder::new(ctx);
    enc.decode_real(&Decryptor::new(ctx, sk).decrypt(ct).unwrap())
        .unwrap()
}

/// Opens a session and returns its id.
fn open(server: &mut HeaxServer<'_>) -> u64 {
    let reply = server.handle_frame(&client::open_session()).unwrap();
    let (session, _, reply) = client::parse_reply(&reply).unwrap();
    assert_eq!(reply, Reply::SessionOpened);
    assert_ne!(session, 0);
    session
}

/// Registers both keys, asserting acks.
fn register_keys(server: &mut HeaxServer<'_>, session: u64, c: &Client) {
    for frame in [
        client::register_relin_key(session, &serialize_relin_key(&c.rlk)),
        client::register_galois_keys(session, &serialize_galois_keys(&c.gks)),
    ] {
        let reply = server.handle_frame(&frame).unwrap();
        let (_, _, reply) = client::parse_reply(&reply).unwrap();
        assert_eq!(reply, Reply::KeyRegistered);
    }
}

/// Submits a request frame, asserting it was queued (no immediate
/// reply).
fn submit(server: &mut HeaxServer<'_>, session: u64, request_id: u64, req: &Request<'_>) {
    assert!(
        server
            .handle_frame(&client::request(session, request_id, req))
            .is_none(),
        "request must queue, not answer immediately"
    );
}

fn expect_ciphertext(ctx: &CkksContext, frame: &[u8]) -> Ciphertext {
    let (_, _, reply) = client::parse_reply(frame).unwrap();
    match reply {
        Reply::Ciphertext(bytes) => deserialize_ciphertext(&bytes, ctx).unwrap(),
        other => panic!("expected a ciphertext reply, got {other:?}"),
    }
}

fn expect_error(frame: &[u8]) -> (ErrorCode, String) {
    let (_, _, reply) = client::parse_reply(frame).unwrap();
    match reply {
        Reply::Error { code, message } => (code, message),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn parked_pipeline_computes_x2_plus_rotated_x2() {
    let ctx = ctx();
    let c = client(&ctx, 1, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);
    register_keys(&mut server, session, &c);

    let wire_ct = serialize_ciphertext(&c.ct);
    // x² parked, rot(x², 1) parked, then x² + rot(x², 1) shipped back —
    // the seed example's pipeline, now through the wire protocol.
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::SquareRelin,
            step: 0,
            compress_reply: false,
            park_as: Some("x2"),
            operands: vec![WireOperand::Inline(&wire_ct)],
        },
    );
    submit(
        &mut server,
        session,
        2,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: Some("x2r"),
            operands: vec![WireOperand::Parked("x2")],
        },
    );
    submit(
        &mut server,
        session,
        3,
        &Request {
            op: OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("x2"), WireOperand::Parked("x2r")],
        },
    );
    assert_eq!(server.queue_depth(), 3);
    let replies = server.flush();
    assert_eq!(replies.len(), 3);
    let (_, _, r1) = client::parse_reply(&replies[0]).unwrap();
    assert_eq!(r1, Reply::Parked("x2".into()));
    let (_, _, r2) = client::parse_reply(&replies[1]).unwrap();
    assert_eq!(r2, Reply::Parked("x2r".into()));
    let result = expect_ciphertext(&ctx, &replies[2]);

    let got = decrypt(&ctx, &c.sk, &result);
    let slots = ctx.n() / 2;
    for (i, g) in got.iter().enumerate().take(4) {
        let want = c.vals[i] * c.vals[i] + c.vals[(i + 1) % slots] * c.vals[(i + 1) % slots];
        assert!((g - want).abs() < 0.05, "slot {i}: {g} vs {want}");
    }

    // Parked intermediates live in modeled board DRAM until close.
    assert!(server.parked(session, "x2").is_some());
    let stats = server.stats();
    assert_eq!(stats.parked_entries, 2);
    assert!(stats.parked_bytes > 0);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batched_requests, 3);

    // Closing the session releases its parked operands.
    let reply = server
        .handle_frame(&client::close_session(session))
        .unwrap();
    let (_, _, reply) = client::parse_reply(&reply).unwrap();
    assert_eq!(reply, Reply::SessionClosed);
    assert_eq!(server.stats().parked_entries, 0);
    assert_eq!(server.system().dram_used_bytes(), 0);

    // The session is gone; later frames get a structured error.
    let reply = server
        .handle_frame(&client::rotate(session, 9, &wire_ct, 1))
        .unwrap();
    assert_eq!(expect_error(&reply).0, ErrorCode::UnknownSession);
}

#[test]
fn batched_rotations_decrypt_like_sequential_and_hoist() {
    let ctx = ctx();
    let steps = [1i64, -1, 2, 5];
    let clients: Vec<Client> = (0..2).map(|i| client(&ctx, 10 + i, &steps)).collect();
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let eval = Evaluator::new(&ctx);

    let mut sessions = Vec::new();
    for c in &clients {
        let session = open(&mut server);
        register_keys(&mut server, session, c);
        sessions.push(session);
    }
    // Interleave the two clients' rotation requests so grouping has to
    // untangle them.
    let wires: Vec<Vec<u8>> = clients
        .iter()
        .map(|c| serialize_ciphertext(&c.ct))
        .collect();
    let mut req_id = 0u64;
    for &step in &steps {
        for (session, wire) in sessions.iter().zip(&wires) {
            req_id += 1;
            submit(
                &mut server,
                *session,
                req_id,
                &Request {
                    op: OpCode::Rotate,
                    step,
                    compress_reply: false,
                    park_as: None,
                    operands: vec![WireOperand::Inline(wire)],
                },
            );
        }
    }
    let replies = server.flush();
    assert_eq!(replies.len(), steps.len() * clients.len());

    // Every batched output decrypts to the same values as a sequential
    // rotate of the same input (hoisting is decrypt-equal).
    for (i, reply) in replies.iter().enumerate() {
        let which = i % clients.len();
        let step = steps[i / clients.len()];
        let c = &clients[which];
        let got = decrypt(&ctx, &c.sk, &expect_ciphertext(&ctx, reply));
        let seq = eval.rotate(&c.ct, step, &c.gks).unwrap();
        let want = decrypt(&ctx, &c.sk, &seq);
        for (slot, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-2,
                "client {which} step {step} slot {slot}: {g} vs {w}"
            );
        }
    }

    let stats = server.stats();
    assert_eq!(stats.hoisted_groups, clients.len() as u64);
    assert_eq!(
        stats.hoisted_rotations,
        (steps.len() * clients.len()) as u64
    );
    assert_eq!(
        stats.batch_occupancy(),
        (steps.len() * clients.len()) as f64
    );
    assert_eq!(stats.op(OpCode::Rotate).requests, 8);
    assert_eq!(stats.op(OpCode::Rotate).errors, 0);
    assert_eq!(stats.queue_high_water, 8);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn hostile_input_gets_structured_errors_session_survives() {
    let ctx = ctx();
    let c = client(&ctx, 20, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let wire_ct = serialize_ciphertext(&c.ct);

    // Raw garbage is answered, not dropped.
    let reply = server.handle_frame(b"not a frame at all").unwrap();
    assert_eq!(expect_error(&reply).0, ErrorCode::Malformed);

    // A ciphertext with a NaN scale is rejected at intake with a
    // structured error (the serialize-layer hardening, surfaced over
    // the wire).
    let mut nan_ct = wire_ct.clone();
    let scale_off = 4 + 1 + 1 + 8;
    nan_ct[scale_off..scale_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    let reply = server
        .handle_frame(&client::rotate(session, 2, &nan_ct, 1))
        .unwrap();
    assert_eq!(expect_error(&reply).0, ErrorCode::Crypto);

    // A request for an unknown parked handle fails structurally too.
    submit(
        &mut server,
        session,
        3,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("never-parked")],
        },
    );
    let replies = server.flush();
    assert_eq!(expect_error(&replies[0]).0, ErrorCode::UnknownHandle);

    // The session still serves correct work afterwards.
    submit(
        &mut server,
        session,
        4,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Inline(&wire_ct)],
        },
    );
    let replies = server.flush();
    let got = decrypt(&ctx, &c.sk, &expect_ciphertext(&ctx, &replies[0]));
    assert!((got[0] - c.vals[1]).abs() < 1e-2);

    let stats = server.stats();
    assert_eq!(stats.decode_errors, 1);
    assert!(stats.per_session[0].1.errors >= 2);
}

#[test]
fn uncovered_steps_fail_individually_inside_a_fused_group() {
    let ctx = ctx();
    // Keys for steps 1 and 2 only; step 3 is requested but uncovered.
    let c = client(&ctx, 30, &[1, 2]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let wire_ct = serialize_ciphertext(&c.ct);
    for (id, step) in [(1u64, 1i64), (2, 3), (3, 2)] {
        submit(
            &mut server,
            session,
            id,
            &Request {
                op: OpCode::Rotate,
                step,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Inline(&wire_ct)],
            },
        );
    }
    let replies = server.flush();
    let r1 = decrypt(&ctx, &c.sk, &expect_ciphertext(&ctx, &replies[0]));
    assert!((r1[0] - c.vals[1]).abs() < 1e-2);
    let (code, message) = expect_error(&replies[1]);
    assert_eq!(code, ErrorCode::MissingKey);
    assert!(
        message.contains('3'),
        "message should name the step: {message}"
    );
    let r3 = decrypt(&ctx, &c.sk, &expect_ciphertext(&ctx, &replies[2]));
    assert!((r3[0] - c.vals[2]).abs() < 1e-2);

    // The two covered steps still shared one hoisted decomposition.
    let stats = server.stats();
    assert_eq!(stats.hoisted_groups, 1);
    assert_eq!(stats.hoisted_rotations, 2);
    assert_eq!(stats.op(OpCode::Rotate).errors, 1);
}

#[test]
fn parked_handles_are_session_scoped() {
    let ctx = ctx();
    let a = client(&ctx, 40, &[1]);
    let b = client(&ctx, 41, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let sess_a = open(&mut server);
    register_keys(&mut server, sess_a, &a);
    let sess_b = open(&mut server);
    register_keys(&mut server, sess_b, &b);

    let wire_a = serialize_ciphertext(&a.ct);
    submit(
        &mut server,
        sess_a,
        1,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: Some("shared-name"),
            operands: vec![WireOperand::Inline(&wire_a)],
        },
    );
    server.flush();

    // Session B cannot see A's handle, even by the same name.
    submit(
        &mut server,
        sess_b,
        2,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("shared-name")],
        },
    );
    let replies = server.flush();
    assert_eq!(expect_error(&replies[0]).0, ErrorCode::UnknownHandle);

    // Session A can.
    submit(
        &mut server,
        sess_a,
        3,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("shared-name")],
        },
    );
    let replies = server.flush();
    let fetched = expect_ciphertext(&ctx, &replies[0]);
    assert_eq!(fetched, a.ct);
}

#[test]
fn park_after_session_close_cannot_orphan_dram() {
    let ctx = ctx();
    let c = client(&ctx, 60, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let wire_ct = serialize_ciphertext(&c.ct);
    // Queue a parking request, then close the session BEFORE flushing.
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: Some("orphan"),
            operands: vec![WireOperand::Inline(&wire_ct)],
        },
    );
    let reply = server
        .handle_frame(&client::close_session(session))
        .unwrap();
    let (_, _, reply) = client::parse_reply(&reply).unwrap();
    assert_eq!(reply, Reply::SessionClosed);
    // The flush must answer with a structured error and must NOT leave
    // an unreleasable entry in modeled DRAM (session ids are never
    // reused, so nothing could ever free it).
    let replies = server.flush();
    assert_eq!(expect_error(&replies[0]).0, ErrorCode::UnknownSession);
    assert_eq!(server.stats().parked_entries, 0);
    assert_eq!(server.system().dram_used_bytes(), 0);
}

#[test]
fn reparking_a_handle_splits_the_rotation_group() {
    let ctx = ctx();
    let c = client(&ctx, 61, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let eval = Evaluator::new(&ctx);

    // Park the original ciphertext as "x", and prepare a distinct
    // second ciphertext (x + x) to repark under the same name.
    let wire_ct = serialize_ciphertext(&c.ct);
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: Some("x"),
            operands: vec![WireOperand::Inline(&wire_ct)],
        },
    );
    server.flush();

    // One flush: rotate old "x", overwrite "x" with x+x, rotate "x"
    // again. In-order semantics demand the second rotation see x+x.
    submit(
        &mut server,
        session,
        2,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("x")],
        },
    );
    submit(
        &mut server,
        session,
        3,
        &Request {
            op: OpCode::Add,
            step: 0,
            compress_reply: false,
            park_as: Some("x"),
            operands: vec![WireOperand::Parked("x"), WireOperand::Parked("x")],
        },
    );
    submit(
        &mut server,
        session,
        4,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("x")],
        },
    );
    let replies = server.flush();
    assert_eq!(replies.len(), 3);

    let rot_old = expect_ciphertext(&ctx, &replies[0]);
    let rot_new = expect_ciphertext(&ctx, &replies[2]);
    let want_old = decrypt(&ctx, &c.sk, &eval.rotate(&c.ct, 1, &c.gks).unwrap());
    let doubled = eval.add(&c.ct, &c.ct).unwrap();
    let want_new = decrypt(&ctx, &c.sk, &eval.rotate(&doubled, 1, &c.gks).unwrap());
    let got_old = decrypt(&ctx, &c.sk, &rot_old);
    let got_new = decrypt(&ctx, &c.sk, &rot_new);
    for slot in 0..4 {
        assert!(
            (got_old[slot] - want_old[slot]).abs() < 1e-2,
            "pre-write rotation must see the old value"
        );
        assert!(
            (got_new[slot] - want_new[slot]).abs() < 1e-2,
            "post-write rotation must see the REPARKED value, got {} want {}",
            got_new[slot],
            want_new[slot]
        );
    }
    // The write split the would-be group: no fusion happened.
    assert_eq!(server.stats().hoisted_groups, 0);
}

#[test]
fn missing_relin_key_is_a_structured_error() {
    let ctx = ctx();
    let c = client(&ctx, 50, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);
    // Only Galois keys registered — square must fail with MissingKey.
    let reply = server
        .handle_frame(&client::register_galois_keys(
            session,
            &serialize_galois_keys(&c.gks),
        ))
        .unwrap();
    let (_, _, reply) = client::parse_reply(&reply).unwrap();
    assert_eq!(reply, Reply::KeyRegistered);

    let wire_ct = serialize_ciphertext(&c.ct);
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::SquareRelin,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Inline(&wire_ct)],
        },
    );
    let replies = server.flush();
    assert_eq!(expect_error(&replies[0]).0, ErrorCode::MissingKey);
}

#[test]
fn v2_seeded_upload_and_compressed_reply() {
    let ctx = ctx();
    let c = client(&ctx, 9, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));
    let session = open(&mut server);

    // A fresh symmetric encryption shipped seeded: 32 bytes of seed
    // stand in for the whole uniform polynomial.
    let mut rng = StdRng::seed_from_u64(99);
    let enc = CkksEncoder::new(&ctx);
    let vals: Vec<f64> = (0..ctx.n() / 2).map(|i| i as f64 * 0.5 - 3.0).collect();
    let pt = enc
        .encode_real(&vals, ctx.params().scale(), ctx.max_level())
        .unwrap();
    let seeded = encrypt_symmetric_seeded(&ctx, &c.sk, &pt, &mut rng).unwrap();
    let seeded_bytes = serialize_seeded_ciphertext(&seeded);
    let full_bytes = serialize_ciphertext(&c.ct);
    assert!(
        seeded_bytes.len() * 2 < full_bytes.len() + 1024,
        "seeded upload should be about half the full encoding"
    );

    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Add,
            step: 0,
            compress_reply: true,
            park_as: None,
            operands: vec![
                WireOperand::Inline(&seeded_bytes),
                WireOperand::Inline(&full_bytes),
            ],
        },
    );
    let replies = server.flush();
    assert_eq!(replies.len(), 1);
    assert_eq!(
        wire::decode_frame(&replies[0]).unwrap().version,
        WIRE_V2,
        "reply echoes the request's wire version"
    );
    let out = expect_ciphertext(&ctx, &replies[0]);
    assert_eq!(out.level(), 0, "compressed reply ships one RNS limb");
    assert!(
        replies[0].len() * 2 < full_bytes.len(),
        "compressed reply should be a small fraction of a full ciphertext"
    );
    let got = decrypt(&ctx, &c.sk, &out);
    for (i, g) in got.iter().enumerate().take(8) {
        let want = vals[i] + c.vals[i];
        assert!((g - want).abs() < 0.05, "slot {i}: {g} vs {want}");
    }
    let stats = server.stats();
    assert_eq!(stats.seeded_operands, 1);
    assert_eq!(stats.compressed_replies, 1);
}

#[test]
fn v1_clients_still_served_with_version_echoed() {
    let ctx = ctx();
    let c = client(&ctx, 3, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx));

    // Hand-rolled v1 frames throughout: the upgraded server must keep
    // speaking v1 to a v1 peer, byte-compatibly.
    let reply = server
        .handle_frame(&wire::encode_frame(
            WIRE_V1,
            MessageKind::OpenSession,
            0,
            0,
            &[],
        ))
        .unwrap();
    assert_eq!(wire::decode_frame(&reply).unwrap().version, WIRE_V1);
    let (session, _, r) = client::parse_reply(&reply).unwrap();
    assert_eq!(r, Reply::SessionOpened);

    let reply = server
        .handle_frame(&wire::encode_frame(
            WIRE_V1,
            MessageKind::RegisterGaloisKeys,
            session,
            0,
            &serialize_galois_keys(&c.gks),
        ))
        .unwrap();
    assert_eq!(wire::decode_frame(&reply).unwrap().version, WIRE_V1);

    // A v1 request body has no flags byte.
    let wire_ct = serialize_ciphertext(&c.ct);
    let req = Request {
        op: OpCode::Rotate,
        step: 1,
        compress_reply: false,
        park_as: None,
        operands: vec![WireOperand::Inline(&wire_ct)],
    };
    let frame = wire::encode_frame(
        WIRE_V1,
        MessageKind::Request,
        session,
        7,
        &wire::encode_request(WIRE_V1, &req),
    );
    assert!(server.handle_frame(&frame).is_none());
    let replies = server.flush();
    assert_eq!(replies.len(), 1);
    assert_eq!(
        wire::decode_frame(&replies[0]).unwrap().version,
        WIRE_V1,
        "v1 request answered with a v1 frame"
    );
    let out = expect_ciphertext(&ctx, &replies[0]);
    let got = decrypt(&ctx, &c.sk, &out);
    assert!((got[0] - c.vals[1]).abs() < 0.01, "rotation by 1");

    // Undecodable bytes (no trustworthy version) are answered at v1.
    let err = server.handle_frame(b"not a frame at all").unwrap();
    assert_eq!(wire::decode_frame(&err).unwrap().version, WIRE_V1);
    assert_eq!(expect_error(&err).0, ErrorCode::Malformed);
}

#[test]
fn v2_flags_reach_the_board_model() {
    // The same request submitted plainly vs. seeded+compressed must
    // lower into IR ops whose modeled transfer legs shrink.
    let ctx = ctx();
    let c = client(&ctx, 5, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx))
        .with_board_model(1)
        .unwrap();
    let session = open(&mut server);

    let mut rng = StdRng::seed_from_u64(77);
    let enc = CkksEncoder::new(&ctx);
    let pt = enc
        .encode_real(&[1.0, 2.0], ctx.params().scale(), ctx.max_level())
        .unwrap();
    let seeded = encrypt_symmetric_seeded(&ctx, &c.sk, &pt, &mut rng).unwrap();
    let seeded_bytes = serialize_seeded_ciphertext(&seeded);
    let full_bytes = serialize_ciphertext(&c.ct);

    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Rescale,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Inline(&full_bytes)],
        },
    );
    let plain_stream = server.queued_stream();
    server.flush();
    submit(
        &mut server,
        session,
        2,
        &Request {
            op: OpCode::Rescale,
            step: 0,
            compress_reply: true,
            park_as: None,
            operands: vec![WireOperand::Inline(&seeded_bytes)],
        },
    );
    let v2_stream = server.queued_stream();
    server.flush();

    assert!(!plain_stream.ops[0].input_seeded);
    assert_eq!(plain_stream.ops[0].reply_limbs, 0);
    assert!(v2_stream.ops[0].input_seeded);
    assert_eq!(v2_stream.ops[0].reply_limbs, 1);
}

/// Exhausted retries answer with a structured `Degraded` error frame,
/// the session survives, and a healthy server afterwards serves the
/// same session for real.
#[test]
fn transient_faults_degrade_with_structured_errors() {
    let ctx = ctx();
    let c = client(&ctx, 11, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx))
        .with_flush_policy(FlushPolicy {
            max_retries: 2,
            backoff_us: 50,
            deadline_us: 0,
        })
        .with_transient_faults(7, 1.0);
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let ct_bytes = serialize_ciphertext(&c.ct);
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Inline(&ct_bytes)],
        },
    );
    let replies = server.flush();
    let (code, msg) = expect_error(&replies[0]);
    assert_eq!(code, ErrorCode::Degraded);
    assert!(msg.contains("2 retries"), "got {msg:?}");
    let stats = server.stats();
    assert_eq!(stats.degraded_replies, 1);
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.shed_requests, 0);
    assert_eq!(stats.op(OpCode::Rotate).errors, 1);

    // Disarm the injector: the same session serves normally.
    server = server.with_transient_faults(0, 0.0);
    submit(
        &mut server,
        session,
        2,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Inline(&ct_bytes)],
        },
    );
    let replies = server.flush();
    let got = decrypt(&ctx, &c.sk, &expect_ciphertext(&ctx, &replies[0]));
    assert!((got[0] - c.vals[1]).abs() < 0.05);
    assert_eq!(server.stats().degraded_replies, 1, "no new degradation");
}

/// A deadline budget that runs out before the retries do sheds the
/// request with a `LoadShed` error frame — and a fused rotation group
/// sheds as a unit, every member answered.
#[test]
fn deadline_budget_sheds_requests() {
    let ctx = ctx();
    let c = client(&ctx, 12, &[1, 2]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx))
        .with_flush_policy(FlushPolicy {
            max_retries: 10,
            backoff_us: 100,
            deadline_us: 150,
        })
        .with_transient_faults(3, 1.0);
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let ct_bytes = serialize_ciphertext(&c.ct);
    // Same inline input: the two rotations fuse into one group, so the
    // shed verdict must cover both replies.
    for (id, step) in [(1u64, 1i64), (2, 2)] {
        submit(
            &mut server,
            session,
            id,
            &Request {
                op: OpCode::Rotate,
                step,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Inline(&ct_bytes)],
            },
        );
    }
    let replies = server.flush();
    assert_eq!(replies.len(), 2);
    for reply in &replies {
        let (code, msg) = expect_error(reply);
        assert_eq!(code, ErrorCode::LoadShed);
        assert!(msg.contains("deadline budget"), "got {msg:?}");
    }
    let stats = server.stats();
    assert_eq!(stats.shed_requests, 2);
    assert_eq!(stats.degraded_replies, 0);
    // One execution site: backoff 100 µs was taken once, the doubled
    // retry would blow the 150 µs budget, so exactly one retry billed.
    assert_eq!(stats.retries, 1);
}

/// The same `(seed, rate)` injector sheds/degrades the same requests:
/// two identically built and driven servers answer byte-identically.
#[test]
fn transient_fault_injection_is_deterministic() {
    let ctx = ctx();
    let c = client(&ctx, 13, &[1]);
    let run = || {
        let mut server = HeaxServer::with_system(&ctx, system(&ctx))
            .with_flush_policy(FlushPolicy {
                max_retries: 1,
                backoff_us: 10,
                deadline_us: 0,
            })
            .with_transient_faults(42, 0.5);
        let session = open(&mut server);
        register_keys(&mut server, session, &c);
        let ct_bytes = serialize_ciphertext(&c.ct);
        let mut replies = Vec::new();
        for id in 1u64..=6 {
            submit(
                &mut server,
                session,
                id,
                &Request {
                    op: OpCode::Rotate,
                    step: 1,
                    compress_reply: false,
                    park_as: if id % 2 == 0 { None } else { Some("acc") },
                    operands: vec![WireOperand::Inline(&ct_bytes)],
                },
            );
            replies.extend(server.flush());
        }
        (
            replies,
            server.stats().retries,
            server.stats().degraded_replies,
        )
    };
    let (replies_a, retries_a, degraded_a) = run();
    let (replies_b, retries_b, degraded_b) = run();
    assert_eq!(replies_a, replies_b);
    assert_eq!(retries_a, retries_b);
    assert_eq!(degraded_a, degraded_b);
}

/// A cluster fault plan that crashes a board mid-stream surfaces in
/// `ServerStats`: the survivor count drops, the session fails over and
/// its parked state re-materializes — while every reply still serves
/// and decrypts correctly.
#[test]
fn board_crash_fails_over_and_surfaces_in_stats() {
    let ctx = ctx();
    let c = client(&ctx, 14, &[1]);
    let mut server = HeaxServer::with_system(&ctx, system(&ctx))
        .with_cluster_model(2, 2)
        .unwrap()
        // Board 0 dies once it has accrued any load: the first rotation
        // establishes key residency (and parks) there, then the next op
        // finds it drained.
        .with_fault_plan(FaultPlan::new().with_event(0, 1, FaultKind::BoardCrash));
    let session = open(&mut server);
    register_keys(&mut server, session, &c);
    let ct_bytes = serialize_ciphertext(&c.ct);
    submit(
        &mut server,
        session,
        1,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: Some("acc"),
            operands: vec![WireOperand::Inline(&ct_bytes)],
        },
    );
    submit(
        &mut server,
        session,
        2,
        &Request {
            op: OpCode::Rotate,
            step: 1,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("acc")],
        },
    );
    let replies = server.flush();
    let got = decrypt(&ctx, &c.sk, &expect_ciphertext(&ctx, &replies[1]));
    assert!((got[0] - c.vals[2]).abs() < 0.05, "two rotations by 1");

    let cluster = server.stats().cluster.expect("cluster model enabled");
    assert_eq!(cluster.boards, 2);
    assert_eq!(cluster.boards_alive, 1, "board 0 crashed");
    assert_eq!(cluster.failovers, 1, "the session re-homed its keys");
    assert_eq!(cluster.parked_rematerializations, 1);
    assert!(cluster.re_replications >= 1);
    assert!(cluster.recovery_cycles > 0);
    assert!(cluster.recovery_us() > 0.0);
    let report = server.cluster_report().expect("report retained");
    assert_eq!(report.board_alive, vec![false, true]);
}

/// Adversarial decoding of v1/v2 request bodies: `decode_request` must
/// be total on untrusted input at both wire versions, and a hostile
/// frame fed to a live server must come back as an error frame (at
/// wire v1, since an undecodable frame has no trustworthy version),
/// never take the session down.
mod wire_body_fuzz {
    use super::*;
    use proptest::prelude::*;

    fn sample_body(version: u8) -> Vec<u8> {
        wire::encode_request(
            version,
            &Request {
                op: OpCode::Add,
                step: -5,
                compress_reply: false,
                park_as: Some("sum"),
                operands: vec![
                    WireOperand::Inline(b"not a ciphertext"),
                    WireOperand::Parked("x"),
                ],
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Truncations, bit flips, and injected garbage never panic the
        /// body decoder at either version; raw garbage never decodes.
        #[test]
        fn decode_request_is_total_at_both_versions(
            version in prop::sample::select(vec![WIRE_V1, WIRE_V2]),
            kind in 0usize..3,
            pos in any::<u64>(),
            bit in 0u8..8,
        ) {
            let mut bytes = sample_body(version);
            let len = bytes.len() as u64;
            match kind {
                0 => bytes.truncate((pos % (len + 1)) as usize),
                1 => bytes[(pos % len) as usize] ^= 1 << bit,
                _ => bytes.extend_from_slice(&pos.to_le_bytes()),
            }
            // Decode under both version interpretations — a hostile
            // peer controls the frame header too.
            for decode_as in [WIRE_V1, WIRE_V2] {
                let _ = wire::decode_request(&bytes, decode_as);
            }
        }

        /// Random garbage bodies are rejected, not accepted or panicked
        /// on, at both versions.
        #[test]
        fn garbage_bodies_rejected(
            bytes in prop::collection::vec(any::<u8>(), 0..64),
            version in prop::sample::select(vec![WIRE_V1, WIRE_V2]),
        ) {
            // Byte 0 is the op code; valid ops are 1..=6, so force an
            // invalid one to guarantee rejection regardless of the rest.
            let mut bytes = bytes;
            if !bytes.is_empty() {
                bytes[0] = 0xEE;
            }
            prop_assert!(wire::decode_request(&bytes, version).is_err());
        }

        /// Corrupted error frames never panic the client-side reply
        /// parser: truncations, bit flips, and appended garbage either
        /// parse to *some* structured error or are rejected cleanly.
        #[test]
        fn error_frames_survive_corruption(
            version in prop::sample::select(vec![WIRE_V1, WIRE_V2]),
            code_index in 0usize..9,
            kind in 0usize..3,
            pos in any::<u64>(),
            bit in 0u8..8,
        ) {
            let code = heax_server::ErrorCode::ALL[code_index];
            let mut frame = wire::encode_frame(
                version,
                wire::MessageKind::Error,
                3,
                7,
                &wire::encode_error(code, "request shed: budget blown"),
            );
            let len = frame.len() as u64;
            match kind {
                0 => frame.truncate((pos % (len + 1)) as usize),
                1 => frame[(pos % len) as usize] ^= 1 << bit,
                _ => frame.extend_from_slice(&pos.to_le_bytes()),
            }
            let _ = wire::client::parse_reply(&frame);
        }

        /// An error *payload* with a random code and arbitrary message
        /// bytes always decodes — unknown codes land on `Unsupported`,
        /// never a panic or a rejected frame.
        #[test]
        fn random_error_payloads_decode_total(
            raw_code in any::<u16>(),
            message in prop::collection::vec(any::<u8>(), 0..48),
            version in prop::sample::select(vec![WIRE_V1, WIRE_V2]),
        ) {
            let mut payload = raw_code.to_le_bytes().to_vec();
            payload.extend_from_slice(&message);
            let frame = wire::encode_frame(version, wire::MessageKind::Error, 1, 2, &payload);
            let (_, _, reply) = wire::client::parse_reply(&frame).expect("error frames parse");
            let Reply::Error { code, .. } = reply else {
                panic!("expected an error reply");
            };
            let known = heax_server::ErrorCode::ALL.iter().any(|&c| c as u16 == raw_code);
            if !known {
                prop_assert_eq!(code, heax_server::ErrorCode::Unsupported);
            } else {
                prop_assert_eq!(code as u16, raw_code);
            }
        }
    }
}
