//! Property tests for the modeled-backend server: with the board-level
//! pipeline scheduler attached (`with_board_model`), random op streams
//! must produce results decrypt-identical to direct [`Evaluator`]
//! execution at every modeled core count k ∈ {1, 2, 4} — the model
//! runs *beside* the evaluator and must never perturb serving.
//!
//! CI runs this suite under both `HEAX_THREADS=1` (the default test
//! job) and `HEAX_THREADS=4` (the dedicated 4-lane re-run step).

use heax_ckks::serialize::{
    deserialize_ciphertext, serialize_ciphertext, serialize_galois_keys, serialize_relin_key,
};
use heax_ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys,
    PublicKey, RelinKey, SecretKey,
};
use heax_core::{HeaxAccelerator, HeaxSystem};
use heax_hw::board::Board;
use heax_hw::faults::{FaultPlan, FaultRates};
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_server::wire::client::{self, Reply};
use heax_server::wire::{OpCode, Request, WireOperand};
use heax_server::HeaxServer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Modeled core counts every stream is checked at.
const CORES: [usize; 3] = [1, 2, 4];

/// Modeled cluster shapes (boards × cores per board) the cluster
/// decrypt-identity property is checked at.
const CLUSTERS: [(usize, usize); 4] = [(1, 1), (1, 4), (2, 1), (2, 4)];

/// Rotation steps the test Galois keys cover.
const STEPS: [i64; 4] = [1, 2, -1, -2];

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

fn system(ctx: &CkksContext) -> HeaxSystem<'_> {
    let accel = HeaxAccelerator::with_arch(
        ctx,
        Board::stratix10(),
        KeySwitchArch {
            n: 64,
            k: 3,
            nc_intt0: 4,
            m0: 2,
            nc_ntt0: 4,
            num_dyad: 3,
            nc_dyad: 4,
            nc_intt1: 2,
            nc_ntt1: 4,
            nc_ms: 2,
        },
        NttModuleConfig::new(64, 4).unwrap(),
        MultModuleConfig::new(64, 8).unwrap(),
    )
    .unwrap();
    HeaxSystem::new(accel)
}

struct Rig {
    sk: SecretKey,
    rlk: RelinKey,
    gks: GaloisKeys,
    ct: Ciphertext,
}

fn rig(ctx: &CkksContext, seed: u64) -> Rig {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(ctx, &mut rng);
    let pk = PublicKey::generate(ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(ctx, &sk, &STEPS, &mut rng);
    let enc = CkksEncoder::new(ctx);
    let vals: Vec<f64> = (0..ctx.n() / 2)
        .map(|i| (i as f64) * 0.05 - 0.6 + seed as f64 * 0.01)
        .collect();
    let ct = Encryptor::new(ctx, &pk)
        .encrypt(
            &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                .unwrap(),
            &mut rng,
        )
        .unwrap();
    Rig { sk, rlk, gks, ct }
}

fn decrypt(ctx: &CkksContext, sk: &SecretKey, ct: &Ciphertext) -> Vec<f64> {
    let enc = CkksEncoder::new(ctx);
    enc.decode_real(&Decryptor::new(ctx, sk).decrypt(ct).unwrap())
        .unwrap()
}

/// Opens a session on `server` and registers the rig's keys into it.
fn register_session(server: &mut HeaxServer<'_>, r: &Rig) -> u64 {
    let reply = server.handle_frame(&client::open_session()).unwrap();
    let (session, _, _) = client::parse_reply(&reply).unwrap();
    for frame in [
        client::register_relin_key(session, &serialize_relin_key(&r.rlk)),
        client::register_galois_keys(session, &serialize_galois_keys(&r.gks)),
    ] {
        let (_, _, reply) = client::parse_reply(&server.handle_frame(&frame).unwrap()).unwrap();
        assert_eq!(reply, Reply::KeyRegistered);
    }
    session
}

/// Opens a cluster-modeled server with one registered session.
fn cluster_server<'a>(
    ctx: &'a CkksContext,
    system: HeaxSystem<'a>,
    r: &Rig,
    boards: usize,
    cores: usize,
) -> (HeaxServer<'a>, u64) {
    let mut server = HeaxServer::with_system(ctx, system)
        .with_cluster_model(boards, cores)
        .unwrap();
    let session = register_session(&mut server, r);
    (server, session)
}

/// Opens a modeled-backend server with one registered session.
fn modeled_server<'a>(
    ctx: &'a CkksContext,
    system: HeaxSystem<'a>,
    r: &Rig,
    cores: usize,
) -> (HeaxServer<'a>, u64) {
    let mut server = HeaxServer::with_system(ctx, system)
        .with_board_model(cores)
        .unwrap();
    let session = register_session(&mut server, r);
    (server, session)
}

/// Submits one chained stream (each op reads the parked intermediate
/// and re-parks it, closed by a wire-returned fetch) to `server`,
/// returning the number of requests queued.
fn submit_chain(
    server: &mut HeaxServer<'_>,
    session: u64,
    ct_bytes: &[u8],
    ops: &[StreamOp],
) -> u64 {
    let mut id = session << 32;
    let mut submit = |server: &mut HeaxServer<'_>, req: &Request<'_>| {
        id += 1;
        assert!(server
            .handle_frame(&client::request(session, id, req))
            .is_none());
    };
    submit(
        server,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: Some("acc"),
            operands: vec![WireOperand::Inline(ct_bytes)],
        },
    );
    let mut count = 1u64;
    for op in ops {
        let reqs: Vec<Request<'_>> = match op {
            StreamOp::Rotate(step) => vec![Request {
                op: OpCode::Rotate,
                step: *step,
                compress_reply: false,
                park_as: Some("acc"),
                operands: vec![WireOperand::Parked("acc")],
            }],
            StreamOp::Add => vec![Request {
                op: OpCode::Add,
                step: 0,
                compress_reply: false,
                park_as: Some("acc"),
                operands: vec![WireOperand::Parked("acc"), WireOperand::Parked("acc")],
            }],
            StreamOp::SquareRescale => vec![
                Request {
                    op: OpCode::SquareRelin,
                    step: 0,
                    compress_reply: false,
                    park_as: Some("acc"),
                    operands: vec![WireOperand::Parked("acc")],
                },
                Request {
                    op: OpCode::Rescale,
                    step: 0,
                    compress_reply: false,
                    park_as: Some("acc"),
                    operands: vec![WireOperand::Parked("acc")],
                },
            ],
        };
        for req in &reqs {
            submit(server, req);
            count += 1;
        }
    }
    submit(
        server,
        &Request {
            op: OpCode::Fetch,
            step: 0,
            compress_reply: false,
            park_as: None,
            operands: vec![WireOperand::Parked("acc")],
        },
    );
    count + 1
}

/// One step of a random chained op stream.
#[derive(Clone, Copy, Debug)]
enum StreamOp {
    Rotate(i64),
    Add,
    /// Square-relinearize then rescale (burns one level; capped at the
    /// chain depth by the generator).
    SquareRescale,
}

fn arb_stream() -> impl Strategy<Value = Vec<StreamOp>> {
    let choices = vec![
        StreamOp::Rotate(1),
        StreamOp::Rotate(2),
        StreamOp::Rotate(-1),
        StreamOp::Rotate(-2),
        StreamOp::Add,
        StreamOp::SquareRescale,
    ];
    prop::collection::vec(prop::sample::select(choices), 1..7).prop_map(|mut ops| {
        // The 4-prime chain affords two rescales; demote extras.
        let mut budget = 2;
        for op in ops.iter_mut() {
            if matches!(op, StreamOp::SquareRescale) {
                if budget == 0 {
                    *op = StreamOp::Rotate(1);
                } else {
                    budget -= 1;
                }
            }
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A chained stream (each op reads the parked intermediate and
    /// re-parks it) served by the modeled server is bit-identical to
    /// the evaluator applying the same ops, at every modeled core
    /// count.
    #[test]
    fn modeled_chain_matches_evaluator(ops in arb_stream(), seed in 0u64..1000) {
        let c = ctx();
        let r = rig(&c, seed);
        let eval = Evaluator::new(&c);

        // Golden chain through the evaluator.
        let mut want = deserialize_ciphertext(&serialize_ciphertext(&r.ct), &c).unwrap();
        for op in &ops {
            want = match op {
                StreamOp::Rotate(step) => eval.rotate(&want, *step, &r.gks).unwrap(),
                StreamOp::Add => eval.add(&want, &want).unwrap(),
                StreamOp::SquareRescale => {
                    let sq = eval.multiply_relin(&want, &want, &r.rlk).unwrap();
                    eval.rescale(&sq).unwrap()
                }
            };
        }

        for cores in CORES {
            let (mut server, session) = modeled_server(&c, system(&c), &r, cores);
            let ct_bytes = serialize_ciphertext(&r.ct);
            let mut id = 0u64;
            let mut submit = |server: &mut HeaxServer<'_>, req: &Request<'_>| {
                id += 1;
                assert!(server.handle_frame(&client::request(session, id, req)).is_none());
            };
            // Seed the chain: park the inline input under "acc".
            submit(&mut server, &Request {
                op: OpCode::Fetch,
                step: 0,
                compress_reply: false,
                park_as: Some("acc"),
                operands: vec![WireOperand::Inline(&ct_bytes)],
            });
            let mut expected_requests = 1u64;
            for op in &ops {
                let reqs: Vec<Request<'_>> = match op {
                    StreamOp::Rotate(step) => vec![Request {
                        op: OpCode::Rotate,
                        step: *step,
                        compress_reply: false,
                        park_as: Some("acc"),
                        operands: vec![WireOperand::Parked("acc")],
                    }],
                    StreamOp::Add => vec![Request {
                        op: OpCode::Add,
                        step: 0,
                        compress_reply: false,
                        park_as: Some("acc"),
                        operands: vec![WireOperand::Parked("acc"), WireOperand::Parked("acc")],
                    }],
                    StreamOp::SquareRescale => vec![
                        Request {
                            op: OpCode::SquareRelin,
                            step: 0,
                            compress_reply: false,
                            park_as: Some("acc"),
                            operands: vec![WireOperand::Parked("acc")],
                        },
                        Request {
                            op: OpCode::Rescale,
                            step: 0,
                            compress_reply: false,
                            park_as: Some("acc"),
                            operands: vec![WireOperand::Parked("acc")],
                        },
                    ],
                };
                for req in &reqs {
                    submit(&mut server, req);
                    expected_requests += 1;
                }
            }
            submit(&mut server, &Request {
                op: OpCode::Fetch,
                step: 0,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Parked("acc")],
            });
            expected_requests += 1;

            let replies = server.flush();
            let (_, _, last) = client::parse_reply(replies.last().unwrap()).unwrap();
            let Reply::Ciphertext(bytes) = last else {
                panic!("chain must end in a ciphertext reply, got {last:?}");
            };
            let got = deserialize_ciphertext(&bytes, &c).unwrap();
            prop_assert_eq!(&got, &want, "cores = {}", cores);

            // The model observed every request and billed real cycles.
            let stats = server.stats();
            let modeled = stats.modeled.expect("board model enabled");
            prop_assert_eq!(modeled.cores, cores);
            prop_assert_eq!(modeled.modeled_requests, expected_requests);
            prop_assert!(modeled.modeled_cycles > 0);
            prop_assert!(modeled.fifo_high_water <= 2);
            prop_assert!(!modeled.last_bound.is_empty());
            prop_assert!(server.board_report().is_some());
            let billed: u64 = stats.per_op.iter().map(|&(_, s)| s.modeled_cycles).sum();
            prop_assert_eq!(billed, modeled.core_busy_cycles);
        }
    }

    /// A fan-out stream (every rotation reads the same input, so the
    /// batch fuses them into one hoisted group) decrypts to the same
    /// values as sequential evaluator rotations, at every modeled core
    /// count (hoisting is decrypt-equal, not bit-equal).
    #[test]
    fn modeled_fanout_matches_evaluator(
        steps in prop::collection::vec(prop::sample::select(STEPS.to_vec()), 2..6),
        seed in 0u64..1000,
    ) {
        let c = ctx();
        let r = rig(&c, seed);
        let eval = Evaluator::new(&c);
        let want: Vec<Vec<f64>> = steps
            .iter()
            .map(|&s| decrypt(&c, &r.sk, &eval.rotate(&r.ct, s, &r.gks).unwrap()))
            .collect();

        for cores in CORES {
            let (mut server, session) = modeled_server(&c, system(&c), &r, cores);
            let ct_bytes = serialize_ciphertext(&r.ct);
            for (i, &step) in steps.iter().enumerate() {
                let frame = client::rotate(session, i as u64 + 1, &ct_bytes, step);
                assert!(server.handle_frame(&frame).is_none());
            }
            let replies = server.flush();
            prop_assert_eq!(replies.len(), steps.len());
            for (reply, want_vals) in replies.iter().zip(&want) {
                let (_, _, body) = client::parse_reply(reply).unwrap();
                let Reply::Ciphertext(bytes) = body else {
                    panic!("expected ciphertext reply, got {body:?}");
                };
                let got = decrypt(&c, &r.sk, &deserialize_ciphertext(&bytes, &c).unwrap());
                for (g, w) in got.iter().zip(want_vals).take(16) {
                    prop_assert!((g - w).abs() < 2e-2, "cores {}: {} vs {}", cores, g, w);
                }
            }
            // Identical inputs fuse into one hoisted group, modeled as
            // one rotate-many op.
            let stats = server.stats();
            let modeled = stats.modeled.expect("board model enabled");
            prop_assert_eq!(modeled.modeled_ops, 1);
            prop_assert_eq!(modeled.modeled_requests, steps.len() as u64);
            prop_assert_eq!(stats.hoisted_groups, 1);
        }
    }

    /// The same chained stream served with the multi-board **cluster**
    /// model attached stays bit-identical to the evaluator at every
    /// boards × cores shape — routing, key replication and work
    /// stealing are accounting only and never perturb serving.
    #[test]
    fn cluster_modeled_chain_matches_evaluator(ops in arb_stream(), seed in 0u64..1000) {
        let c = ctx();
        let r = rig(&c, seed);
        let eval = Evaluator::new(&c);

        let mut want = deserialize_ciphertext(&serialize_ciphertext(&r.ct), &c).unwrap();
        for op in &ops {
            want = match op {
                StreamOp::Rotate(step) => eval.rotate(&want, *step, &r.gks).unwrap(),
                StreamOp::Add => eval.add(&want, &want).unwrap(),
                StreamOp::SquareRescale => {
                    let sq = eval.multiply_relin(&want, &want, &r.rlk).unwrap();
                    eval.rescale(&sq).unwrap()
                }
            };
        }

        for (boards, cores) in CLUSTERS {
            let (mut server, session) = cluster_server(&c, system(&c), &r, boards, cores);
            let ct_bytes = serialize_ciphertext(&r.ct);
            let mut id = 0u64;
            let mut submit = |server: &mut HeaxServer<'_>, req: &Request<'_>| {
                id += 1;
                assert!(server.handle_frame(&client::request(session, id, req)).is_none());
            };
            submit(&mut server, &Request {
                op: OpCode::Fetch,
                step: 0,
                compress_reply: false,
                park_as: Some("acc"),
                operands: vec![WireOperand::Inline(&ct_bytes)],
            });
            let mut expected_requests = 1u64;
            for op in &ops {
                let reqs: Vec<Request<'_>> = match op {
                    StreamOp::Rotate(step) => vec![Request {
                        op: OpCode::Rotate,
                        step: *step,
                        compress_reply: false,
                        park_as: Some("acc"),
                        operands: vec![WireOperand::Parked("acc")],
                    }],
                    StreamOp::Add => vec![Request {
                        op: OpCode::Add,
                        step: 0,
                        compress_reply: false,
                        park_as: Some("acc"),
                        operands: vec![WireOperand::Parked("acc"), WireOperand::Parked("acc")],
                    }],
                    StreamOp::SquareRescale => vec![
                        Request {
                            op: OpCode::SquareRelin,
                            step: 0,
                            compress_reply: false,
                            park_as: Some("acc"),
                            operands: vec![WireOperand::Parked("acc")],
                        },
                        Request {
                            op: OpCode::Rescale,
                            step: 0,
                            compress_reply: false,
                            park_as: Some("acc"),
                            operands: vec![WireOperand::Parked("acc")],
                        },
                    ],
                };
                for req in &reqs {
                    submit(&mut server, req);
                    expected_requests += 1;
                }
            }
            submit(&mut server, &Request {
                op: OpCode::Fetch,
                step: 0,
                compress_reply: false,
                park_as: None,
                operands: vec![WireOperand::Parked("acc")],
            });
            expected_requests += 1;

            let replies = server.flush();
            let (_, _, last) = client::parse_reply(replies.last().unwrap()).unwrap();
            let Reply::Ciphertext(bytes) = last else {
                panic!("chain must end in a ciphertext reply, got {last:?}");
            };
            let got = deserialize_ciphertext(&bytes, &c).unwrap();
            prop_assert_eq!(&got, &want, "boards = {}, cores = {}", boards, cores);

            // The cluster model observed the whole flush: one routing
            // miss replicated the session's keys, the rest hit.
            let stats = server.stats();
            let cluster = stats.cluster.expect("cluster model enabled");
            prop_assert_eq!(cluster.boards, boards);
            prop_assert_eq!(cluster.cores_per_board, cores);
            prop_assert_eq!(cluster.modeled_requests, expected_requests);
            prop_assert!(cluster.modeled_cycles > 0);
            if cluster.routing_hits + cluster.routing_misses > 0 {
                prop_assert!(cluster.routing_misses <= 1, "one session uploads once");
                prop_assert_eq!(
                    cluster.replication_bytes > 0,
                    cluster.routing_misses == 1
                );
            }
            prop_assert!(server.cluster_report().is_some());
            let billed: u64 = stats.per_session.iter().map(|&(_, s)| s.modeled_cycles).sum();
            prop_assert!(billed > 0, "per-session attribution must flow from the cluster");
        }
    }

    /// A random seeded fault plan — board crashes, slowdowns, link
    /// stalls, DMA degradation, corrupted resident keys — attached to
    /// the cluster model reshapes modeled placement and timing **only**:
    /// every reply of a two-session workload stays byte-identical to
    /// the fault-free server's (hence decrypt-identical), at every
    /// pinned boards × cores shape in {2, 4} × {1, 4}. CI re-runs this
    /// under `HEAX_THREADS=4` in the chaos job.
    #[test]
    fn faulted_cluster_serving_is_byte_identical(
        ops_a in arb_stream(),
        ops_b in arb_stream(),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        crash_level in 0u32..=2,
    ) {
        let c = ctx();
        let r = rig(&c, seed);
        let eval = Evaluator::new(&c);
        let mut want = deserialize_ciphertext(&serialize_ciphertext(&r.ct), &c).unwrap();
        for op in &ops_a {
            want = match op {
                StreamOp::Rotate(step) => eval.rotate(&want, *step, &r.gks).unwrap(),
                StreamOp::Add => eval.add(&want, &want).unwrap(),
                StreamOp::SquareRescale => {
                    let sq = eval.multiply_relin(&want, &want, &r.rlk).unwrap();
                    eval.rescale(&sq).unwrap()
                }
            };
        }

        for (boards, cores) in [(2usize, 1usize), (2, 4), (4, 1), (4, 4)] {
            let (mut healthy, sess_a) = cluster_server(&c, system(&c), &r, boards, cores);
            let sess_b = register_session(&mut healthy, &r);
            let mut faulted = HeaxServer::with_system(&c, system(&c))
                .with_cluster_model(boards, cores)
                .unwrap();
            prop_assert_eq!(register_session(&mut faulted, &r), sess_a);
            prop_assert_eq!(register_session(&mut faulted, &r), sess_b);

            let rates = FaultRates {
                crash: crash_level as f64 * 0.25,
                slowdown: 0.4,
                link: 0.4,
                dma: 0.4,
                ksk_corruption: 0.4,
            };
            let plan = FaultPlan::generate(fault_seed, boards, 1 << 22, &[sess_a, sess_b], &rates);
            let plan_empty = plan.is_empty();
            faulted = faulted.with_fault_plan(plan);

            let ct_bytes = serialize_ciphertext(&r.ct);
            let mut count_a = 0usize;
            for server in [&mut healthy, &mut faulted] {
                count_a = submit_chain(server, sess_a, &ct_bytes, &ops_a) as usize;
                submit_chain(server, sess_b, &ct_bytes, &ops_b);
            }
            let replies_h = healthy.flush();
            let replies_f = faulted.flush();
            prop_assert_eq!(
                &replies_h, &replies_f,
                "faults must never perturb serving (boards {}, cores {})", boards, cores
            );

            // The faulted chain still decrypts to the evaluator golden
            // (session A's closing fetch is its last reply).
            let (_, _, body) = client::parse_reply(&replies_f[count_a - 1]).unwrap();
            let Reply::Ciphertext(bytes) = body else {
                panic!("chain must end in a ciphertext reply, got {body:?}");
            };
            prop_assert_eq!(&deserialize_ciphertext(&bytes, &c).unwrap(), &want);

            // Fault accounting stays coherent: never more survivors than
            // boards, an empty plan loses nothing, and recovery work
            // only appears alongside the faults that caused it.
            let s = faulted.stats().cluster.expect("cluster model enabled");
            prop_assert!(s.boards_alive <= boards);
            if plan_empty {
                prop_assert_eq!(s.boards_alive, boards);
                prop_assert_eq!(s.failovers, 0);
                prop_assert_eq!(s.re_replications, 0);
                prop_assert_eq!(s.recovery_cycles, 0);
            }
            prop_assert!(s.re_replications >= s.failovers);
            prop_assert!(s.re_replications >= s.corrupt_ksk_evictions);
        }
    }
}
