//! CKKS encryption parameters and the three HEAX parameter sets (Table 2).

use heax_math::primes::{default_chain_bits, generate_prime_chain};
use heax_math::MathError;

use crate::CkksError;

/// The three HE parameter sets the paper evaluates (Table 2).
///
/// | Set | n | ⌊log qp⌋+1 | k |
/// |---|---|---|---|
/// | Set-A | 2¹² | 109 | 2 |
/// | Set-B | 2¹³ | 218 | 4 |
/// | Set-C | 2¹⁴ | 438 | 8 |
///
/// `k` is the number of RNS components of the ciphertext modulus `q`; one
/// additional *special* prime `p` completes the chain. All sets target
/// 128-bit classical security per the HE security standard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamSet {
    /// `n = 4096`, 109-bit `qp`, `k = 2`.
    SetA,
    /// `n = 8192`, 218-bit `qp`, `k = 4`.
    SetB,
    /// `n = 16384`, 438-bit `qp`, `k = 8`.
    SetC,
}

impl ParamSet {
    /// All three sets, in paper order.
    pub const ALL: [ParamSet; 3] = [ParamSet::SetA, ParamSet::SetB, ParamSet::SetC];

    /// Ring degree `n`.
    pub fn n(self) -> usize {
        match self {
            ParamSet::SetA => 1 << 12,
            ParamSet::SetB => 1 << 13,
            ParamSet::SetC => 1 << 14,
        }
    }

    /// Number of RNS components of `q` (the paper's `k`).
    pub fn k(self) -> usize {
        match self {
            ParamSet::SetA => 2,
            ParamSet::SetB => 4,
            ParamSet::SetC => 8,
        }
    }

    /// Total modulus bits `⌊log qp⌋ + 1` (Table 2).
    pub fn total_modulus_bits(self) -> u32 {
        match self {
            ParamSet::SetA => 109,
            ParamSet::SetB => 218,
            ParamSet::SetC => 438,
        }
    }

    /// Default encoding scale Δ.
    pub fn default_scale(self) -> f64 {
        match self {
            ParamSet::SetA => (1u64 << 30) as f64,
            ParamSet::SetB => (1u64 << 40) as f64,
            ParamSet::SetC => (1u64 << 40) as f64,
        }
    }

    /// Display name used in tables ("Set-A"…).
    pub fn name(self) -> &'static str {
        match self {
            ParamSet::SetA => "Set-A",
            ParamSet::SetB => "Set-B",
            ParamSet::SetC => "Set-C",
        }
    }
}

impl core::fmt::Display for ParamSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Validated CKKS encryption parameters.
///
/// # Examples
///
/// ```
/// use heax_ckks::params::{CkksParams, ParamSet};
///
/// # fn main() -> Result<(), heax_ckks::CkksError> {
/// let params = CkksParams::from_set(ParamSet::SetA)?;
/// assert_eq!(params.n(), 4096);
/// assert_eq!(params.k(), 2);
/// assert_eq!(params.moduli().len(), 3); // k ciphertext primes + special
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CkksParams {
    n: usize,
    /// Ciphertext primes `p_0..p_{k-1}` followed by the special prime.
    moduli: Vec<u64>,
    scale: f64,
}

impl CkksParams {
    /// Builds parameters for one of the paper's sets, generating the
    /// SEAL-style default prime chain.
    ///
    /// # Errors
    ///
    /// Propagates prime-generation failures (which cannot occur for the
    /// built-in sets on a correct build).
    pub fn from_set(set: ParamSet) -> Result<Self, CkksError> {
        let n = set.n();
        let bits = default_chain_bits(n).expect("built-in set");
        let moduli = generate_prime_chain(bits, n)?;
        Self::new(n, moduli, set.default_scale())
    }

    /// Builds custom parameters from explicit prime moduli. The last
    /// modulus is the special prime; at least two moduli are required.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParameters`] if `n` is not a power of two
    /// of at least 8, fewer than two moduli are given, moduli repeat, any
    /// modulus is not NTT-friendly for `n`, or the scale is not positive.
    pub fn new(n: usize, moduli: Vec<u64>, scale: f64) -> Result<Self, CkksError> {
        if !n.is_power_of_two() || n < 8 {
            return Err(CkksError::InvalidParameters {
                reason: format!("ring degree {n} must be a power of two >= 8"),
            });
        }
        if moduli.len() < 2 {
            return Err(CkksError::InvalidParameters {
                reason: "need at least one ciphertext prime and one special prime".into(),
            });
        }
        if !(scale.is_finite() && scale >= 2.0) {
            return Err(CkksError::InvalidParameters {
                reason: format!("scale {scale} must be finite and >= 2"),
            });
        }
        for (i, &p) in moduli.iter().enumerate() {
            if p % (2 * n as u64) != 1 {
                return Err(CkksError::Math(MathError::NoPrimitiveRoot {
                    modulus: p,
                    n,
                }));
            }
            if !heax_math::primes::is_prime(p) {
                return Err(CkksError::InvalidParameters {
                    reason: format!("modulus {p} is not prime"),
                });
            }
            if moduli[..i].contains(&p) {
                return Err(CkksError::InvalidParameters {
                    reason: format!("modulus {p} repeats"),
                });
            }
        }
        Ok(Self { n, moduli, scale })
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of complex slots (`n/2`).
    #[inline]
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// Number of ciphertext primes `k` (excludes the special prime).
    #[inline]
    pub fn k(&self) -> usize {
        self.moduli.len() - 1
    }

    /// Maximum level index (`k - 1`).
    #[inline]
    pub fn max_level(&self) -> usize {
        self.k() - 1
    }

    /// All moduli: ciphertext primes then the special prime.
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// The special prime `p`.
    #[inline]
    pub fn special_modulus(&self) -> u64 {
        *self.moduli.last().expect("non-empty")
    }

    /// Default encoding scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// `⌊log₂(qp)⌋ + 1`, the Table 2 "total modulus bits" figure.
    pub fn total_modulus_bits(&self) -> u32 {
        self.moduli.iter().map(|&p| 64 - p.leading_zeros()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_match_table2() {
        for set in ParamSet::ALL {
            let p = CkksParams::from_set(set).unwrap();
            assert_eq!(p.n(), set.n());
            assert_eq!(p.k(), set.k());
            assert_eq!(p.total_modulus_bits(), set.total_modulus_bits());
            assert_eq!(p.slots(), set.n() / 2);
        }
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        // Non power-of-two degree.
        assert!(CkksParams::new(100, vec![97, 193], 16.0).is_err());
        // Too few moduli.
        assert!(CkksParams::new(16, vec![97], 16.0).is_err());
        // Non-NTT-friendly modulus (97 % 32 = 1 ok for n=16; 101 is not).
        assert!(CkksParams::new(16, vec![97, 101], 16.0).is_err());
        // Repeated modulus.
        assert!(CkksParams::new(16, vec![97, 97], 16.0).is_err());
        // Composite modulus ≡ 1 mod 32: 33*... use 1057 = 7*151, 1057 % 32 = 1.
        assert!(CkksParams::new(16, vec![97, 1057], 16.0).is_err());
        // Bad scale.
        assert!(CkksParams::new(16, vec![97, 193], f64::NAN).is_err());
        assert!(CkksParams::new(16, vec![97, 193], 0.5).is_err());
        // Valid small config.
        assert!(CkksParams::new(16, vec![97, 193], 16.0).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(ParamSet::SetA.to_string(), "Set-A");
        assert_eq!(ParamSet::SetC.name(), "Set-C");
    }
}
