//! RNS flooring (Algorithm 6): divide-and-floor by one modulus of the
//! basis, entirely in RNS/NTT form.
//!
//! `Floor(C̃, p)` takes the RNS+NTT form of `c ∈ R_{q·p}` and produces the
//! RNS+NTT form of `⌊c/p⌋ ∈ R_q`:
//!
//! 1. `a ← INTT_p(c̃_p)` — bring the dropped residue to coefficient form;
//! 2. for every remaining modulus `p_i`: `r ← Mod(a, p_i)`,
//!    `r̃ ← NTT_{p_i}(r)`, `c̃'_i ← (c̃_i − r̃)·[p^{-1}]_{p_i}`.
//!
//! Both rescaling (dropping the last ciphertext prime) and modulus
//! switching at the end of key switching (dropping the special prime) are
//! instances of this routine — in the hardware they are the `INTT1 → NTT1 →
//! MS` tail of the KeySwitch module (Figure 5).

use heax_math::exec::{self, Executor};
use heax_math::poly::{Representation, RnsPoly};

use crate::context::CkksContext;
use crate::CkksError;

/// Floors away the **special prime** into a caller-provided output: input
/// spans `p_0..p_level` plus the special prime (as its last residue);
/// `out` must be pre-shaped over `p_0..p_level` in NTT form. `drop_coeff`
/// and `lane` are scratch buffers (see [`crate::scratch`]); the call is
/// allocation-free once they have capacity.
///
/// # Errors
///
/// Returns [`CkksError::Math`] if the input is not in NTT form, its
/// residue count is not `level + 2`, or `out` has the wrong shape.
pub(crate) fn floor_special_into(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    exec: &dyn Executor,
    drop_coeff: &mut Vec<u64>,
    lane: &mut [u64],
    out: &mut RnsPoly,
) -> Result<(), CkksError> {
    floor_impl_into(c, ctx, level, true, exec, drop_coeff, lane, out)
}

/// Floors away the **last ciphertext prime** `p_level` (rescaling) into a
/// caller-provided output: input spans `p_0..p_level`; `out` must be
/// pre-shaped over `p_0..p_{level-1}` in NTT form.
///
/// # Errors
///
/// Returns [`CkksError::LevelExhausted`] at level 0 and [`CkksError::Math`]
/// on representation/shape mismatches.
pub(crate) fn floor_last_into(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    exec: &dyn Executor,
    drop_coeff: &mut Vec<u64>,
    lane: &mut [u64],
    out: &mut RnsPoly,
) -> Result<(), CkksError> {
    if level == 0 {
        return Err(CkksError::LevelExhausted);
    }
    floor_impl_into(c, ctx, level, false, exec, drop_coeff, lane, out)
}

/// Floors **both** key-switch accumulators by the special prime in one
/// pass: the two inverse transforms of the dropped residues and the two
/// forward transforms per remaining modulus run as interleaved-butterfly
/// pairs ([`heax_math::ntt::NttTable::forward_auto2`]), giving the core
/// two independent multiply chains to overlap — the modulus-switch tail
/// is the per-rotation bottleneck of hoisted rotation, so this pairing is
/// what its throughput rides on. Inputs may be lazy accumulators (any
/// u64 congruent to the residue); outputs are bit-identical to two
/// [`floor_special_into`] calls.
///
/// `lane` must hold at least `2·(level+1)·n` words.
///
/// # Errors
///
/// Same as [`floor_special_into`], checked for both operands.
#[allow(clippy::too_many_arguments)]
pub(crate) fn floor_special_pair_into(
    c0: &RnsPoly,
    c1: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    exec: &dyn Executor,
    drop0: &mut Vec<u64>,
    drop1: &mut Vec<u64>,
    lane: &mut [u64],
    out0: &mut RnsPoly,
    out1: &mut RnsPoly,
) -> Result<(), CkksError> {
    let n = ctx.n();
    let keep = level + 1;
    let out_moduli = ctx.level_moduli(level);
    for c in [c0, c1] {
        if c.representation() != Representation::Ntt {
            return Err(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            ));
        }
        if c.num_residues() != keep + 1 {
            return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
                expected: keep + 1,
                got: c.num_residues(),
            }));
        }
    }
    for out in [&*out0, &*out1] {
        if out.n() != n || out.num_residues() != out_moduli.len() {
            return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
                expected: out_moduli.len() * n,
                got: out.num_residues() * out.n(),
            }));
        }
    }
    let sp = ctx.special_modulus();
    let sp_table = ctx.special_ntt_table();
    let consts = ctx.modswitch_constants(level);

    // Step 1 ×2: reduce-and-copy the dropped residues, inverse-transform
    // them as an interleaved pair (same special-prime table).
    drop0.clear();
    drop0.extend(c0.residue(keep).iter().map(|&x| sp.reduce_u64(x)));
    drop1.clear();
    drop1.extend(c1.residue(keep).iter().map(|&x| sp.reduce_u64(x)));
    sp_table.inverse_auto2(drop0, drop1);

    // Step 2 ×2: per remaining modulus, reduce both coefficient vectors
    // into the limb's private lanes, forward-transform them as a pair,
    // and fold into both outputs.
    let a0 = &*drop0;
    let a1 = &*drop1;
    let out_len = out_moduli.len() * n;
    let (lane0, rest) = lane.split_at_mut(out_len);
    let lane1 = &mut rest[..out_len];
    out0.set_representation(Representation::Ntt);
    out1.set_representation(Representation::Ntt);
    let (d0, d1) = (out0.data_mut(), out1.data_mut());
    exec::for_each_limb4(
        exec,
        d0,
        d1,
        lane0,
        lane1,
        n,
        |i, dst0, dst1, buf0, buf1| {
            let pi = &out_moduli[i];
            let table = ctx.ntt_table(i);
            // Reduce-on-load fused into the first butterfly stage; the lazy
            // kernel also skips its final normalization, leaving r̃ in
            // [0, 4p) — the congruence offset below absorbs that.
            table.forward_reduced_auto2(a0, a1, buf0, buf1);
            let off = if table.reduced_kernel_is_lazy() {
                4 * pi.value()
            } else {
                pi.value()
            };
            let inv = consts.inv(i);
            let src0 = c0.residue(i);
            let src1 = c1.residue(i);
            for (j, (d0, d1)) in dst0.iter_mut().zip(dst1.iter_mut()).enumerate() {
                // (src − r̃)·p⁻¹ computed from lazy operands: the MulRed final
                // correction canonicalizes, so outputs are bit-identical to
                // the strict single-residue floor.
                *d0 = inv.mul_red(pi.reduce_u64(src0[j]) + off - buf0[j], pi);
                *d1 = inv.mul_red(pi.reduce_u64(src1[j]) + off - buf1[j], pi);
            }
        },
    );
    Ok(())
}

/// Allocating convenience wrapper over [`floor_special_into`] for cold
/// paths (encryption); hot paths go through the evaluator's scratch.
///
/// # Errors
///
/// Same as [`floor_special_into`].
pub(crate) fn floor_special(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    exec: &dyn Executor,
) -> Result<RnsPoly, CkksError> {
    let mut drop_coeff = Vec::new();
    let mut lane = vec![0u64; (level + 1) * ctx.n()];
    let mut out = RnsPoly::zero(ctx.n(), ctx.level_moduli(level), Representation::Ntt);
    floor_special_into(c, ctx, level, exec, &mut drop_coeff, &mut lane, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn floor_impl_into(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    special: bool,
    exec: &dyn Executor,
    drop_coeff: &mut Vec<u64>,
    lane: &mut [u64],
    out: &mut RnsPoly,
) -> Result<(), CkksError> {
    if c.representation() != Representation::Ntt {
        return Err(CkksError::Math(
            heax_math::MathError::RepresentationMismatch,
        ));
    }
    let keep = if special { level + 1 } else { level };
    if c.num_residues() != keep + 1 {
        return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
            expected: keep + 1,
            got: c.num_residues(),
        }));
    }
    let n = ctx.n();
    let out_moduli = ctx.level_moduli(if special { level } else { level - 1 });
    if out.n() != n || out.num_residues() != out_moduli.len() {
        return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
            expected: out_moduli.len() * n,
            got: out.num_residues() * out.n(),
        }));
    }
    let drop_table = if special {
        ctx.special_ntt_table()
    } else {
        ctx.ntt_table(level)
    };
    let consts = if special {
        ctx.modswitch_constants(level)
    } else {
        ctx.rescale_constants(level)
    };

    // Step 1: INTT the dropped residue (Algorithm 6, line 1). Inputs to
    // this single-residue floor are always canonical [0, p) residues
    // (rescaling, encryption, the Barrett reference path); only the
    // paired variant above accepts lazy accumulators.
    drop_coeff.clear();
    drop_coeff.extend_from_slice(c.residue(keep));
    drop_table.inverse_auto(drop_coeff);

    // Step 2: fold into every remaining modulus (lines 2-7) — one
    // independent limb per modulus, dispatched across the executor; each
    // limb reduces and re-NTTs inside its own scratch lane.
    let a = &*drop_coeff;
    let lane = &mut lane[..out_moduli.len() * n];
    out.set_representation(Representation::Ntt);
    exec::for_each_limb2(exec, out.data_mut(), lane, n, |i, dst, buf| {
        let pi = &out_moduli[i];
        for (b, &x) in buf.iter_mut().zip(a) {
            *b = pi.reduce_u64(x);
        }
        ctx.ntt_table(i).forward_auto(buf);
        let inv = consts.inv(i);
        let src = c.residue(i);
        for (j, d) in dst.iter_mut().enumerate() {
            *d = inv.mul_red(pi.sub_mod(src[j], buf[j]), pi);
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use heax_math::exec::Sequential;

    /// Allocating convenience wrapper over the rescale into-variant.
    fn floor_last(
        c: &RnsPoly,
        ctx: &CkksContext,
        level: usize,
        exec: &dyn Executor,
    ) -> Result<RnsPoly, CkksError> {
        if level == 0 {
            return Err(CkksError::LevelExhausted);
        }
        let mut drop = Vec::new();
        let mut lane = vec![0u64; level * ctx.n()];
        let mut out = RnsPoly::zero(ctx.n(), ctx.level_moduli(level - 1), Representation::Ntt);
        floor_last_into(c, ctx, level, exec, &mut drop, &mut lane, &mut out)?;
        Ok(out)
    }

    /// Flooring an exact multiple of the dropped prime divides exactly.
    #[test]
    fn floor_exact_multiple() {
        let ctx = CkksContext::new(small()).unwrap();
        let n = ctx.n();
        let level = ctx.max_level();
        let k = ctx.params().k();
        let p_sp = ctx.special_modulus().value();

        // c = p_sp * v for a small v: floor(c / p_sp) == v.
        let mut chain: Vec<_> = ctx.level_moduli(level).to_vec();
        chain.push(*ctx.special_modulus());
        let mut c = RnsPoly::zero(n, &chain, Representation::Coefficient);
        let v: Vec<u64> = (0..n as u64).map(|j| j % 50).collect();
        for (i, m) in chain.iter().enumerate() {
            for (j, dst) in c.residue_mut(i).iter_mut().enumerate() {
                *dst = m.mul_mod(m.reduce_u64(p_sp), m.reduce_u64(v[j]));
            }
        }
        let mut tables: Vec<_> = (0..k).map(|i| ctx.ntt_table(i).clone()).collect();
        tables.push(ctx.special_ntt_table().clone());
        c.ntt_forward(&tables).unwrap();

        let mut floored = floor_special(&c, &ctx, level, &Sequential).unwrap();
        floored.ntt_inverse(ctx.ntt_tables()).unwrap();
        for (i, _m) in ctx.level_moduli(level).iter().enumerate() {
            for (j, &got) in floored.residue(i).iter().enumerate() {
                assert_eq!(got, v[j] % ctx.moduli()[i].value(), "res {i} coeff {j}");
            }
        }
    }

    /// Flooring a general value is off by at most 1 from true division
    /// (the floor of the centered representative differs by the fractional
    /// part only).
    #[test]
    fn floor_general_value_close() {
        let ctx = CkksContext::new(small()).unwrap();
        let n = ctx.n();
        let level = 1usize; // basis p0, p1; drop p1 via rescale path
        let p0 = ctx.moduli()[0];
        let p1 = ctx.moduli()[1];

        // Known integer x in [0, p0*p1): floor path vs integer division.
        let x: u128 = 0x1234_5678_9abc_def0;
        let moduli = ctx.level_moduli(level).to_vec();
        let mut c = RnsPoly::zero(n, &moduli, Representation::Coefficient);
        c.residue_mut(0)[0] = (x % p0.value() as u128) as u64;
        c.residue_mut(1)[0] = (x % p1.value() as u128) as u64;
        let tables: Vec<_> = (0..2).map(|i| ctx.ntt_table(i).clone()).collect();
        c.ntt_forward(&tables).unwrap();

        let mut floored = floor_last(&c, &ctx, level, &Sequential).unwrap();
        assert_eq!(floored.num_residues(), 1);
        floored.ntt_inverse(&tables[..1]).unwrap();
        let got = floored.residue(0)[0];
        let expect = (x / p1.value() as u128) % p0.value() as u128;
        let diff = (got as i128 - expect as i128).rem_euclid(p0.value() as i128);
        assert!(
            diff <= 1 || diff >= p0.value() as i128 - 1,
            "floor deviates by more than 1: got {got}, expect {expect}"
        );
    }

    #[test]
    fn paired_floor_matches_two_singles() {
        let ctx = CkksContext::new(small()).unwrap();
        let n = ctx.n();
        let level = ctx.max_level();
        let mut chain: Vec<_> = ctx.level_moduli(level).to_vec();
        chain.push(*ctx.special_modulus());
        let mut c0 = RnsPoly::zero(n, &chain, Representation::Ntt);
        let mut c1 = RnsPoly::zero(n, &chain, Representation::Ntt);
        // Canonical inputs for the single-residue oracle…
        for (i, m) in chain.iter().enumerate() {
            for j in 0..n {
                c0.residue_mut(i)[j] = (j as u64 * 131 + i as u64).wrapping_mul(3) % m.value();
                c1.residue_mut(i)[j] = (j as u64 * 31 + 7).wrapping_mul(5) % m.value();
            }
        }
        let s0 = floor_special(&c0, &ctx, level, &Sequential).unwrap();
        let s1 = floor_special(&c1, &ctx, level, &Sequential).unwrap();
        // …and lazy representatives of the same values for the paired
        // variant, which must reduce them itself.
        for (i, m) in chain.iter().enumerate() {
            for j in 0..n {
                if j % 3 == 0 {
                    c0.residue_mut(i)[j] += m.value();
                }
                if j % 2 == 0 {
                    c1.residue_mut(i)[j] += 2 * m.value();
                }
            }
        }
        let mut drop0 = Vec::new();
        let mut drop1 = Vec::new();
        let mut lane = vec![0u64; 2 * (level + 1) * n];
        let mut p0 = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
        let mut p1 = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
        floor_special_pair_into(
            &c0,
            &c1,
            &ctx,
            level,
            &Sequential,
            &mut drop0,
            &mut drop1,
            &mut lane,
            &mut p0,
            &mut p1,
        )
        .unwrap();
        assert_eq!(p0, s0);
        assert_eq!(p1, s1);
    }

    #[test]
    fn floor_at_level_zero_is_exhausted() {
        let ctx = CkksContext::new(small()).unwrap();
        let c = RnsPoly::zero(ctx.n(), ctx.level_moduli(0), Representation::Ntt);
        assert!(matches!(
            floor_last(&c, &ctx, 0, &Sequential),
            Err(CkksError::LevelExhausted)
        ));
    }

    #[test]
    fn floor_checks_shape() {
        let ctx = CkksContext::new(small()).unwrap();
        // Wrong representation.
        let mut chain: Vec<_> = ctx.level_moduli(ctx.max_level()).to_vec();
        chain.push(*ctx.special_modulus());
        let c = RnsPoly::zero(ctx.n(), &chain, Representation::Coefficient);
        assert!(floor_special(&c, &ctx, ctx.max_level(), &Sequential).is_err());
        // Wrong residue count.
        let c = RnsPoly::zero(ctx.n(), &chain[..2], Representation::Ntt);
        assert!(floor_special(&c, &ctx, ctx.max_level(), &Sequential).is_err());
    }
}
