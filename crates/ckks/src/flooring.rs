//! RNS flooring (Algorithm 6): divide-and-floor by one modulus of the
//! basis, entirely in RNS/NTT form.
//!
//! `Floor(C̃, p)` takes the RNS+NTT form of `c ∈ R_{q·p}` and produces the
//! RNS+NTT form of `⌊c/p⌋ ∈ R_q`:
//!
//! 1. `a ← INTT_p(c̃_p)` — bring the dropped residue to coefficient form;
//! 2. for every remaining modulus `p_i`: `r ← Mod(a, p_i)`,
//!    `r̃ ← NTT_{p_i}(r)`, `c̃'_i ← (c̃_i − r̃)·[p^{-1}]_{p_i}`.
//!
//! Both rescaling (dropping the last ciphertext prime) and modulus
//! switching at the end of key switching (dropping the special prime) are
//! instances of this routine — in the hardware they are the `INTT1 → NTT1 →
//! MS` tail of the KeySwitch module (Figure 5).

use heax_math::exec::{self, Executor};
use heax_math::poly::{Representation, RnsPoly};

use crate::context::CkksContext;
use crate::CkksError;

/// Floors away the **special prime**: input spans `p_0..p_level` plus the
/// special prime (as its last residue); output spans `p_0..p_level`.
///
/// # Errors
///
/// Returns [`CkksError::Math`] if the input is not in NTT form or its
/// residue count is not `level + 2`.
pub(crate) fn floor_special(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    exec: &dyn Executor,
) -> Result<RnsPoly, CkksError> {
    floor_impl(c, ctx, level, true, exec)
}

/// Floors away the **last ciphertext prime** `p_level` (rescaling): input
/// spans `p_0..p_level`; output spans `p_0..p_{level-1}`.
///
/// # Errors
///
/// Returns [`CkksError::LevelExhausted`] at level 0 and [`CkksError::Math`]
/// on representation mismatches.
pub(crate) fn floor_last(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    exec: &dyn Executor,
) -> Result<RnsPoly, CkksError> {
    if level == 0 {
        return Err(CkksError::LevelExhausted);
    }
    floor_impl(c, ctx, level, false, exec)
}

fn floor_impl(
    c: &RnsPoly,
    ctx: &CkksContext,
    level: usize,
    special: bool,
    exec: &dyn Executor,
) -> Result<RnsPoly, CkksError> {
    if c.representation() != Representation::Ntt {
        return Err(CkksError::Math(
            heax_math::MathError::RepresentationMismatch,
        ));
    }
    let keep = if special { level + 1 } else { level };
    if c.num_residues() != keep + 1 {
        return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
            expected: keep + 1,
            got: c.num_residues(),
        }));
    }
    let n = ctx.n();
    let drop_table = if special {
        ctx.special_ntt_table()
    } else {
        ctx.ntt_table(level)
    };
    let consts = if special {
        ctx.modswitch_constants(level)
    } else {
        ctx.rescale_constants(level)
    };

    // Step 1: INTT the dropped residue (Algorithm 6, line 1).
    let mut a = c.residue(keep).to_vec();
    drop_table.inverse_auto(&mut a);

    // Step 2: fold into every remaining modulus (lines 2-7) — one
    // independent limb per modulus, dispatched across the executor.
    let out_moduli = ctx.level_moduli(if special { level } else { level - 1 });
    let mut out = RnsPoly::zero(n, out_moduli, Representation::Ntt);
    let a = &a;
    exec::for_each_limb(exec, out.data_mut(), n, |i, dst| {
        let pi = &out_moduli[i];
        let mut r: Vec<u64> = a.iter().map(|&x| pi.reduce_u64(x)).collect();
        ctx.ntt_table(i).forward_auto(&mut r);
        let inv = consts.inv(i);
        let src = c.residue(i);
        for (j, d) in dst.iter_mut().enumerate() {
            *d = inv.mul_red(pi.sub_mod(src[j], r[j]), pi);
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use heax_math::exec::Sequential;

    /// Flooring an exact multiple of the dropped prime divides exactly.
    #[test]
    fn floor_exact_multiple() {
        let ctx = CkksContext::new(small()).unwrap();
        let n = ctx.n();
        let level = ctx.max_level();
        let k = ctx.params().k();
        let p_sp = ctx.special_modulus().value();

        // c = p_sp * v for a small v: floor(c / p_sp) == v.
        let mut chain: Vec<_> = ctx.level_moduli(level).to_vec();
        chain.push(*ctx.special_modulus());
        let mut c = RnsPoly::zero(n, &chain, Representation::Coefficient);
        let v: Vec<u64> = (0..n as u64).map(|j| j % 50).collect();
        for (i, m) in chain.iter().enumerate() {
            for (j, dst) in c.residue_mut(i).iter_mut().enumerate() {
                *dst = m.mul_mod(m.reduce_u64(p_sp), m.reduce_u64(v[j]));
            }
        }
        let mut tables: Vec<_> = (0..k).map(|i| ctx.ntt_table(i).clone()).collect();
        tables.push(ctx.special_ntt_table().clone());
        c.ntt_forward(&tables).unwrap();

        let mut floored = floor_special(&c, &ctx, level, &Sequential).unwrap();
        floored.ntt_inverse(ctx.ntt_tables()).unwrap();
        for (i, _m) in ctx.level_moduli(level).iter().enumerate() {
            for (j, &got) in floored.residue(i).iter().enumerate() {
                assert_eq!(got, v[j] % ctx.moduli()[i].value(), "res {i} coeff {j}");
            }
        }
    }

    /// Flooring a general value is off by at most 1 from true division
    /// (the floor of the centered representative differs by the fractional
    /// part only).
    #[test]
    fn floor_general_value_close() {
        let ctx = CkksContext::new(small()).unwrap();
        let n = ctx.n();
        let level = 1usize; // basis p0, p1; drop p1 via rescale path
        let p0 = ctx.moduli()[0];
        let p1 = ctx.moduli()[1];

        // Known integer x in [0, p0*p1): floor path vs integer division.
        let x: u128 = 0x1234_5678_9abc_def0;
        let moduli = ctx.level_moduli(level).to_vec();
        let mut c = RnsPoly::zero(n, &moduli, Representation::Coefficient);
        c.residue_mut(0)[0] = (x % p0.value() as u128) as u64;
        c.residue_mut(1)[0] = (x % p1.value() as u128) as u64;
        let tables: Vec<_> = (0..2).map(|i| ctx.ntt_table(i).clone()).collect();
        c.ntt_forward(&tables).unwrap();

        let mut floored = floor_last(&c, &ctx, level, &Sequential).unwrap();
        assert_eq!(floored.num_residues(), 1);
        floored.ntt_inverse(&tables[..1]).unwrap();
        let got = floored.residue(0)[0];
        let expect = (x / p1.value() as u128) % p0.value() as u128;
        let diff = (got as i128 - expect as i128).rem_euclid(p0.value() as i128);
        assert!(
            diff <= 1 || diff >= p0.value() as i128 - 1,
            "floor deviates by more than 1: got {got}, expect {expect}"
        );
    }

    #[test]
    fn floor_at_level_zero_is_exhausted() {
        let ctx = CkksContext::new(small()).unwrap();
        let c = RnsPoly::zero(ctx.n(), ctx.level_moduli(0), Representation::Ntt);
        assert!(matches!(
            floor_last(&c, &ctx, 0, &Sequential),
            Err(CkksError::LevelExhausted)
        ));
    }

    #[test]
    fn floor_checks_shape() {
        let ctx = CkksContext::new(small()).unwrap();
        // Wrong representation.
        let mut chain: Vec<_> = ctx.level_moduli(ctx.max_level()).to_vec();
        chain.push(*ctx.special_modulus());
        let c = RnsPoly::zero(ctx.n(), &chain, Representation::Coefficient);
        assert!(floor_special(&c, &ctx, ctx.max_level(), &Sequential).is_err());
        // Wrong residue count.
        let c = RnsPoly::zero(ctx.n(), &chain[..2], Representation::Ntt);
        assert!(floor_special(&c, &ctx, ctx.max_level(), &Sequential).is_err());
    }
}
