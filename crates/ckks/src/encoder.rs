//! CKKS encoder/decoder (client-side canonical embedding).
//!
//! `n/2` complex slots are packed into one plaintext polynomial: the slot
//! vector is mapped through the inverse special FFT, scaled by Δ, rounded
//! to integers, and lifted into RNS/NTT form. Decoding reverses the path,
//! using exact Garner CRT composition with centering.
//!
//! Per the paper (Section 1, "Client-Side and Server-Side Computation"),
//! encoding and decoding run on the client and are *not* accelerated; they
//! exist here to verify the server-side pipeline end to end.

use heax_math::fft::Complex64;
use heax_math::poly::{Representation, RnsPoly};

use crate::ciphertext::Plaintext;
use crate::context::CkksContext;
use crate::CkksError;

/// Encoder bound: |rounded coefficient| must stay below 2^119 so the i128
/// lift into RNS is exact.
const MAX_COEFF_MAGNITUDE: f64 = 6.6e35; // ~2^119

/// Encodes and decodes complex vectors.
///
/// # Examples
///
/// ```
/// use heax_ckks::{CkksContext, CkksEncoder, CkksParams, ParamSet};
/// use heax_math::fft::Complex64;
///
/// # fn main() -> Result<(), heax_ckks::CkksError> {
/// let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
/// let encoder = CkksEncoder::new(&ctx);
/// let values = vec![Complex64::new(1.5, 0.0), Complex64::new(-2.25, 3.0)];
/// let pt = encoder.encode(&values, ctx.params().scale(), ctx.max_level())?;
/// let decoded = encoder.decode(&pt)?;
/// assert!((decoded[0].re - 1.5).abs() < 1e-6);
/// assert!((decoded[1].im - 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CkksEncoder<'a> {
    ctx: &'a CkksContext,
}

impl<'a> CkksEncoder<'a> {
    /// Creates an encoder borrowing the context.
    pub fn new(ctx: &'a CkksContext) -> Self {
        Self { ctx }
    }

    /// Number of complex slots.
    #[inline]
    pub fn slots(&self) -> usize {
        self.ctx.n() / 2
    }

    /// Encodes up to `slots` complex values (zero-padded) at the given
    /// scale and level.
    ///
    /// # Errors
    ///
    /// [`CkksError::TooManySlots`] if more than `n/2` values are given;
    /// [`CkksError::EncodingOverflow`] if `scale·|value|` exceeds the
    /// representable coefficient range.
    pub fn encode(
        &self,
        values: &[Complex64],
        scale: f64,
        level: usize,
    ) -> Result<Plaintext, CkksError> {
        let slots = self.slots();
        if values.len() > slots {
            return Err(CkksError::TooManySlots {
                got: values.len(),
                slots,
            });
        }
        let mut vals = vec![Complex64::default(); slots];
        vals[..values.len()].copy_from_slice(values);
        self.ctx.fft().embed_inverse(&mut vals);

        let n = self.ctx.n();
        let moduli = self.ctx.level_moduli(level);
        let mut poly = RnsPoly::zero(n, moduli, Representation::Coefficient);
        for (j, v) in vals.iter().enumerate() {
            let re = (v.re * scale).round();
            let im = (v.im * scale).round();
            if !(re.abs() < MAX_COEFF_MAGNITUDE && im.abs() < MAX_COEFF_MAGNITUDE) {
                return Err(CkksError::EncodingOverflow);
            }
            let re = re as i128;
            let im = im as i128;
            for (i, p) in moduli.iter().enumerate() {
                poly.residue_mut(i)[j] = p.reduce_i128(re);
                poly.residue_mut(i)[j + slots] = p.reduce_i128(im);
            }
        }
        poly.ntt_forward(self.ctx.ntt_tables())?;
        Ok(Plaintext::from_parts(poly, level, scale))
    }

    /// Encodes real values (imaginary parts zero).
    ///
    /// # Errors
    ///
    /// Same as [`CkksEncoder::encode`].
    pub fn encode_real(
        &self,
        values: &[f64],
        scale: f64,
        level: usize,
    ) -> Result<Plaintext, CkksError> {
        let complex: Vec<Complex64> = values.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        self.encode(&complex, scale, level)
    }

    /// Encodes a single scalar replicated into every slot.
    ///
    /// # Errors
    ///
    /// Same as [`CkksEncoder::encode`].
    pub fn encode_scalar(
        &self,
        value: f64,
        scale: f64,
        level: usize,
    ) -> Result<Plaintext, CkksError> {
        let vals = vec![Complex64::new(value, 0.0); self.slots()];
        self.encode(&vals, scale, level)
    }

    /// Decodes a plaintext back into `n/2` complex slot values.
    ///
    /// # Errors
    ///
    /// Propagates representation errors (the plaintext must be in NTT form,
    /// as all plaintexts produced by this library are).
    pub fn decode(&self, pt: &Plaintext) -> Result<Vec<Complex64>, CkksError> {
        let slots = self.slots();
        let mut poly = pt.poly.clone();
        poly.ntt_inverse(self.ctx.ntt_tables())?;

        let basis = self.ctx.basis(pt.level);
        let k = poly.num_residues();
        let mut residues = vec![0u64; k];
        let mut vals = vec![Complex64::default(); slots];
        for (j, v) in vals.iter_mut().enumerate() {
            for (i, r) in residues.iter_mut().enumerate() {
                *r = poly.residue(i)[j];
            }
            let re = basis.compose_centered_f64(&residues);
            for (i, r) in residues.iter_mut().enumerate() {
                *r = poly.residue(i)[j + slots];
            }
            let im = basis.compose_centered_f64(&residues);
            *v = Complex64::new(re / pt.scale, im / pt.scale);
        }
        self.ctx.fft().embed_forward(&mut vals);
        Ok(vals)
    }

    /// Decodes only real parts.
    ///
    /// # Errors
    ///
    /// Same as [`CkksEncoder::decode`].
    pub fn decode_real(&self, pt: &Plaintext) -> Result<Vec<f64>, CkksError> {
        Ok(self.decode(pt)?.into_iter().map(|c| c.re).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use crate::context::CkksContext;

    fn ctx() -> CkksContext {
        CkksContext::new(small()).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        let vals: Vec<Complex64> = (0..enc.slots())
            .map(|i| Complex64::new((i as f64 * 0.37).sin() * 3.0, (i as f64).cos()))
            .collect();
        let pt = enc
            .encode(&vals, ctx.params().scale(), ctx.max_level())
            .unwrap();
        let back = enc.decode(&pt).unwrap();
        for (a, b) in back.iter().zip(&vals) {
            assert!((*a - *b).abs() < 1e-3, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn partial_vector_zero_pads() {
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        let pt = enc
            .encode_real(&[5.0, -7.0], ctx.params().scale(), ctx.max_level())
            .unwrap();
        let back = enc.decode_real(&pt).unwrap();
        assert!((back[0] - 5.0).abs() < 1e-3);
        assert!((back[1] + 7.0).abs() < 1e-3);
        for &v in &back[2..] {
            assert!(v.abs() < 1e-3);
        }
    }

    #[test]
    fn scalar_fills_all_slots() {
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        let pt = enc
            .encode_scalar(2.5, ctx.params().scale(), ctx.max_level())
            .unwrap();
        for v in enc.decode_real(&pt).unwrap() {
            assert!((v - 2.5).abs() < 1e-3);
        }
    }

    #[test]
    fn too_many_values_rejected() {
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        let too_many = vec![Complex64::default(); enc.slots() + 1];
        assert!(matches!(
            enc.encode(&too_many, 16.0, 0),
            Err(CkksError::TooManySlots { .. })
        ));
    }

    #[test]
    fn overflow_rejected() {
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        assert!(matches!(
            enc.encode_real(&[1e40], 1e40, ctx.max_level()),
            Err(CkksError::EncodingOverflow)
        ));
    }

    #[test]
    fn lower_level_encoding_has_fewer_residues() {
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        let pt = enc.encode_real(&[1.0], ctx.params().scale(), 0).unwrap();
        assert_eq!(pt.poly().num_residues(), 1);
        let back = enc.decode_real(&pt).unwrap();
        assert!((back[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn encode_is_additive() {
        // encode(a) + encode(b) decodes to a + b: the embedding is linear.
        let ctx = ctx();
        let enc = CkksEncoder::new(&ctx);
        let s = ctx.params().scale();
        let a = enc
            .encode_real(&[1.0, 2.0, 3.0], s, ctx.max_level())
            .unwrap();
        let b = enc
            .encode_real(&[0.5, -1.0, 4.0], s, ctx.max_level())
            .unwrap();
        let sum_poly = a.poly().add(b.poly()).unwrap();
        let sum = Plaintext::from_parts(sum_poly, ctx.max_level(), s);
        let back = enc.decode_real(&sum).unwrap();
        assert!((back[0] - 1.5).abs() < 1e-3);
        assert!((back[1] - 1.0).abs() < 1e-3);
        assert!((back[2] - 7.0).abs() < 1e-3);
    }
}
