//! Precomputed context shared by all CKKS operations.

use std::sync::Arc;

use heax_math::fft::SpecialFft;
use heax_math::ntt::NttTable;
use heax_math::rns::{RnsBasis, RnsFloorConstants, RnsGadget};
use heax_math::word::Modulus;

use crate::params::CkksParams;
use crate::CkksError;

/// Immutable precomputed data: NTT tables for every modulus in the chain,
/// per-level RNS bases, the key-switching gadget, and flooring constants
/// for both rescaling and modulus switching.
///
/// Cheap to clone (`Arc` internally is not needed; users typically wrap the
/// context in an [`Arc`] themselves — the provided [`CkksContext::new_arc`]
/// does so).
#[derive(Clone, Debug)]
pub struct CkksContext {
    params: CkksParams,
    /// Moduli in chain order: ciphertext primes `p_0..p_{k-1}`, then the
    /// special prime.
    moduli: Vec<Modulus>,
    /// NTT tables aligned with `moduli`.
    ntt_tables: Vec<NttTable>,
    /// `bases[l]` = RNS basis over `p_0..p_l`.
    bases: Vec<RnsBasis>,
    /// Key-switching gadget over the full ciphertext basis + special prime.
    gadget: RnsGadget,
    /// `rescale_consts[l]` = constants for dropping `p_l` at level `l ≥ 1`
    /// (index 0 unused).
    rescale_consts: Vec<Option<RnsFloorConstants>>,
    /// `modswitch_consts[l]` = constants for flooring the special prime at
    /// level `l`.
    modswitch_consts: Vec<RnsFloorConstants>,
    /// Canonical-embedding FFT for the encoder.
    fft: SpecialFft,
}

impl CkksContext {
    /// Precomputes all tables for the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (non-NTT-friendly or
    /// non-coprime moduli — impossible for parameters accepted by
    /// [`CkksParams::new`]).
    pub fn new(params: CkksParams) -> Result<Self, CkksError> {
        let n = params.n();
        let moduli: Result<Vec<Modulus>, _> =
            params.moduli().iter().map(|&p| Modulus::new(p)).collect();
        let moduli = moduli?;
        let ntt_tables: Result<Vec<NttTable>, _> =
            moduli.iter().map(|&m| NttTable::new(n, m)).collect();
        let ntt_tables = ntt_tables?;

        let k = params.k();
        let special = moduli[k];
        let q_moduli = &moduli[..k];

        let mut bases = Vec::with_capacity(k);
        for l in 0..k {
            bases.push(RnsBasis::from_moduli(q_moduli[..=l].to_vec())?);
        }
        let gadget = RnsGadget::new(&bases[k - 1], &special)?;

        let mut rescale_consts = Vec::with_capacity(k);
        rescale_consts.push(None);
        for l in 1..k {
            rescale_consts.push(Some(RnsFloorConstants::new(&q_moduli[..l], &q_moduli[l])?));
        }
        let mut modswitch_consts = Vec::with_capacity(k);
        for l in 0..k {
            modswitch_consts.push(RnsFloorConstants::new(&q_moduli[..=l], &special)?);
        }

        let fft = SpecialFft::new(n / 2)?;

        Ok(Self {
            params,
            moduli,
            ntt_tables,
            bases,
            gadget,
            rescale_consts,
            modswitch_consts,
            fft,
        })
    }

    /// Convenience: build and wrap in an [`Arc`].
    ///
    /// # Errors
    ///
    /// Same as [`CkksContext::new`].
    pub fn new_arc(params: CkksParams) -> Result<Arc<Self>, CkksError> {
        Ok(Arc::new(Self::new(params)?))
    }

    /// The validated parameters.
    #[inline]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.params.n()
    }

    /// All moduli (ciphertext primes then special).
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Ciphertext prime moduli active at `level` (`p_0..p_level`).
    #[inline]
    pub fn level_moduli(&self, level: usize) -> &[Modulus] {
        &self.moduli[..=level]
    }

    /// The special prime.
    #[inline]
    pub fn special_modulus(&self) -> &Modulus {
        &self.moduli[self.params.k()]
    }

    /// NTT tables aligned with [`CkksContext::moduli`].
    #[inline]
    pub fn ntt_tables(&self) -> &[NttTable] {
        &self.ntt_tables
    }

    /// NTT table for modulus index `i` in the chain.
    #[inline]
    pub fn ntt_table(&self, i: usize) -> &NttTable {
        &self.ntt_tables[i]
    }

    /// NTT table for the special prime.
    #[inline]
    pub fn special_ntt_table(&self) -> &NttTable {
        &self.ntt_tables[self.params.k()]
    }

    /// RNS basis over `p_0..p_level`.
    #[inline]
    pub fn basis(&self, level: usize) -> &RnsBasis {
        &self.bases[level]
    }

    /// Key-switching gadget (full basis).
    #[inline]
    pub fn gadget(&self) -> &RnsGadget {
        &self.gadget
    }

    /// Flooring constants for rescaling away `p_level`.
    ///
    /// # Panics
    ///
    /// Panics if `level == 0` (nothing below to rescale into); callers
    /// check [`CkksError::LevelExhausted`] first.
    #[inline]
    pub fn rescale_constants(&self, level: usize) -> &RnsFloorConstants {
        self.rescale_consts[level]
            .as_ref()
            .expect("rescale below level 1 is checked by callers")
    }

    /// Flooring constants for switching away the special prime at `level`.
    #[inline]
    pub fn modswitch_constants(&self, level: usize) -> &RnsFloorConstants {
        &self.modswitch_consts[level]
    }

    /// Encoder FFT.
    #[inline]
    pub fn fft(&self) -> &SpecialFft {
        &self.fft
    }

    /// Maximum level (`k - 1`).
    #[inline]
    pub fn max_level(&self) -> usize {
        self.params.max_level()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    fn context_builds_for_all_sets() {
        {
            let set = ParamSet::SetA;
            let ctx = CkksContext::new(CkksParams::from_set(set).unwrap()).unwrap();
            assert_eq!(ctx.moduli().len(), set.k() + 1);
            assert_eq!(ctx.ntt_tables().len(), set.k() + 1);
            assert_eq!(ctx.max_level(), set.k() - 1);
            assert_eq!(ctx.basis(0).len(), 1);
            assert_eq!(ctx.basis(ctx.max_level()).len(), set.k());
        }
    }

    #[test]
    fn small_context_tables_consistent() {
        let params = small();
        let ctx = CkksContext::new(params).unwrap();
        for (m, t) in ctx.moduli().iter().zip(ctx.ntt_tables()) {
            assert_eq!(m.value(), t.modulus().value());
            assert_eq!(t.n(), ctx.n());
        }
        assert_eq!(
            ctx.special_modulus().value(),
            ctx.params().special_modulus()
        );
    }

    pub(crate) fn small() -> CkksParams {
        // Tiny config for fast tests: n = 64, three ciphertext primes +
        // special prime (depth-2 capable), scale 2^32.
        let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
        CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()
    }
}
