//! Encryption and decryption (client-side operations).
//!
//! Public-key encryption follows `CKKS.Enc` of the paper exactly: compute
//! `(c'_0, c'_1) = u·(b, a) + (e_0, e_1) (mod qp)` over the chain extended
//! by the special prime, then floor by the special prime and add the
//! message — the flooring shrinks the fresh encryption noise by a factor
//! `p`.

use heax_math::poly::{Representation, RnsPoly};
use heax_math::sampling::{
    expand_uniform, sample_error, sample_ternary, sample_uniform, EXPAND_SEED_LEN,
};
use rand::Rng;

use crate::ciphertext::{Ciphertext, Plaintext, SeededCiphertext};
use crate::context::CkksContext;
use crate::flooring::floor_special;
use crate::keys::{restrict_poly, PublicKey, SecretKey};
use crate::CkksError;

/// Public-key encryptor.
#[derive(Clone, Debug)]
pub struct Encryptor<'a> {
    ctx: &'a CkksContext,
    pk: &'a PublicKey,
}

impl<'a> Encryptor<'a> {
    /// Creates an encryptor.
    pub fn new(ctx: &'a CkksContext, pk: &'a PublicKey) -> Self {
        Self { ctx, pk }
    }

    /// `CKKS.Enc(m, pk)` at the plaintext's level.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic failures (none for well-formed inputs).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<Ciphertext, CkksError> {
        let ctx = self.ctx;
        let level = pt.level;
        let k = ctx.params().k();
        // Extended modulus indices: active primes + special prime.
        let mut ext: Vec<usize> = (0..=level).collect();
        ext.push(k);
        let ext_moduli: Vec<_> = ext.iter().map(|&i| ctx.moduli()[i]).collect();
        let ext_tables: Vec<_> = ext.iter().map(|&i| ctx.ntt_tables()[i].clone()).collect();

        // u ← χ (ternary), e_0, e_1 ← Ω, all lifted to NTT form.
        let mut u = sample_ternary(rng, ctx.n(), &ext_moduli);
        u.ntt_forward(&ext_tables)?;
        let mut e0 = sample_error(rng, ctx.n(), &ext_moduli);
        e0.ntt_forward(&ext_tables)?;
        let mut e1 = sample_error(rng, ctx.n(), &ext_moduli);
        e1.ntt_forward(&ext_tables)?;

        // (c'_0, c'_1) = u·(b, a) + (e_0, e_1) over qp.
        let pk_b = restrict_poly(&self.pk.b, &ext);
        let pk_a = restrict_poly(&self.pk.a, &ext);
        let mut c0 = u.dyadic_mul(&pk_b)?;
        c0.add_assign(&e0)?;
        let mut c1 = u.dyadic_mul(&pk_a)?;
        c1.add_assign(&e1)?;

        // ct = (m, 0) + ⌊(c'_0, c'_1)/p⌋ ∈ R_q².
        let exec = heax_math::exec::global().as_ref();
        let mut c0 = floor_special(&c0, ctx, level, exec)?;
        let c1 = floor_special(&c1, ctx, level, exec)?;
        c0.add_assign(&pt.poly)?;

        Ciphertext::from_parts(vec![c0, c1], level, pt.scale)
    }

    /// Encrypts the zero plaintext at a level and scale (useful for tests
    /// and for randomizing ciphertexts).
    ///
    /// # Errors
    ///
    /// Same as [`Encryptor::encrypt`].
    pub fn encrypt_zero<R: Rng + ?Sized>(
        &self,
        level: usize,
        scale: f64,
        rng: &mut R,
    ) -> Result<Ciphertext, CkksError> {
        let zero = Plaintext::from_parts(
            RnsPoly::zero(
                self.ctx.n(),
                self.ctx.level_moduli(level),
                Representation::Ntt,
            ),
            level,
            scale,
        );
        self.encrypt(&zero, rng)
    }
}

/// Symmetric-key encryption (`SymEnc` of the paper): `b = -a·s + e + m`
/// directly over the active basis. No special-prime flooring is involved.
///
/// # Errors
///
/// Propagates arithmetic failures (none for well-formed inputs).
pub fn encrypt_symmetric<R: Rng + ?Sized>(
    ctx: &CkksContext,
    sk: &SecretKey,
    pt: &Plaintext,
    rng: &mut R,
) -> Result<Ciphertext, CkksError> {
    let level = pt.level;
    let moduli = ctx.level_moduli(level);
    let indices: Vec<usize> = (0..=level).collect();
    let s = sk.restricted(&indices);

    let a = sample_uniform(rng, ctx.n(), moduli, Representation::Ntt);
    let mut e = sample_error(rng, ctx.n(), moduli);
    e.ntt_forward(ctx.ntt_tables())?;

    let mut b = a.dyadic_mul(&s)?.neg();
    b.add_assign(&e)?;
    b.add_assign(&pt.poly)?;
    Ciphertext::from_parts(vec![b, a], level, pt.scale)
}

/// Symmetric-key encryption in seeded form: ships a 32-byte seed in place
/// of the uniform `a` component, roughly halving the bytes of a fresh
/// encryption on the wire.
///
/// `a = expand(seed)` is derived deterministically
/// ([`heax_math::sampling::expand_uniform`]), then `b = -a·s + e + m`
/// exactly as in [`encrypt_symmetric`] — so
/// [`SeededCiphertext::expand`] on the receiver reconstructs a ciphertext
/// that decrypts identically to the unseeded path. The caller's `rng`
/// supplies both the seed and the (non-transmitted) error polynomial.
///
/// # Errors
///
/// Propagates arithmetic failures (none for well-formed inputs).
pub fn encrypt_symmetric_seeded<R: Rng + ?Sized>(
    ctx: &CkksContext,
    sk: &SecretKey,
    pt: &Plaintext,
    rng: &mut R,
) -> Result<SeededCiphertext, CkksError> {
    let level = pt.level;
    let moduli = ctx.level_moduli(level);
    let indices: Vec<usize> = (0..=level).collect();
    let s = sk.restricted(&indices);

    let mut seed = [0u8; EXPAND_SEED_LEN];
    rng.fill_bytes(&mut seed);
    let a = expand_uniform(&seed, ctx.n(), moduli, Representation::Ntt);
    let mut e = sample_error(rng, ctx.n(), moduli);
    e.ntt_forward(ctx.ntt_tables())?;

    let mut b = a.dyadic_mul(&s)?.neg();
    b.add_assign(&e)?;
    b.add_assign(&pt.poly)?;
    SeededCiphertext::from_parts(b, seed, level, pt.scale)
}

/// Decryptor holding the secret key.
#[derive(Clone, Debug)]
pub struct Decryptor<'a> {
    ctx: &'a CkksContext,
    sk: &'a SecretKey,
}

impl<'a> Decryptor<'a> {
    /// Creates a decryptor.
    pub fn new(ctx: &'a CkksContext, sk: &'a SecretKey) -> Self {
        Self { ctx, sk }
    }

    /// `CKKS.Dec(ct, sk)`: computes `Σ_i c_i·s^i` over the active basis.
    /// Handles two- and three-component ciphertexts (and beyond).
    ///
    /// # Errors
    ///
    /// Propagates arithmetic failures (none for well-formed inputs).
    pub fn decrypt(&self, ct: &Ciphertext) -> Result<Plaintext, CkksError> {
        ct.validate(self.ctx)?;
        let indices: Vec<usize> = (0..=ct.level).collect();
        let s = self.sk.restricted(&indices);

        let mut acc = ct.polys[0].clone();
        let mut s_power = s.clone();
        for (i, c) in ct.polys.iter().enumerate().skip(1) {
            if i > 1 {
                s_power.dyadic_mul_assign(&s)?;
            }
            acc.dyadic_mul_acc(c, &s_power)?;
        }
        Ok(Plaintext::from_parts(acc, ct.level, ct.scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use crate::encoder::CkksEncoder;
    use crate::keys::PublicKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        ctx: CkksContext,
        sk: SecretKey,
        pk: PublicKey,
    }

    fn setup(seed: u64) -> Setup {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        Setup { ctx, sk, pk }
    }

    #[test]
    fn public_key_encrypt_decrypt_roundtrip() {
        let s = setup(21);
        let mut rng = StdRng::seed_from_u64(22);
        let enc = CkksEncoder::new(&s.ctx);
        let vals = vec![1.0, -2.0, 3.25, 0.0, 100.0];
        let pt = enc
            .encode_real(&vals, s.ctx.params().scale(), s.ctx.max_level())
            .unwrap();
        let ct = Encryptor::new(&s.ctx, &s.pk)
            .encrypt(&pt, &mut rng)
            .unwrap();
        assert_eq!(ct.size(), 2);
        let dec = Decryptor::new(&s.ctx, &s.sk).decrypt(&ct).unwrap();
        let back = enc.decode_real(&dec).unwrap();
        for (got, want) in back.iter().zip(&vals) {
            assert!((got - want).abs() < 1e-2, "{got} vs {want}");
        }
    }

    #[test]
    fn symmetric_encrypt_decrypt_roundtrip() {
        let s = setup(23);
        let mut rng = StdRng::seed_from_u64(24);
        let enc = CkksEncoder::new(&s.ctx);
        let pt = enc
            .encode_real(&[7.5, -0.125], s.ctx.params().scale(), s.ctx.max_level())
            .unwrap();
        let ct = encrypt_symmetric(&s.ctx, &s.sk, &pt, &mut rng).unwrap();
        let dec = Decryptor::new(&s.ctx, &s.sk).decrypt(&ct).unwrap();
        let back = enc.decode_real(&dec).unwrap();
        assert!((back[0] - 7.5).abs() < 1e-2);
        assert!((back[1] + 0.125).abs() < 1e-2);
    }

    #[test]
    fn seeded_encrypt_expands_and_decrypts() {
        let s = setup(31);
        let mut rng = StdRng::seed_from_u64(32);
        let enc = CkksEncoder::new(&s.ctx);
        let pt = enc
            .encode_real(&[3.5, -1.25], s.ctx.params().scale(), s.ctx.max_level())
            .unwrap();
        let seeded = encrypt_symmetric_seeded(&s.ctx, &s.sk, &pt, &mut rng).unwrap();
        let ct = seeded.expand(&s.ctx).unwrap();
        assert_eq!(ct.size(), 2);
        // Expansion is deterministic.
        assert_eq!(ct, seeded.expand(&s.ctx).unwrap());
        let dec = Decryptor::new(&s.ctx, &s.sk).decrypt(&ct).unwrap();
        let back = enc.decode_real(&dec).unwrap();
        assert!((back[0] - 3.5).abs() < 1e-2);
        assert!((back[1] + 1.25).abs() < 1e-2);
    }

    #[test]
    fn encrypt_at_lower_level() {
        let s = setup(25);
        let mut rng = StdRng::seed_from_u64(26);
        let enc = CkksEncoder::new(&s.ctx);
        let pt = enc.encode_real(&[2.0], s.ctx.params().scale(), 0).unwrap();
        let ct = Encryptor::new(&s.ctx, &s.pk)
            .encrypt(&pt, &mut rng)
            .unwrap();
        assert_eq!(ct.level(), 0);
        assert_eq!(ct.component(0).num_residues(), 1);
        let dec = Decryptor::new(&s.ctx, &s.sk).decrypt(&ct).unwrap();
        let back = enc.decode_real(&dec).unwrap();
        assert!((back[0] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn encrypt_zero_is_zero() {
        let s = setup(27);
        let mut rng = StdRng::seed_from_u64(28);
        let enc = CkksEncoder::new(&s.ctx);
        let ct = Encryptor::new(&s.ctx, &s.pk)
            .encrypt_zero(s.ctx.max_level(), s.ctx.params().scale(), &mut rng)
            .unwrap();
        let dec = Decryptor::new(&s.ctx, &s.sk).decrypt(&ct).unwrap();
        for v in enc.decode_real(&dec).unwrap() {
            assert!(v.abs() < 1e-2);
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let s = setup(29);
        let mut rng = StdRng::seed_from_u64(30);
        let enc = CkksEncoder::new(&s.ctx);
        let pt = enc
            .encode_real(&[1.0], s.ctx.params().scale(), s.ctx.max_level())
            .unwrap();
        let e = Encryptor::new(&s.ctx, &s.pk);
        let c1 = e.encrypt(&pt, &mut rng).unwrap();
        let c2 = e.encrypt(&pt, &mut rng).unwrap();
        assert_ne!(c1.component(1), c2.component(1));
    }
}
