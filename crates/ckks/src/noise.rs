//! Noise measurement utilities.
//!
//! CKKS is an *approximate* scheme: every ciphertext carries an error term
//! whose growth determines how many operations remain before decryption
//! becomes meaningless. These helpers quantify that error for tests,
//! parameter exploration, and the EXPERIMENTS.md error reports. They all
//! require the secret key and therefore live strictly on the client side.

use heax_math::fft::Complex64;

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoder::CkksEncoder;
use crate::encrypt::Decryptor;
use crate::keys::SecretKey;
use crate::CkksError;

/// Noise report for a ciphertext measured against reference slot values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseReport {
    /// Maximum absolute slot error `max_j |decoded_j − reference_j|`.
    pub max_slot_error: f64,
    /// Root-mean-square slot error.
    pub rms_slot_error: f64,
    /// `log₂` of the max slot error (−∞ if exact).
    pub log2_max_error: f64,
    /// Remaining headroom in bits: `log₂(q_ℓ / (2·scale·max_error))`,
    /// roughly how many more bits of error the ciphertext tolerates at its
    /// current level before values become undecryptable.
    pub budget_bits: f64,
}

/// Decrypts `ct` and measures slot-wise error against `reference`
/// (padded with zeros to the slot count).
///
/// # Errors
///
/// Propagates decryption/decoding errors.
pub fn measure_noise(
    ctx: &CkksContext,
    sk: &SecretKey,
    ct: &Ciphertext,
    reference: &[Complex64],
) -> Result<NoiseReport, CkksError> {
    let encoder = CkksEncoder::new(ctx);
    let decrypted = Decryptor::new(ctx, sk).decrypt(ct)?;
    let decoded = encoder.decode(&decrypted)?;

    let slots = decoded.len();
    let mut max_err = 0.0f64;
    let mut sum_sq = 0.0f64;
    for (j, got) in decoded.iter().enumerate() {
        let want = reference.get(j).copied().unwrap_or_default();
        let err = (*got - want).abs();
        max_err = max_err.max(err);
        sum_sq += err * err;
    }
    let rms = (sum_sq / slots as f64).sqrt();
    let log_q: f64 = ctx.basis(ct.level()).log2_product();
    let budget_bits = log_q - 1.0 - ct.scale().log2() - max_err.max(f64::MIN_POSITIVE).log2();
    Ok(NoiseReport {
        max_slot_error: max_err,
        rms_slot_error: rms,
        log2_max_error: max_err.max(f64::MIN_POSITIVE).log2(),
        budget_bits,
    })
}

/// Convenience for real-valued references.
///
/// # Errors
///
/// Same as [`measure_noise`].
pub fn measure_noise_real(
    ctx: &CkksContext,
    sk: &SecretKey,
    ct: &Ciphertext,
    reference: &[f64],
) -> Result<NoiseReport, CkksError> {
    let complex: Vec<Complex64> = reference.iter().map(|&r| Complex64::new(r, 0.0)).collect();
    measure_noise(ctx, sk, ct, &complex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use crate::encoder::CkksEncoder;
    use crate::encrypt::Encryptor;
    use crate::eval::Evaluator;
    use crate::keys::{PublicKey, RelinKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_ciphertext_has_small_noise_and_positive_budget() {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let vals = [3.5, -1.25, 0.0];
        let ct = Encryptor::new(&ctx, &pk)
            .encrypt(
                &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                    .unwrap(),
                &mut rng,
            )
            .unwrap();
        let rep = measure_noise_real(&ctx, &sk, &ct, &vals).unwrap();
        assert!(rep.max_slot_error < 1e-3, "{rep:?}");
        assert!(rep.rms_slot_error <= rep.max_slot_error);
        assert!(rep.budget_bits > 20.0, "{rep:?}");
    }

    #[test]
    fn noise_grows_with_multiplication() {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let eval = Evaluator::new(&ctx);
        let vals = [2.0, -1.0];
        let ct = Encryptor::new(&ctx, &pk)
            .encrypt(
                &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                    .unwrap(),
                &mut rng,
            )
            .unwrap();
        let fresh = measure_noise_real(&ctx, &sk, &ct, &vals).unwrap();
        let prod = eval
            .rescale(&eval.multiply_relin(&ct, &ct, &rlk).unwrap())
            .unwrap();
        let squared: Vec<f64> = vals.iter().map(|v| v * v).collect();
        let after = measure_noise_real(&ctx, &sk, &prod, &squared).unwrap();
        assert!(after.max_slot_error > fresh.max_slot_error);
        assert!(after.budget_bits < fresh.budget_bits);
        // Still decryptable.
        assert!(after.max_slot_error < 1e-2, "{after:?}");
    }

    #[test]
    fn wrong_reference_reports_large_error() {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let ct = Encryptor::new(&ctx, &pk)
            .encrypt(
                &enc.encode_real(&[1.0], ctx.params().scale(), ctx.max_level())
                    .unwrap(),
                &mut rng,
            )
            .unwrap();
        let rep = measure_noise_real(&ctx, &sk, &ct, &[100.0]).unwrap();
        assert!(rep.max_slot_error > 90.0);
    }
}
