//! Galois automorphisms `X ↦ X^g` on ring elements, applied directly in
//! NTT (evaluation) form.
//!
//! Rotation of CKKS slots corresponds to the automorphism with
//! `g = 5^step mod 2n` (the encoder orders slots by powers of 5);
//! complex conjugation corresponds to `g = 2n - 1`.
//!
//! In our bit-reversed NTT form, position `j` holds the evaluation at
//! `ψ^{e_j}` with `e_j = 2·brv(j)+1`. Since `(a∘g)(ψ^e) = a(ψ^{e·g})`, the
//! automorphism is a pure index permutation — exactly why rotation on the
//! accelerator costs only a KeySwitch (Section 3.4).

use heax_math::ntt::bit_reverse;
use heax_math::poly::{Representation, RnsPoly};
use heax_math::MathError;

/// Galois element for a slot rotation by `step` (positive = left), for ring
/// degree `n`. Returns `5^step mod 2n` with negative steps mapped through
/// the group order (`5` has order `n/2` in `Z_{2n}^*`).
pub fn galois_elt_from_step(step: i64, n: usize) -> usize {
    let m = 2 * n;
    let order = (n / 2) as i64;
    let exp = step.rem_euclid(order) as u64;
    let mut elt = 1usize;
    let mut base = 5usize;
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            elt = (elt * base) % m;
        }
        base = (base * base) % m;
        e >>= 1;
    }
    elt
}

/// Galois element for complex conjugation: `2n - 1` (i.e. `X ↦ X^{-1}`).
pub fn galois_elt_conjugate(n: usize) -> usize {
    2 * n - 1
}

/// Permutation table realizing `X ↦ X^g` on an NTT-form polynomial:
/// `result[j] = operand[table[j]]`.
///
/// # Panics
///
/// Panics if `g` is even (not a valid Galois element) or `n` is not a
/// power of two.
pub fn galois_permutation(g: usize, n: usize) -> Vec<usize> {
    assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
    assert!(g % 2 == 1, "Galois element must be odd");
    let log_n = n.trailing_zeros();
    let m = 2 * n;
    (0..n)
        .map(|j| {
            let e = 2 * bit_reverse(j, log_n) + 1;
            let src_e = (e * g) % m;
            bit_reverse((src_e - 1) / 2, log_n)
        })
        .collect()
}

/// Applies a Galois permutation to every residue of an NTT-form polynomial.
///
/// # Errors
///
/// Returns [`MathError::RepresentationMismatch`] if the polynomial is in
/// coefficient form.
pub fn apply_galois_ntt(poly: &RnsPoly, table: &[usize]) -> Result<RnsPoly, MathError> {
    let mut out = RnsPoly::zero(poly.n(), poly.moduli(), Representation::Ntt);
    apply_galois_ntt_into(poly, table, &mut out)?;
    Ok(out)
}

/// Applies a Galois permutation into a caller-provided buffer of the same
/// shape, so rotation hot paths can reuse a workspace instead of
/// allocating a fresh polynomial per call.
///
/// # Errors
///
/// Returns [`MathError::RepresentationMismatch`] if the polynomial is in
/// coefficient form, [`MathError::LengthMismatch`] if `out` has a
/// different shape.
pub fn apply_galois_ntt_into(
    poly: &RnsPoly,
    table: &[usize],
    out: &mut RnsPoly,
) -> Result<(), MathError> {
    if poly.representation() != Representation::Ntt {
        return Err(MathError::RepresentationMismatch);
    }
    let n = poly.n();
    assert_eq!(table.len(), n, "permutation table length mismatch");
    if out.n() != n || out.num_residues() != poly.num_residues() {
        return Err(MathError::LengthMismatch {
            expected: poly.num_residues() * n,
            got: out.num_residues() * out.n(),
        });
    }
    out.set_representation(Representation::Ntt);
    for i in 0..poly.num_residues() {
        let src = poly.residue(i);
        let dst = out.residue_mut(i);
        for (j, &t) in table.iter().enumerate() {
            dst[j] = src[t];
        }
    }
    Ok(())
}

/// Applies `X ↦ X^g` in coefficient form: `a_i·X^i ↦ ±a_i·X^{(i·g) mod n}`
/// with the sign from negacyclic wraparound. O(n) reference used by tests
/// to validate the NTT-domain permutation.
pub fn apply_galois_coeff(poly: &RnsPoly, g: usize) -> Result<RnsPoly, MathError> {
    if poly.representation() != Representation::Coefficient {
        return Err(MathError::RepresentationMismatch);
    }
    let n = poly.n();
    let m = 2 * n;
    let mut out = RnsPoly::zero(n, poly.moduli(), Representation::Coefficient);
    for (r, p) in poly.moduli().iter().enumerate() {
        for i in 0..n {
            let target = (i * g) % m;
            let c = poly.residue(r)[i];
            if target < n {
                out.residue_mut(r)[target] = c;
            } else {
                out.residue_mut(r)[target - n] = p.neg_mod(c);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_math::ntt::NttTable;
    use heax_math::primes::generate_ntt_primes;
    use heax_math::word::Modulus;

    fn setup(n: usize) -> (Vec<Modulus>, Vec<NttTable>) {
        let mods: Vec<Modulus> = generate_ntt_primes(30, 2, n)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect();
        let tables = mods.iter().map(|&m| NttTable::new(n, m).unwrap()).collect();
        (mods, tables)
    }

    #[test]
    fn elt_from_step_basics() {
        let n = 16;
        assert_eq!(galois_elt_from_step(0, n), 1);
        assert_eq!(galois_elt_from_step(1, n), 5);
        assert_eq!(galois_elt_from_step(2, n), 25);
        // Negative steps invert: 5^(order-1) * 5 == 1 (mod 2n).
        let neg = galois_elt_from_step(-1, n);
        assert_eq!((neg * 5) % (2 * n), 1);
        // Full-cycle rotation is the identity.
        assert_eq!(galois_elt_from_step((n / 2) as i64, n), 1);
    }

    #[test]
    fn conjugate_elt() {
        assert_eq!(galois_elt_conjugate(16), 31);
    }

    #[test]
    fn ntt_permutation_matches_coefficient_automorphism() {
        let n = 64usize;
        let (mods, tables) = setup(n);
        let mut poly = RnsPoly::zero(n, &mods, Representation::Coefficient);
        for (r, m) in mods.iter().enumerate() {
            for (j, c) in poly.residue_mut(r).iter_mut().enumerate() {
                *c = ((j as u64 * 31 + r as u64 * 7 + 1) * 13) % m.value();
            }
        }
        for g in [5usize, 25, 2 * n - 1, galois_elt_from_step(3, n)] {
            // Path A: automorphism in coefficient domain, then NTT.
            let mut a = apply_galois_coeff(&poly, g).unwrap();
            a.ntt_forward(&tables).unwrap();
            // Path B: NTT, then permutation in evaluation domain.
            let mut b_in = poly.clone();
            b_in.ntt_forward(&tables).unwrap();
            let table = galois_permutation(g, n);
            let b = apply_galois_ntt(&b_in, &table).unwrap();
            assert_eq!(a, b, "g={g}");
        }
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let n = 64usize;
        let (mods, tables) = setup(n);
        let mut poly = RnsPoly::zero(n, &mods, Representation::Coefficient);
        for (r, m) in mods.iter().enumerate() {
            for (j, c) in poly.residue_mut(r).iter_mut().enumerate() {
                *c = ((j as u64 * 7 + r as u64) * 29 + 5) % m.value();
            }
        }
        poly.ntt_forward(&tables).unwrap();
        let table = galois_permutation(5, n);
        let fresh = apply_galois_ntt(&poly, &table).unwrap();
        let mut reused = RnsPoly::zero(n, &mods, Representation::Coefficient);
        apply_galois_ntt_into(&poly, &table, &mut reused).unwrap();
        assert_eq!(fresh, reused);
        // Shape mismatch rejected.
        let mut wrong = RnsPoly::zero(n, &mods[..1], Representation::Ntt);
        assert!(apply_galois_ntt_into(&poly, &table, &mut wrong).is_err());
    }

    #[test]
    fn permutation_is_bijective() {
        let n = 128;
        for g in [5usize, 2 * n - 1] {
            let table = galois_permutation(g, n);
            let mut seen = vec![false; n];
            for &t in &table {
                assert!(!seen[t]);
                seen[t] = true;
            }
        }
    }

    #[test]
    fn identity_element_is_identity() {
        let table = galois_permutation(1, 32);
        for (j, &t) in table.iter().enumerate() {
            assert_eq!(j, t);
        }
    }

    #[test]
    fn representation_checked() {
        let (mods, _) = setup(16);
        let coeff = RnsPoly::zero(16, &mods, Representation::Coefficient);
        let table = galois_permutation(5, 16);
        assert!(apply_galois_ntt(&coeff, &table).is_err());
        let ntt = RnsPoly::zero(16, &mods, Representation::Ntt);
        assert!(apply_galois_coeff(&ntt, 5).is_err());
    }
}
