//! Plaintext and ciphertext containers.

use heax_math::poly::{Representation, RnsPoly};
use heax_math::sampling::{expand_uniform, EXPAND_SEED_LEN};

use crate::context::CkksContext;
use crate::CkksError;

/// An encoded (but not encrypted) CKKS message: one RNS polynomial in NTT
/// form, a scale, and a level.
#[derive(Clone, Debug, PartialEq)]
pub struct Plaintext {
    pub(crate) poly: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// Creates a plaintext from parts. Intended for the encoder and for the
    /// hardware simulators; most users obtain plaintexts from
    /// [`CkksEncoder`](crate::encoder::CkksEncoder).
    pub fn from_parts(poly: RnsPoly, level: usize, scale: f64) -> Self {
        Self { poly, level, scale }
    }

    /// The underlying polynomial (NTT form).
    #[inline]
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// Level in the modulus chain.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Encoding scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// A CKKS ciphertext: `size` RNS polynomials in NTT form over the moduli of
/// its level. Fresh ciphertexts have two components; an un-relinearized
/// product has three.
///
/// Decryption computes `Σ_i c_i·s^i`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ciphertext {
    pub(crate) polys: Vec<RnsPoly>,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Ciphertext {
    /// Assembles a ciphertext from components; all must be in NTT form over
    /// the same basis.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidCiphertext`] for fewer than two
    /// components and [`CkksError::Math`] on representation mismatches.
    pub fn from_parts(polys: Vec<RnsPoly>, level: usize, scale: f64) -> Result<Self, CkksError> {
        if polys.len() < 2 {
            return Err(CkksError::InvalidCiphertext {
                components: polys.len(),
                expected: "at least 2",
            });
        }
        for p in &polys {
            if p.representation() != Representation::Ntt {
                return Err(CkksError::Math(
                    heax_math::MathError::RepresentationMismatch,
                ));
            }
            if p.num_residues() != level + 1 {
                return Err(CkksError::LevelMismatch {
                    a: level,
                    b: p.num_residues().saturating_sub(1),
                });
            }
        }
        Ok(Self {
            polys,
            level,
            scale,
        })
    }

    /// Number of polynomial components (2 for fresh, 3 after multiply).
    #[inline]
    pub fn size(&self) -> usize {
        self.polys.len()
    }

    /// Component `i`.
    #[inline]
    pub fn component(&self, i: usize) -> &RnsPoly {
        &self.polys[i]
    }

    /// All components.
    #[inline]
    pub fn components(&self) -> &[RnsPoly] {
        &self.polys
    }

    /// Level in the modulus chain (number of active primes minus one).
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Overrides the scale. Exposed for scale-management techniques the
    /// evaluator does not automate (e.g. exact rescale bookkeeping in
    /// application code).
    #[inline]
    pub fn set_scale(&mut self, scale: f64) {
        self.scale = scale;
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.polys[0].n()
    }

    /// Validates level/size invariants against a context. Used by tests and
    /// by the accelerator front-end before dispatching to hardware.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, ctx: &CkksContext) -> Result<(), CkksError> {
        if self.level > ctx.max_level() {
            return Err(CkksError::LevelMismatch {
                a: self.level,
                b: ctx.max_level(),
            });
        }
        for p in &self.polys {
            if p.n() != ctx.n() {
                return Err(CkksError::InvalidParameters {
                    reason: format!("degree {} != context degree {}", p.n(), ctx.n()),
                });
            }
            if p.num_residues() != self.level + 1 {
                return Err(CkksError::LevelMismatch {
                    a: self.level,
                    b: p.num_residues().saturating_sub(1),
                });
            }
            for (a, b) in p.moduli().iter().zip(ctx.level_moduli(self.level)) {
                if a.value() != b.value() {
                    return Err(CkksError::Math(heax_math::MathError::BasisMismatch {
                        a: a.value(),
                        b: b.value(),
                    }));
                }
            }
        }
        Ok(())
    }
}

/// A fresh symmetric encryption in seeded form: the `b` component plus the
/// 32-byte seed that deterministically regenerates the uniform `a`
/// component (`a = expand(seed)`), in place of `a` itself.
///
/// This is SEAL's seeded-ciphertext idiom: a fresh encryption's second
/// component is uniform, so the sender can ship the PRNG seed instead and
/// roughly **halve** the upload bytes. The receiver calls
/// [`SeededCiphertext::expand`] to recover the ordinary two-component
/// [`Ciphertext`]; expansion is deterministic, so both sides agree
/// bit-exactly. Only *fresh* encryptions can be seeded — evaluation results
/// are not uniform in any component.
#[derive(Clone, Debug, PartialEq)]
pub struct SeededCiphertext {
    pub(crate) b: RnsPoly,
    pub(crate) seed: [u8; EXPAND_SEED_LEN],
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl SeededCiphertext {
    /// Assembles a seeded ciphertext from parts; `b` must be in NTT form
    /// with `level + 1` residues.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on a representation mismatch,
    /// [`CkksError::LevelMismatch`] when `b`'s residue count disagrees
    /// with `level`.
    pub fn from_parts(
        b: RnsPoly,
        seed: [u8; EXPAND_SEED_LEN],
        level: usize,
        scale: f64,
    ) -> Result<Self, CkksError> {
        if b.representation() != Representation::Ntt {
            return Err(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            ));
        }
        if b.num_residues() != level + 1 {
            return Err(CkksError::LevelMismatch {
                a: level,
                b: b.num_residues().saturating_sub(1),
            });
        }
        Ok(Self {
            b,
            seed,
            level,
            scale,
        })
    }

    /// The `b` component.
    #[inline]
    pub fn b(&self) -> &RnsPoly {
        &self.b
    }

    /// The 32-byte expansion seed standing in for the `a` component.
    #[inline]
    pub fn seed(&self) -> &[u8; EXPAND_SEED_LEN] {
        &self.seed
    }

    /// Level in the modulus chain.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Encoding scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Re-expands the seed into the uniform `a` component and returns the
    /// ordinary two-component ciphertext. Deterministic: every receiver of
    /// the same seeded ciphertext obtains a bit-identical [`Ciphertext`].
    ///
    /// # Errors
    ///
    /// Propagates validation failures against `ctx` (degree or modulus
    /// chain mismatch).
    pub fn expand(&self, ctx: &CkksContext) -> Result<Ciphertext, CkksError> {
        let a = expand_uniform(&self.seed, self.b.n(), self.b.moduli(), Representation::Ntt);
        let ct = Ciphertext::from_parts(vec![self.b.clone(), a], self.level, self.scale)?;
        ct.validate(ctx)?;
        Ok(ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_math::word::Modulus;

    fn mods() -> Vec<Modulus> {
        heax_math::primes::generate_ntt_primes(30, 2, 16)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect()
    }

    #[test]
    fn from_parts_validates() {
        let m = mods();
        let p = RnsPoly::zero(16, &m, Representation::Ntt);
        let ct = Ciphertext::from_parts(vec![p.clone(), p.clone()], 1, 16.0).unwrap();
        assert_eq!(ct.size(), 2);
        assert_eq!(ct.level(), 1);
        assert_eq!(ct.n(), 16);

        // One component: rejected.
        assert!(Ciphertext::from_parts(vec![p.clone()], 1, 16.0).is_err());
        // Wrong representation: rejected.
        let coeff = RnsPoly::zero(16, &m, Representation::Coefficient);
        assert!(Ciphertext::from_parts(vec![coeff.clone(), coeff], 1, 16.0).is_err());
        // Wrong level: rejected.
        let p1 = RnsPoly::zero(16, &m[..1], Representation::Ntt);
        assert!(Ciphertext::from_parts(vec![p1.clone(), p1], 1, 16.0).is_err());
    }

    #[test]
    fn scale_override() {
        let m = mods();
        let p = RnsPoly::zero(16, &m, Representation::Ntt);
        let mut ct = Ciphertext::from_parts(vec![p.clone(), p], 1, 16.0).unwrap();
        ct.set_scale(32.0);
        assert_eq!(ct.scale(), 32.0);
    }
}
