//! Reusable workspaces for the key-switch hot path.
//!
//! The seed implementation allocated O(k²) fresh `Vec<u64>`s per
//! key-switch call: two extended-basis accumulators, a per-iteration
//! coefficient copy, and a reduction buffer for every `(i, j)` pair. The
//! hardware has none of that — every buffer is a BRAM bank wired into the
//! pipeline (Figure 5). [`KeySwitchScratch`] is the software analogue: a
//! buffer pool owned by the evaluator, shaped once per level and reused
//! across calls, so `key_switch_into` performs **zero heap allocations**
//! after warm-up (asserted by the `alloc_free` integration test). The
//! per-limb lane buffers are threaded through the executor dispatch, so
//! the parallel backend reuses them too (limb `j` owns lane slot `j`).

use heax_math::poly::{Representation, RnsPoly};
use heax_math::word::Modulus;

use crate::context::CkksContext;

/// An empty placeholder polynomial (reshaped by `ensure` before use).
fn empty_poly() -> RnsPoly {
    RnsPoly::zero(0, &[], Representation::Ntt)
}

/// Buffers for one key-switch (or flooring) invocation, cached by level.
#[derive(Debug)]
pub(crate) struct KsBuffers {
    /// Level the buffers are currently shaped for.
    level: Option<usize>,
    /// Extended basis (active primes + special prime) at that level.
    pub(crate) ext_moduli: Vec<Modulus>,
    /// Accumulator `f₀` over the extended basis.
    pub(crate) acc0: RnsPoly,
    /// Accumulator `f₁` over the extended basis.
    pub(crate) acc1: RnsPoly,
    /// INTT'd target residue (Algorithm 7 line 3), one ring element.
    pub(crate) a_coeff: Vec<u64>,
    /// Per-limb reduction/NTT lanes: limb `j` owns `[j·n, (j+1)·n)`;
    /// sized for the paired floor (two lanes per output limb).
    pub(crate) lane: Vec<u64>,
    /// Coefficient form of the dropped residue during flooring.
    pub(crate) drop_coeff: Vec<u64>,
    /// Second dropped-residue buffer for the paired accumulator floor.
    pub(crate) drop_coeff2: Vec<u64>,
}

impl Default for KsBuffers {
    fn default() -> Self {
        Self {
            level: None,
            ext_moduli: Vec::new(),
            acc0: empty_poly(),
            acc1: empty_poly(),
            a_coeff: Vec::new(),
            lane: Vec::new(),
            drop_coeff: Vec::new(),
            drop_coeff2: Vec::new(),
        }
    }
}

impl KsBuffers {
    /// Shapes every buffer for `level` (no-op when already shaped — the
    /// steady-state, allocation-free path).
    pub(crate) fn ensure(&mut self, ctx: &CkksContext, level: usize) {
        let n = ctx.n();
        if self.level == Some(level) && self.acc0.n() == n {
            return;
        }
        let mut ext: Vec<Modulus> = ctx.level_moduli(level).to_vec();
        ext.push(*ctx.special_modulus());
        self.acc0 = RnsPoly::zero(n, &ext, Representation::Ntt);
        self.acc1 = RnsPoly::zero(n, &ext, Representation::Ntt);
        self.a_coeff.resize(n, 0);
        self.lane.resize(2 * ext.len() * n, 0);
        self.drop_coeff.clear();
        self.drop_coeff.reserve(n);
        self.drop_coeff2.clear();
        self.drop_coeff2.reserve(n);
        self.ext_moduli = ext;
        self.level = Some(level);
    }
}

/// The evaluator-owned workspace: key-switch buffers plus the rotation
/// and hoisting scratch reused by `apply_galois` / `rotate_many`.
#[derive(Debug)]
pub(crate) struct KeySwitchScratch {
    /// Key-switch / flooring buffers.
    pub(crate) ks: KsBuffers,
    /// Rotated `c₁` for `apply_galois` (level basis, NTT form).
    pub(crate) rotated: RnsPoly,
    /// Level `rotated` is shaped for.
    rotated_level: Option<usize>,
    /// Hoisted decomposition digits for `rotate_many`:
    /// `(level+2) · (level+1)` limbs of `n` words, **column-major in the
    /// extended-basis index `j`** — digit `(i, j)` lives at
    /// `[(j·(level+1) + i)·n, (j·(level+1) + i + 1)·n)`.
    pub(crate) digits: Vec<u64>,
}

impl Default for KeySwitchScratch {
    fn default() -> Self {
        Self {
            ks: KsBuffers::default(),
            rotated: empty_poly(),
            rotated_level: None,
            digits: Vec::new(),
        }
    }
}

impl KeySwitchScratch {
    /// Fresh, empty scratch (warm-up happens on first use).
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Shapes the rotation buffer for `level`.
    pub(crate) fn ensure_rotated(&mut self, ctx: &CkksContext, level: usize) {
        let n = ctx.n();
        if self.rotated_level == Some(level) && self.rotated.n() == n {
            return;
        }
        self.rotated = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
        self.rotated_level = Some(level);
    }
}
