//! # heax-ckks
//!
//! A complete, self-contained **full-RNS CKKS** homomorphic-encryption
//! library — the algorithmic substrate of the HEAX (ASPLOS 2020)
//! reproduction. It implements exactly the algorithms the paper specifies
//! (Section 3, Algorithms 1–7) in the style of Microsoft SEAL 3.3:
//! ciphertexts stay in RNS + NTT form throughout evaluation, and no
//! multi-precision arithmetic appears on the evaluation path.
//!
//! In the reproduction this crate plays two roles:
//!
//! 1. the **CPU baseline** measured by the Criterion benches in
//!    `heax-bench` (standing in for SEAL on the Xeon Silver 4108), and
//! 2. the **golden model** against which the cycle-accurate hardware
//!    simulators in `heax-hw`/`heax-core` are checked bit-exactly.
//!
//! ## Quick start
//!
//! ```
//! use heax_ckks::{
//!     CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator,
//!     ParamSet, PublicKey, RelinKey, SecretKey,
//! };
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), heax_ckks::CkksError> {
//! let ctx = CkksContext::new(CkksParams::from_set(ParamSet::SetA)?)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let pk = PublicKey::generate(&ctx, &sk, &mut rng);
//! let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
//!
//! let encoder = CkksEncoder::new(&ctx);
//! let scale = ctx.params().scale();
//! let pt_a = encoder.encode_real(&[1.5, 2.0], scale, ctx.max_level())?;
//! let pt_b = encoder.encode_real(&[4.0, -1.0], scale, ctx.max_level())?;
//!
//! let encryptor = Encryptor::new(&ctx, &pk);
//! let ct_a = encryptor.encrypt(&pt_a, &mut rng)?;
//! let ct_b = encryptor.encrypt(&pt_b, &mut rng)?;
//!
//! let eval = Evaluator::new(&ctx);
//! let prod = eval.rescale(&eval.multiply_relin(&ct_a, &ct_b, &rlk)?)?;
//!
//! let dec = Decryptor::new(&ctx, &sk).decrypt(&prod)?;
//! let vals = encoder.decode_real(&dec)?;
//! assert!((vals[0] - 6.0).abs() < 0.01);
//! assert!((vals[1] + 2.0).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ciphertext;
pub mod context;
pub mod encoder;
pub mod encrypt;
mod error;
pub mod eval;
mod flooring;
pub mod galois;
pub mod keys;
pub mod noise;
pub mod params;
mod scratch;
pub mod serialize;

pub use ciphertext::{Ciphertext, Plaintext, SeededCiphertext};
pub use context::CkksContext;
pub use encoder::CkksEncoder;
pub use encrypt::{encrypt_symmetric, encrypt_symmetric_seeded, Decryptor, Encryptor};
pub use error::CkksError;
pub use eval::Evaluator;
pub use keys::{GaloisKeys, KeySwitchKey, PublicKey, RelinKey, SecretKey};
pub use params::{CkksParams, ParamSet};
