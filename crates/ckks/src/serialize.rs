//! Dependency-free binary serialization for keys, plaintexts, and
//! ciphertexts.
//!
//! The cloud deployment the paper targets (Figure 7) ships ciphertexts and
//! evaluation keys between client, host, and board; this module provides
//! the wire format. It is a simple, versioned, little-endian layout with
//! explicit magic bytes — deliberately hand-rolled so the public API
//! carries no serde dependency (see DESIGN.md).
//!
//! Polynomials always serialize their modulus chain so the receiver can
//! validate against its own context; deserialization checks degree,
//! moduli, and representation tags and fails loudly on any mismatch.
//!
//! # Decoding is total on untrusted input
//!
//! Every `deserialize_*` entry point treats its input as hostile wire
//! bytes: length fields are bounded by the bytes actually present before
//! any allocation (a 20-byte message can never reserve gigabytes),
//! scales must be finite and `>= 2` (mirroring parameter validation, so
//! a NaN or subnormal scale can't corrupt downstream rescale/multiply
//! arithmetic), residues must be canonical, and every failure is a
//! structured [`CkksError`] — never a panic or abort. The
//! `adversarial_decode` proptest suite drives random corruption through
//! each entry point to enforce this.

use heax_math::poly::{Representation, RnsPoly};
use heax_math::sampling::EXPAND_SEED_LEN;
use heax_math::word::Modulus;

use crate::ciphertext::{Ciphertext, Plaintext, SeededCiphertext};
use crate::context::CkksContext;
use crate::keys::{KeySwitchKey, PublicKey, RelinKey, SecretKey};
use crate::CkksError;

/// Format magic: "HEAX".
const MAGIC: [u8; 4] = *b"HEAX";
/// Format version.
const VERSION: u8 = 1;
/// Bytes of the object header: magic (4) + version (1) + tag (1).
const HEADER_LEN: usize = 6;

/// Object tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    Poly = 1,
    Plaintext = 2,
    Ciphertext = 3,
    SecretKey = 4,
    PublicKey = 5,
    KeySwitchKey = 6,
    SeededCiphertext = 7,
}

impl Tag {
    fn from_u8(v: u8) -> Option<Tag> {
        match v {
            1 => Some(Tag::Poly),
            2 => Some(Tag::Plaintext),
            3 => Some(Tag::Ciphertext),
            4 => Some(Tag::SecretKey),
            5 => Some(Tag::PublicKey),
            6 => Some(Tag::KeySwitchKey),
            7 => Some(Tag::SeededCiphertext),
            _ => None,
        }
    }
}

/// A growable little-endian writer over a borrowed buffer, so callers
/// with a hot serialization path can reuse one allocation.
struct Writer<'b> {
    buf: &'b mut Vec<u8>,
}

impl Writer<'_> {
    fn header(&mut self, tag: Tag) {
        self.buf.extend_from_slice(&MAGIC);
        self.buf.push(VERSION);
        self.buf.push(tag as u8);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn words(&mut self, words: &[u64]) {
        self.u64(words.len() as u64);
        for &w in words {
            self.u64(w);
        }
    }
}

/// A bounds-checked little-endian reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn error(what: &str) -> CkksError {
        CkksError::InvalidParameters {
            reason: format!("malformed serialized data: {what}"),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkksError> {
        // `get(..n)` on the tail (not `pos + n > len`): the latter
        // overflows for hostile 64-bit length fields routed here by the
        // container formats.
        let s = self
            .buf
            .get(self.pos..)
            .and_then(|rest| rest.get(..n))
            .ok_or_else(|| Self::error("truncated"))?;
        self.pos += n;
        Ok(s)
    }

    fn header(&mut self, expect: Tag) -> Result<(), CkksError> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(Self::error("bad magic"));
        }
        let version = self.u8()?;
        if version != VERSION {
            return Err(Self::error("unsupported version"));
        }
        let tag = Tag::from_u8(self.u8()?).ok_or_else(|| Self::error("unknown tag"))?;
        if tag != expect {
            return Err(Self::error("unexpected object tag"));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, CkksError> {
        match self.take(1)? {
            &[b] => Ok(b),
            _ => Err(Self::error("truncated")),
        }
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], CkksError> {
        self.take(N)?
            .try_into()
            .map_err(|_| Self::error("truncated"))
    }

    fn u64(&mut self) -> Result<u64, CkksError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, CkksError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    fn words(&mut self) -> Result<Vec<u64>, CkksError> {
        let n = self.u64()? as usize;
        // Bound the pre-allocation by the bytes actually present: a
        // hostile length header must not reserve memory the message
        // cannot back (8·n words must fit in the remaining buffer).
        if n > (self.buf.len() - self.pos) / 8 {
            return Err(Self::error("length field exceeds remaining bytes"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reads a scale field, enforcing the same bound as parameter
    /// validation ([`crate::params::CkksParams::new`]): finite and
    /// `>= 2`, so malformed wire bytes can't smuggle a NaN/∞/subnormal
    /// scale into downstream rescale or multiply arithmetic.
    fn scale(&mut self) -> Result<f64, CkksError> {
        let scale = self.f64()?;
        if !(scale.is_finite() && scale >= 2.0) {
            return Err(Self::error("scale must be finite and >= 2"));
        }
        Ok(scale)
    }

    fn finish(&self) -> Result<(), CkksError> {
        if self.pos != self.buf.len() {
            return Err(Self::error("trailing bytes"));
        }
        Ok(())
    }
}

fn write_poly(w: &mut Writer, poly: &RnsPoly) {
    w.u64(poly.n() as u64);
    w.u8(match poly.representation() {
        Representation::Coefficient => 0,
        Representation::Ntt => 1,
    });
    let moduli: Vec<u64> = poly.moduli().iter().map(Modulus::value).collect();
    w.words(&moduli);
    w.words(poly.data());
}

fn read_poly(r: &mut Reader) -> Result<RnsPoly, CkksError> {
    let n = r.u64()? as usize;
    let repr = match r.u8()? {
        0 => Representation::Coefficient,
        1 => Representation::Ntt,
        _ => return Err(Reader::error("bad representation tag")),
    };
    let moduli_vals = r.words()?;
    let moduli: Result<Vec<Modulus>, _> = moduli_vals.iter().map(|&p| Modulus::new(p)).collect();
    let moduli = moduli?;
    let data = r.words()?;
    // Residues must be canonical (< modulus).
    for (i, m) in moduli.iter().enumerate() {
        let chunk = data
            .get(i * n..(i + 1) * n)
            .ok_or_else(|| Reader::error("data shorter than moduli require"))?;
        if chunk.iter().any(|&c| c >= m.value()) {
            return Err(Reader::error("non-canonical residue"));
        }
    }
    Ok(RnsPoly::from_data(n, &moduli, data, repr)?)
}

/// Serializes a plaintext.
pub fn serialize_plaintext(pt: &Plaintext) -> Vec<u8> {
    let mut buf = Vec::new();
    serialize_plaintext_into(pt, &mut buf);
    buf
}

/// [`serialize_plaintext`] into a caller-provided buffer (cleared
/// first), so a serving loop can reuse one wire buffer across requests
/// instead of allocating per message.
pub fn serialize_plaintext_into(pt: &Plaintext, buf: &mut Vec<u8>) {
    buf.clear();
    let mut w = Writer { buf };
    w.header(Tag::Plaintext);
    w.u64(pt.level() as u64);
    w.f64(pt.scale());
    write_poly(&mut w, pt.poly());
}

/// Deserializes a plaintext, validating against the context.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_plaintext(buf: &[u8], ctx: &CkksContext) -> Result<Plaintext, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::Plaintext)?;
    let level = r.u64()? as usize;
    let scale = r.scale()?;
    let poly = read_poly(&mut r)?;
    r.finish()?;
    validate_poly(&poly, ctx, level)?;
    Ok(Plaintext::from_parts(poly, level, scale))
}

/// Serializes a ciphertext.
pub fn serialize_ciphertext(ct: &Ciphertext) -> Vec<u8> {
    let mut buf = Vec::new();
    serialize_ciphertext_into(ct, &mut buf);
    buf
}

/// [`serialize_ciphertext`] into a caller-provided buffer (cleared
/// first), so a serving loop can reuse one wire buffer across requests
/// instead of allocating per message.
pub fn serialize_ciphertext_into(ct: &Ciphertext, buf: &mut Vec<u8>) {
    buf.clear();
    let mut w = Writer { buf };
    w.header(Tag::Ciphertext);
    w.u64(ct.level() as u64);
    w.f64(ct.scale());
    w.u64(ct.size() as u64);
    for c in ct.components() {
        write_poly(&mut w, c);
    }
}

/// Deserializes a ciphertext, validating against the context.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_ciphertext(buf: &[u8], ctx: &CkksContext) -> Result<Ciphertext, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::Ciphertext)?;
    let level = r.u64()? as usize;
    let scale = r.scale()?;
    let size = r.u64()? as usize;
    if !(2..=8).contains(&size) {
        return Err(Reader::error("implausible component count"));
    }
    let mut polys = Vec::with_capacity(size);
    for _ in 0..size {
        let p = read_poly(&mut r)?;
        validate_poly(&p, ctx, level)?;
        polys.push(p);
    }
    r.finish()?;
    let ct = Ciphertext::from_parts(polys, level, scale)?;
    ct.validate(ctx)?;
    Ok(ct)
}

/// Serializes a seeded ciphertext (tag 7): the `b` component plus the
/// 32-byte expansion seed, in place of the uniform `a` polynomial —
/// roughly half the bytes of the equivalent [`serialize_ciphertext`].
pub fn serialize_seeded_ciphertext(ct: &SeededCiphertext) -> Vec<u8> {
    let mut buf = Vec::new();
    serialize_seeded_ciphertext_into(ct, &mut buf);
    buf
}

/// [`serialize_seeded_ciphertext`] into a caller-provided buffer (cleared
/// first).
pub fn serialize_seeded_ciphertext_into(ct: &SeededCiphertext, buf: &mut Vec<u8>) {
    buf.clear();
    let mut w = Writer { buf };
    w.header(Tag::SeededCiphertext);
    w.u64(ct.level() as u64);
    w.f64(ct.scale());
    w.buf.extend_from_slice(ct.seed());
    write_poly(&mut w, ct.b());
}

/// Deserializes a seeded ciphertext, validating against the context. Call
/// [`SeededCiphertext::expand`] on the result to recover the ordinary
/// two-component ciphertext.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_seeded_ciphertext(
    buf: &[u8],
    ctx: &CkksContext,
) -> Result<SeededCiphertext, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::SeededCiphertext)?;
    let level = r.u64()? as usize;
    let scale = r.scale()?;
    let mut seed = [0u8; EXPAND_SEED_LEN];
    seed.copy_from_slice(r.take(EXPAND_SEED_LEN)?);
    let b = read_poly(&mut r)?;
    r.finish()?;
    validate_poly(&b, ctx, level)?;
    SeededCiphertext::from_parts(b, seed, level, scale)
}

/// A zero-copy view over one serialized polynomial: metadata is parsed and
/// bounds-checked, but the limb words stay as borrowed little-endian bytes
/// in the frame buffer until they are actually needed.
#[derive(Clone, Debug)]
pub struct PolyView<'a> {
    n: usize,
    repr: Representation,
    moduli: Vec<Modulus>,
    words: &'a [u8],
}

impl PolyView<'_> {
    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of RNS residues.
    #[inline]
    pub fn num_residues(&self) -> usize {
        self.moduli.len()
    }

    /// Representation tag.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// The modulus chain.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Decodes the word at `(residue, index)` straight from the borrowed
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `residue` or `index` is out of range (the view's shape is
    /// already validated, so in-range access never fails).
    #[inline]
    pub fn word(&self, residue: usize, index: usize) -> u64 {
        // heax-lint: allow(L2) -- documented `# Panics` precondition API, not a decode entry point
        assert!(
            residue < self.moduli.len() && index < self.n,
            "out of range"
        );
        let off = (residue * self.n + index) * 8;
        // heax-lint: allow(L2) -- in range: the view's shape was bounds-checked at parse time
        u64::from_le_bytes(self.words[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Materializes the view into an owned [`RnsPoly`], validating residue
    /// canonicity in the same single pass that copies the words — the only
    /// full traversal of the limb data on the receive path.
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidParameters`] on a non-canonical residue.
    pub fn to_poly(&self) -> Result<RnsPoly, CkksError> {
        let mut data = Vec::with_capacity(self.moduli.len() * self.n);
        let mut limbs = self.words.chunks_exact(8);
        for m in &self.moduli {
            let bound = m.value();
            for _ in 0..self.n {
                let w = limbs
                    .next()
                    .and_then(|c| c.try_into().ok())
                    .map(u64::from_le_bytes)
                    .ok_or_else(|| Reader::error("truncated"))?;
                if w >= bound {
                    return Err(Reader::error("non-canonical residue"));
                }
                data.push(w);
            }
        }
        Ok(RnsPoly::from_data(self.n, &self.moduli, data, self.repr)?)
    }
}

fn read_poly_view<'a>(r: &mut Reader<'a>) -> Result<PolyView<'a>, CkksError> {
    let n = r.u64()? as usize;
    let repr = match r.u8()? {
        0 => Representation::Coefficient,
        1 => Representation::Ntt,
        _ => return Err(Reader::error("bad representation tag")),
    };
    let moduli_vals = r.words()?;
    let moduli: Result<Vec<Modulus>, _> = moduli_vals.iter().map(|&p| Modulus::new(p)).collect();
    let moduli = moduli?;
    let count = r.u64()? as usize;
    let expect = moduli
        .len()
        .checked_mul(n)
        .ok_or_else(|| Reader::error("data length overflow"))?;
    if count != expect {
        return Err(Reader::error("data shorter than moduli require"));
    }
    let byte_len = count
        .checked_mul(8)
        .ok_or_else(|| Reader::error("data length overflow"))?;
    let words = r.take(byte_len)?;
    Ok(PolyView {
        n,
        repr,
        moduli,
        words,
    })
}

/// A zero-copy view over a serialized ciphertext: level, scale, and
/// per-component [`PolyView`]s borrowing the frame buffer. Parsing
/// validates every length field against the bytes actually present but
/// copies **no limb words** — a hot receive path can inspect metadata
/// (and reject garbage) before paying for a single word of polynomial
/// data, then materialize with [`CiphertextView::to_ciphertext`] in one
/// validate-while-copy pass.
///
/// ```
/// use heax_ckks::serialize::{serialize_ciphertext, CiphertextView};
/// use heax_ckks::{CkksContext, CkksEncoder, CkksParams, Encryptor, PublicKey, SecretKey};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64)?;
/// let ctx = CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64)?)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let sk = SecretKey::generate(&ctx, &mut rng);
/// let pk = PublicKey::generate(&ctx, &sk, &mut rng);
/// let enc = CkksEncoder::new(&ctx);
/// let pt = enc.encode_real(&[1.5], ctx.params().scale(), ctx.max_level())?;
/// let ct = Encryptor::new(&ctx, &pk).encrypt(&pt, &mut rng)?;
/// let wire_bytes = serialize_ciphertext(&ct);
///
/// // Parse borrows: metadata is validated, limb words stay in the buffer.
/// let view = CiphertextView::parse(&wire_bytes)?;
/// assert_eq!((view.size(), view.level()), (ct.size(), ct.level()));
/// // Materialize decodes + canonicity-checks each word exactly once.
/// assert_eq!(view.to_ciphertext(&ctx)?, ct);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CiphertextView<'a> {
    level: usize,
    scale: f64,
    components: Vec<PolyView<'a>>,
}

impl<'a> CiphertextView<'a> {
    /// Parses a borrowed view from serialized ciphertext bytes. Decoding
    /// is total: any malformed input (bad magic, hostile length fields,
    /// truncation, trailing bytes) yields `Err`, never a panic, and no
    /// limb data is read or copied.
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidParameters`] on malformed input.
    pub fn parse(buf: &'a [u8]) -> Result<Self, CkksError> {
        let mut r = Reader::new(buf);
        r.header(Tag::Ciphertext)?;
        let level = r.u64()? as usize;
        let scale = r.scale()?;
        let size = r.u64()? as usize;
        if !(2..=8).contains(&size) {
            return Err(Reader::error("implausible component count"));
        }
        let mut components = Vec::with_capacity(size);
        for _ in 0..size {
            components.push(read_poly_view(&mut r)?);
        }
        r.finish()?;
        Ok(Self {
            level,
            scale,
            components,
        })
    }

    /// Level in the modulus chain.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Encoding scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of polynomial components.
    #[inline]
    pub fn size(&self) -> usize {
        self.components.len()
    }

    /// Component `i` as a borrowed polynomial view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    #[inline]
    pub fn component(&self, i: usize) -> &PolyView<'a> {
        // heax-lint: allow(L2) -- documented `# Panics` precondition API, not a decode entry point
        &self.components[i]
    }

    /// Materializes the view into an owned, context-validated
    /// [`Ciphertext`]. Limb words are decoded, canonicity-checked, and
    /// copied exactly once.
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidParameters`] on context mismatch or
    /// non-canonical residues.
    pub fn to_ciphertext(&self, ctx: &CkksContext) -> Result<Ciphertext, CkksError> {
        let mut polys = Vec::with_capacity(self.components.len());
        for view in &self.components {
            let p = view.to_poly()?;
            validate_poly(&p, ctx, self.level)?;
            polys.push(p);
        }
        let ct = Ciphertext::from_parts(polys, self.level, self.scale)?;
        ct.validate(ctx)?;
        Ok(ct)
    }
}

/// Decodes an inline wire operand that may be either a full ciphertext
/// (tag 3, via the zero-copy [`CiphertextView`] path) or a seeded fresh
/// encryption (tag 7, expanded deterministically). Returns the owned
/// ciphertext plus `true` when the operand arrived seeded — the serving
/// layer feeds that bit into the transfer model, which prices a seeded
/// upload at roughly half the bytes.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_operand(buf: &[u8], ctx: &CkksContext) -> Result<(Ciphertext, bool), CkksError> {
    // Peek the object tag (byte 6) without committing to either decoder.
    match buf.get(5).copied().and_then(Tag::from_u8) {
        Some(Tag::SeededCiphertext) => {
            let seeded = deserialize_seeded_ciphertext(buf, ctx)?;
            Ok((seeded.expand(ctx)?, true))
        }
        _ => Ok((CiphertextView::parse(buf)?.to_ciphertext(ctx)?, false)),
    }
}

/// Closed-form serialized size of one polynomial with `limbs` residues at
/// ring degree `n`: `n`(8) + repr(1) + moduli(8 + 8·limbs) + data
/// (8 + 8·limbs·n). Unit-tested against the real encoder.
pub fn serialized_poly_bytes(n: usize, limbs: usize) -> usize {
    8 + 1 + (8 + 8 * limbs) + (8 + 8 * limbs * n)
}

/// Closed-form serialized size of a `size`-component ciphertext.
pub fn serialized_ciphertext_bytes(n: usize, limbs: usize, size: usize) -> usize {
    HEADER_LEN + 8 + 8 + 8 + size * serialized_poly_bytes(n, limbs)
}

/// Closed-form serialized size of a seeded fresh encryption: one `b`
/// polynomial plus the 32-byte seed standing in for `a`.
pub fn serialized_seeded_ciphertext_bytes(n: usize, limbs: usize) -> usize {
    HEADER_LEN + 8 + 8 + EXPAND_SEED_LEN + serialized_poly_bytes(n, limbs)
}

/// Serializes a secret key.
pub fn serialize_secret_key(sk: &SecretKey) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = Writer { buf: &mut buf };
    w.header(Tag::SecretKey);
    write_poly(&mut w, sk.poly());
    buf
}

/// Deserializes a secret key.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_secret_key(buf: &[u8], ctx: &CkksContext) -> Result<SecretKey, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::SecretKey)?;
    let poly = read_poly(&mut r)?;
    r.finish()?;
    validate_full_chain(&poly, ctx)?;
    Ok(SecretKey { poly })
}

/// Serializes a public key.
pub fn serialize_public_key(pk: &PublicKey) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = Writer { buf: &mut buf };
    w.header(Tag::PublicKey);
    write_poly(&mut w, pk.b());
    write_poly(&mut w, pk.a());
    buf
}

/// Deserializes a public key.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_public_key(buf: &[u8], ctx: &CkksContext) -> Result<PublicKey, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::PublicKey)?;
    let b = read_poly(&mut r)?;
    let a = read_poly(&mut r)?;
    r.finish()?;
    validate_full_chain(&b, ctx)?;
    validate_full_chain(&a, ctx)?;
    Ok(PublicKey { b, a })
}

/// Serializes a key-switching key (also used for relinearization keys).
pub fn serialize_ksk(ksk: &KeySwitchKey) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = Writer { buf: &mut buf };
    w.header(Tag::KeySwitchKey);
    w.u64(ksk.decomp_len() as u64);
    for i in 0..ksk.decomp_len() {
        let (b, a) = ksk.component(i);
        write_poly(&mut w, b);
        write_poly(&mut w, a);
    }
    buf
}

/// Deserializes a key-switching key.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_ksk(buf: &[u8], ctx: &CkksContext) -> Result<KeySwitchKey, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::KeySwitchKey)?;
    let d = r.u64()? as usize;
    if d != ctx.params().k() {
        return Err(Reader::error("decomposition length mismatch"));
    }
    let mut components = Vec::with_capacity(d);
    for _ in 0..d {
        let b = read_poly(&mut r)?;
        let a = read_poly(&mut r)?;
        validate_full_chain(&b, ctx)?;
        validate_full_chain(&a, ctx)?;
        components.push((b, a));
    }
    r.finish()?;
    // Shoup tables are derived data; recompute them rather than shipping
    // them over the wire.
    Ok(KeySwitchKey::from_components(components))
}

/// Serializes a relinearization key.
pub fn serialize_relin_key(rlk: &RelinKey) -> Vec<u8> {
    serialize_ksk(rlk.ksk())
}

/// Serializes Galois keys: the Galois elements followed by each element's
/// key-switching key (permutation tables are regenerated on load).
pub fn serialize_galois_keys(gks: &crate::keys::GaloisKeys) -> Vec<u8> {
    // `elements()` only yields stored keys, so the lookup cannot miss;
    // stay total anyway (drop the pair) rather than panic in a serializer.
    let mut keyed: Vec<(usize, &KeySwitchKey)> = gks
        .elements()
        .filter_map(|e| gks.key(e).ok().map(|k| (e, k)))
        .collect();
    keyed.sort_unstable_by_key(|&(e, _)| e);
    let mut buf = Vec::new();
    let mut w = Writer { buf: &mut buf };
    w.header(Tag::KeySwitchKey); // container reuses the ksk tag + count
    w.u64(keyed.len() as u64);
    for (elt, key) in keyed {
        let ksk_bytes = serialize_ksk(key);
        w.u64(elt as u64);
        w.u64(ksk_bytes.len() as u64);
        w.buf.extend_from_slice(&ksk_bytes);
    }
    buf
}

/// Deserializes Galois keys, rebuilding permutation tables.
///
/// # Errors
///
/// [`CkksError::InvalidParameters`] on malformed input or context
/// mismatch.
pub fn deserialize_galois_keys(
    buf: &[u8],
    ctx: &CkksContext,
) -> Result<crate::keys::GaloisKeys, CkksError> {
    let mut r = Reader::new(buf);
    r.header(Tag::KeySwitchKey)?;
    let count = r.u64()? as usize;
    if count > 4096 {
        return Err(Reader::error("implausible Galois key count"));
    }
    let mut keys = std::collections::HashMap::new();
    let mut permutations = std::collections::HashMap::new();
    for _ in 0..count {
        let elt = r.u64()? as usize;
        if elt.is_multiple_of(2) || elt >= 2 * ctx.n() {
            return Err(Reader::error("invalid Galois element"));
        }
        let len = r.u64()? as usize;
        let ksk_bytes = r.take(len)?;
        let ksk = deserialize_ksk(ksk_bytes, ctx)?;
        permutations.insert(elt, crate::galois::galois_permutation(elt, ctx.n()));
        keys.insert(elt, ksk);
    }
    r.finish()?;
    Ok(crate::keys::GaloisKeys { keys, permutations })
}

/// Deserializes a relinearization key.
///
/// # Errors
///
/// Same as [`deserialize_ksk`].
pub fn deserialize_relin_key(buf: &[u8], ctx: &CkksContext) -> Result<RelinKey, CkksError> {
    Ok(RelinKey {
        ksk: deserialize_ksk(buf, ctx)?,
    })
}

fn validate_poly(poly: &RnsPoly, ctx: &CkksContext, level: usize) -> Result<(), CkksError> {
    if poly.n() != ctx.n() {
        return Err(Reader::error("ring degree mismatch"));
    }
    if level > ctx.max_level() || poly.num_residues() != level + 1 {
        return Err(Reader::error("level mismatch"));
    }
    for (a, b) in poly.moduli().iter().zip(ctx.level_moduli(level)) {
        if a.value() != b.value() {
            return Err(Reader::error("modulus chain mismatch"));
        }
    }
    Ok(())
}

fn validate_full_chain(poly: &RnsPoly, ctx: &CkksContext) -> Result<(), CkksError> {
    if poly.n() != ctx.n() || poly.num_residues() != ctx.moduli().len() {
        return Err(Reader::error("full-chain shape mismatch"));
    }
    for (a, b) in poly.moduli().iter().zip(ctx.moduli()) {
        if a.value() != b.value() {
            return Err(Reader::error("modulus chain mismatch"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use crate::encoder::CkksEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Rig {
        ctx: CkksContext,
        sk: SecretKey,
        pk: PublicKey,
        rlk: RelinKey,
        ct: Ciphertext,
        pt: Plaintext,
    }

    fn rig() -> Rig {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let pt = enc
            .encode_real(&[1.5, -2.0], ctx.params().scale(), ctx.max_level())
            .unwrap();
        let ct = Encryptor::new(&ctx, &pk).encrypt(&pt, &mut rng).unwrap();
        Rig {
            ctx,
            sk,
            pk,
            rlk,
            ct,
            pt,
        }
    }

    #[test]
    fn ciphertext_roundtrip_preserves_decryption() {
        let r = rig();
        let bytes = serialize_ciphertext(&r.ct);
        let back = deserialize_ciphertext(&bytes, &r.ctx).unwrap();
        assert_eq!(back, r.ct);
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let enc = CkksEncoder::new(&r.ctx);
        let vals = enc.decode_real(&dec.decrypt(&back).unwrap()).unwrap();
        assert!((vals[0] - 1.5).abs() < 1e-3);
    }

    #[test]
    fn plaintext_roundtrip() {
        let r = rig();
        let bytes = serialize_plaintext(&r.pt);
        let back = deserialize_plaintext(&bytes, &r.ctx).unwrap();
        assert_eq!(back, r.pt);
    }

    #[test]
    fn key_roundtrips() {
        let r = rig();
        let sk2 = deserialize_secret_key(&serialize_secret_key(&r.sk), &r.ctx).unwrap();
        assert_eq!(sk2, r.sk);
        let pk2 = deserialize_public_key(&serialize_public_key(&r.pk), &r.ctx).unwrap();
        assert_eq!(pk2, r.pk);
        let rlk2 = deserialize_relin_key(&serialize_relin_key(&r.rlk), &r.ctx).unwrap();
        assert_eq!(rlk2, r.rlk);
    }

    #[test]
    fn galois_keys_roundtrip_and_still_rotate() {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(88);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let gks = crate::keys::GaloisKeys::generate(&ctx, &sk, &[1, -2], &mut rng);
        let bytes = serialize_galois_keys(&gks);
        let back = deserialize_galois_keys(&bytes, &ctx).unwrap();
        assert_eq!(back.elements().count(), gks.elements().count());

        // The deserialized keys still rotate correctly.
        let enc = CkksEncoder::new(&ctx);
        let vals: Vec<f64> = (0..ctx.n() / 2).map(|i| i as f64).collect();
        let ct = Encryptor::new(&ctx, &pk)
            .encrypt(
                &enc.encode_real(&vals, ctx.params().scale(), ctx.max_level())
                    .unwrap(),
                &mut rng,
            )
            .unwrap();
        let eval = crate::eval::Evaluator::new(&ctx);
        let a = eval.rotate(&ct, 1, &gks).unwrap();
        let b = eval.rotate(&ct, 1, &back).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corruption_detected() {
        let r = rig();
        let bytes = serialize_ciphertext(&r.ct);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(deserialize_ciphertext(&bad, &r.ctx).is_err());
        // Truncation.
        assert!(deserialize_ciphertext(&bytes[..bytes.len() - 3], &r.ctx).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(deserialize_ciphertext(&long, &r.ctx).is_err());
        // Wrong object tag.
        let pt_bytes = serialize_plaintext(&r.pt);
        assert!(deserialize_ciphertext(&pt_bytes, &r.ctx).is_err());
        // Non-canonical residue: set a residue word above its modulus.
        let mut tampered = bytes;
        let len = tampered.len();
        tampered[len - 1] = 0xff;
        tampered[len - 2] = 0xff;
        assert!(deserialize_ciphertext(&tampered, &r.ctx).is_err());
    }

    #[test]
    fn hostile_scale_rejected() {
        let r = rig();
        let bytes = serialize_ciphertext(&r.ct);
        // The scale field sits after magic(4) + version(1) + tag(1) +
        // level(8).
        let scale_off = 4 + 1 + 1 + 8;
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, 1.5, -4.0] {
            let mut tampered = bytes.clone();
            tampered[scale_off..scale_off + 8].copy_from_slice(&bad.to_le_bytes());
            assert!(
                deserialize_ciphertext(&tampered, &r.ctx).is_err(),
                "scale {bad} must be rejected"
            );
        }
        let pt_bytes = serialize_plaintext(&r.pt);
        let mut tampered = pt_bytes;
        tampered[scale_off..scale_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(deserialize_plaintext(&tampered, &r.ctx).is_err());
    }

    #[test]
    fn hostile_length_header_fails_before_allocating() {
        let r = rig();
        let bytes = serialize_ciphertext(&r.ct);
        // First words-length header (the moduli count of component 0):
        // header(6) + level(8) + scale(8) + size(8) + n(8) + repr(1).
        let words_off = 6 + 8 + 8 + 8 + 8 + 1;
        for huge in [u64::MAX, 1 << 40, 1 << 28] {
            let mut tampered = bytes.clone();
            tampered[words_off..words_off + 8].copy_from_slice(&huge.to_le_bytes());
            // Must error out (without attempting a giant reservation —
            // a 2 GiB with_capacity here would abort the test under a
            // memory cap rather than fail an assert).
            assert!(
                deserialize_ciphertext(&tampered, &r.ctx).is_err(),
                "length {huge} must be rejected"
            );
        }
    }

    #[test]
    fn serialize_into_reuses_buffer() {
        let r = rig();
        // Stale, differently-sized content must be fully replaced.
        let mut buf = serialize_plaintext(&r.pt);
        serialize_ciphertext_into(&r.ct, &mut buf);
        assert_eq!(buf, serialize_ciphertext(&r.ct));
        assert_eq!(deserialize_ciphertext(&buf, &r.ctx).unwrap(), r.ct);
        serialize_plaintext_into(&r.pt, &mut buf);
        assert_eq!(buf, serialize_plaintext(&r.pt));
    }

    #[test]
    fn cross_context_rejected() {
        let r = rig();
        // A context with different primes.
        let chain = heax_math::primes::generate_prime_chain(&[41, 41, 41, 42], 64).unwrap();
        let other = CkksContext::new(
            crate::params::CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap(),
        )
        .unwrap();
        let bytes = serialize_ciphertext(&r.ct);
        assert!(deserialize_ciphertext(&bytes, &other).is_err());
    }

    #[test]
    fn sizes_are_sane() {
        let r = rig();
        // Ciphertext ≈ 2 components × (level+1) residues × n × 8 bytes.
        let bytes = serialize_ciphertext(&r.ct);
        let payload = 2 * (r.ct.level() + 1) * r.ctx.n() * 8;
        assert!(bytes.len() > payload);
        assert!(bytes.len() < payload + 1024);
    }

    #[test]
    fn seeded_ciphertext_roundtrip_halves_the_bytes() {
        let r = rig();
        let mut rng = StdRng::seed_from_u64(91);
        let enc = CkksEncoder::new(&r.ctx);
        let pt = enc
            .encode_real(&[2.25, -8.0], r.ctx.params().scale(), r.ctx.max_level())
            .unwrap();
        let seeded =
            crate::encrypt::encrypt_symmetric_seeded(&r.ctx, &r.sk, &pt, &mut rng).unwrap();
        let bytes = serialize_seeded_ciphertext(&seeded);
        let back = deserialize_seeded_ciphertext(&bytes, &r.ctx).unwrap();
        assert_eq!(back, seeded);
        // The expansion of the decoded object matches the sender's.
        assert_eq!(back.expand(&r.ctx).unwrap(), seeded.expand(&r.ctx).unwrap());
        // Roughly half the full encoding (one poly + 32 bytes vs two).
        let full = serialize_ciphertext(&seeded.expand(&r.ctx).unwrap());
        assert!(bytes.len() * 2 < full.len() + 1024);
        // And the closed forms agree with the real encoders.
        let limbs = r.ctx.max_level() + 1;
        assert_eq!(
            bytes.len(),
            serialized_seeded_ciphertext_bytes(r.ctx.n(), limbs)
        );
        assert_eq!(full.len(), serialized_ciphertext_bytes(r.ctx.n(), limbs, 2));
    }

    #[test]
    fn seeded_corruption_detected() {
        let r = rig();
        let mut rng = StdRng::seed_from_u64(92);
        let enc = CkksEncoder::new(&r.ctx);
        let pt = enc
            .encode_real(&[1.0], r.ctx.params().scale(), r.ctx.max_level())
            .unwrap();
        let seeded =
            crate::encrypt::encrypt_symmetric_seeded(&r.ctx, &r.sk, &pt, &mut rng).unwrap();
        let bytes = serialize_seeded_ciphertext(&seeded);
        assert!(deserialize_seeded_ciphertext(&bytes[..10], &r.ctx).is_err());
        let mut bad = bytes.clone();
        bad[5] = Tag::Ciphertext as u8;
        assert!(deserialize_seeded_ciphertext(&bad, &r.ctx).is_err());
        let mut long = bytes;
        long.push(0);
        assert!(deserialize_seeded_ciphertext(&long, &r.ctx).is_err());
    }

    #[test]
    fn ciphertext_view_is_faithful() {
        let r = rig();
        let bytes = serialize_ciphertext(&r.ct);
        let view = CiphertextView::parse(&bytes).unwrap();
        assert_eq!(view.level(), r.ct.level());
        assert_eq!(view.scale(), r.ct.scale());
        assert_eq!(view.size(), r.ct.size());
        let c0 = view.component(0);
        assert_eq!(c0.n(), r.ct.n());
        assert_eq!(c0.num_residues(), r.ct.level() + 1);
        assert_eq!(c0.representation(), Representation::Ntt);
        assert_eq!(c0.word(0, 3), r.ct.component(0).residue(0)[3]);
        assert_eq!(view.to_ciphertext(&r.ctx).unwrap(), r.ct);
    }

    #[test]
    fn ciphertext_view_rejects_garbage_without_touching_limbs() {
        let r = rig();
        let bytes = serialize_ciphertext(&r.ct);
        assert!(CiphertextView::parse(&bytes[..20]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(CiphertextView::parse(&bad_magic).is_err());
        // Hostile word-count header.
        let words_off = HEADER_LEN + 8 + 8 + 8 + 8 + 1;
        for huge in [u64::MAX, 1 << 40] {
            let mut t = bytes.clone();
            t[words_off..words_off + 8].copy_from_slice(&huge.to_le_bytes());
            assert!(CiphertextView::parse(&t).is_err());
        }
        // Non-canonical residues pass parse (limbs untouched) but fail
        // materialization.
        let mut tampered = bytes;
        let len = tampered.len();
        tampered[len - 1] = 0xff;
        tampered[len - 2] = 0xff;
        let view = CiphertextView::parse(&tampered).unwrap();
        assert!(view.to_ciphertext(&r.ctx).is_err());
    }

    #[test]
    fn operand_decoder_handles_both_encodings() {
        let r = rig();
        let (full, seeded_flag) =
            deserialize_operand(&serialize_ciphertext(&r.ct), &r.ctx).unwrap();
        assert_eq!(full, r.ct);
        assert!(!seeded_flag);

        let mut rng = StdRng::seed_from_u64(93);
        let enc = CkksEncoder::new(&r.ctx);
        let pt = enc
            .encode_real(&[5.0], r.ctx.params().scale(), r.ctx.max_level())
            .unwrap();
        let seeded =
            crate::encrypt::encrypt_symmetric_seeded(&r.ctx, &r.sk, &pt, &mut rng).unwrap();
        let (expanded, seeded_flag) =
            deserialize_operand(&serialize_seeded_ciphertext(&seeded), &r.ctx).unwrap();
        assert_eq!(expanded, seeded.expand(&r.ctx).unwrap());
        assert!(seeded_flag);

        assert!(deserialize_operand(&[], &r.ctx).is_err());
        assert!(deserialize_operand(&serialize_plaintext(&r.pt), &r.ctx).is_err());
    }
}
