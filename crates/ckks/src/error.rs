//! Error type for the CKKS scheme.

use core::fmt;

use heax_math::MathError;

/// Errors produced by CKKS operations.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CkksError {
    /// Underlying arithmetic error.
    Math(MathError),
    /// Parameter validation failed.
    InvalidParameters {
        /// Human-readable reason.
        reason: String,
    },
    /// Operands live at different levels of the modulus chain.
    LevelMismatch {
        /// Level of the left operand.
        a: usize,
        /// Level of the right operand.
        b: usize,
    },
    /// Operands carry different scales (beyond f64 tolerance).
    ScaleMismatch {
        /// Scale of the left operand.
        a: f64,
        /// Scale of the right operand.
        b: f64,
    },
    /// A ciphertext has an unsupported number of polynomial components.
    InvalidCiphertext {
        /// Number of components found.
        components: usize,
        /// What the operation expected.
        expected: &'static str,
    },
    /// The operation would consume a modulus that is not there.
    LevelExhausted,
    /// A rotation was requested for a step with no generated Galois key.
    MissingGaloisKey {
        /// The Galois element that was needed.
        galois_elt: usize,
    },
    /// Too many values passed to the encoder.
    TooManySlots {
        /// Values provided.
        got: usize,
        /// Slots available (n/2).
        slots: usize,
    },
    /// Encoded coefficient magnitude exceeds what the encoder can represent.
    EncodingOverflow,
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Math(e) => write!(f, "math error: {e}"),
            Self::InvalidParameters { reason } => write!(f, "invalid parameters: {reason}"),
            Self::LevelMismatch { a, b } => {
                write!(f, "operands at different levels: {a} vs {b}")
            }
            Self::ScaleMismatch { a, b } => {
                write!(f, "operands have different scales: {a} vs {b}")
            }
            Self::InvalidCiphertext {
                components,
                expected,
            } => write!(
                f,
                "ciphertext has {components} components, expected {expected}"
            ),
            Self::LevelExhausted => write!(f, "modulus chain exhausted: cannot drop below level 0"),
            Self::MissingGaloisKey { galois_elt } => {
                write!(f, "no Galois key generated for element {galois_elt}")
            }
            Self::TooManySlots { got, slots } => {
                write!(f, "{got} values exceed the {slots} available slots")
            }
            Self::EncodingOverflow => {
                write!(f, "encoded coefficient exceeds representable magnitude")
            }
        }
    }
}

impl std::error::Error for CkksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CkksError {
    fn from(e: MathError) -> Self {
        Self::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CkksError::LevelMismatch { a: 1, b: 2 };
        assert!(e.to_string().contains("different levels"));
        let m: CkksError = MathError::EmptyBasis.into();
        assert!(std::error::Error::source(&m).is_some());
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CkksError>();
    }
}
