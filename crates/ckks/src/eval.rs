//! Homomorphic evaluation: the server-side operations HEAX accelerates.
//!
//! * [`Evaluator::add`] / [`Evaluator::sub`] — `CKKS.Add` (Section 3.2);
//! * [`Evaluator::multiply`] — `CKKS.Mul`, Algorithm 5 (dyadic products of
//!   all component pairs; the MULT module in hardware);
//! * [`Evaluator::rescale`] — `CKKS.Rescale`, Algorithm 6;
//! * [`Evaluator::key_switch`] — `KeySwitch`, Algorithm 7 (the KeySwitch
//!   module in hardware);
//! * [`Evaluator::relinearize`] — `CKKS.Relin` (key switch on `c₂`);
//! * [`Evaluator::rotate`] / [`Evaluator::conjugate`] — Galois automorphism
//!   plus key switch.
//!
//! One deliberate deviation from the paper's pseudo-code: Algorithm 7 ends
//! with `ct' ← CKKS.Add(ct, ct')`, which as written would add the *old*
//! `c₁` into the key-switched `c₁` component. As in SEAL (which the
//! algorithm transcribes), the key-switched pair must replace the
//! component being switched: relinearization computes
//! `(c₀ + f₀, c₁ + f₁)` where `(f₀, f₁) = KeySwitchInner(c₂)`, and rotation
//! computes `(τ(c₀) + f₀, f₁)` where `(f₀, f₁) = KeySwitchInner(τ(c₁))`.
//! [`Evaluator::key_switch`] exposes the inner primitive directly.

use std::sync::{Arc, Mutex};

use heax_math::exec::{self, Executor};
use heax_math::poly::{Representation, RnsPoly};
use heax_math::word::Modulus;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::flooring::{floor_last_into, floor_special_into, floor_special_pair_into};
use crate::galois::{apply_galois_ntt_into, galois_elt_conjugate, galois_elt_from_step};
use crate::keys::{GaloisKeys, KeySwitchKey, RelinKey};
use crate::scratch::{KeySwitchScratch, KsBuffers};
use crate::CkksError;

/// Relative tolerance when comparing scales of operands.
const SCALE_RTOL: f64 = 1e-9;

/// Evaluator borrowing a context, plus an internal reusable workspace.
///
/// By default limb-level work (dyadic products, per-limb NTTs, the
/// key-switch inner loop) is dispatched through the global executor
/// selected by `HEAX_THREADS` (see [`heax_math::exec`]); use
/// [`Evaluator::with_executor`] to pin an explicit backend. All backends
/// are bit-identical.
///
/// The evaluator owns a `KeySwitchScratch` buffer pool (behind a mutex,
/// so the type stays `Sync`): key switching, rescaling, and rotation
/// reuse the same accumulators and per-limb lanes instead of allocating
/// on every call — [`Evaluator::key_switch_into`] is allocation-free
/// after warm-up. Cloning an evaluator starts a fresh (cold) workspace.
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a CkksContext,
    exec: Arc<dyn Executor>,
    scratch: Mutex<KeySwitchScratch>,
}

impl Clone for Evaluator<'_> {
    fn clone(&self) -> Self {
        Self {
            ctx: self.ctx,
            exec: self.exec.clone(),
            scratch: Mutex::new(KeySwitchScratch::new()),
        }
    }
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator using the global (`HEAX_THREADS`-selected)
    /// execution backend.
    pub fn new(ctx: &'a CkksContext) -> Self {
        Self::with_executor(ctx, exec::global().clone())
    }

    /// Creates an evaluator with an explicit execution backend.
    pub fn with_executor(ctx: &'a CkksContext, exec: Arc<dyn Executor>) -> Self {
        Self {
            ctx,
            exec,
            scratch: Mutex::new(KeySwitchScratch::new()),
        }
    }

    /// Locks the scratch workspace (recovering from a poisoned lock — the
    /// buffers hold no invariants a panic could break mid-update that the
    /// per-call `fill(0)` / `ensure` reshaping does not restore).
    fn scratch(&self) -> std::sync::MutexGuard<'_, KeySwitchScratch> {
        self.scratch.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The context.
    #[inline]
    pub fn context(&self) -> &CkksContext {
        self.ctx
    }

    /// The execution backend in use.
    #[inline]
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.exec
    }

    fn check_pair(&self, a: &Ciphertext, b: &Ciphertext) -> Result<(), CkksError> {
        if a.level != b.level {
            return Err(CkksError::LevelMismatch {
                a: a.level,
                b: b.level,
            });
        }
        if !scales_match(a.scale, b.scale) {
            return Err(CkksError::ScaleMismatch {
                a: a.scale,
                b: b.scale,
            });
        }
        Ok(())
    }

    /// `CKKS.Add`: component-wise sum. Operands may have different sizes
    /// (e.g. a 3-component product plus a fresh ciphertext).
    ///
    /// # Errors
    ///
    /// [`CkksError::LevelMismatch`] / [`CkksError::ScaleMismatch`] when the
    /// operands disagree.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_pair(a, b)?;
        let (longer, shorter) = if a.size() >= b.size() { (a, b) } else { (b, a) };
        let mut polys = longer.polys.clone();
        for (dst, src) in polys.iter_mut().zip(&shorter.polys) {
            dst.add_assign_with(src, self.exec.as_ref())?;
        }
        Ciphertext::from_parts(polys, a.level, a.scale)
    }

    /// Component-wise difference (`a - b`).
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::add`].
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_pair(a, b)?;
        let size = a.size().max(b.size());
        let mut polys = Vec::with_capacity(size);
        // The zero stand-in is only needed when the operands differ in
        // component count (e.g. 3-component product minus fresh pair).
        let zero = if a.size() != b.size() {
            Some(RnsPoly::zero(
                self.ctx.n(),
                self.ctx.level_moduli(a.level),
                Representation::Ntt,
            ))
        } else {
            None
        };
        for i in 0..size {
            let ai = a.polys.get(i).or(zero.as_ref()).expect("zero present");
            let bi = b.polys.get(i).or(zero.as_ref()).expect("zero present");
            polys.push(ai.sub_with(bi, self.exec.as_ref())?);
        }
        Ciphertext::from_parts(polys, a.level, a.scale)
    }

    /// Negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext {
            polys: a.polys.iter().map(RnsPoly::neg).collect(),
            level: a.level,
            scale: a.scale,
        }
    }

    /// Adds a plaintext into the `c₀` component.
    ///
    /// # Errors
    ///
    /// Level/scale mismatches as in [`Evaluator::add`].
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        if a.level != pt.level {
            return Err(CkksError::LevelMismatch {
                a: a.level,
                b: pt.level,
            });
        }
        if !scales_match(a.scale, pt.scale) {
            return Err(CkksError::ScaleMismatch {
                a: a.scale,
                b: pt.scale,
            });
        }
        let mut out = a.clone();
        out.polys[0].add_assign(&pt.poly)?;
        Ok(out)
    }

    /// Subtracts a plaintext from the `c₀` component.
    ///
    /// # Errors
    ///
    /// Level/scale mismatches as in [`Evaluator::add`].
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        if a.level != pt.level {
            return Err(CkksError::LevelMismatch {
                a: a.level,
                b: pt.level,
            });
        }
        if !scales_match(a.scale, pt.scale) {
            return Err(CkksError::ScaleMismatch {
                a: a.scale,
                b: pt.scale,
            });
        }
        let mut out = a.clone();
        out.polys[0] = out.polys[0].sub(&pt.poly)?;
        Ok(out)
    }

    /// Ciphertext-plaintext multiplication (the C-P mode of the MULT
    /// module): every component is multiplied dyadically by the plaintext.
    /// The output scale is the product of scales.
    ///
    /// # Errors
    ///
    /// [`CkksError::LevelMismatch`] when levels disagree.
    pub fn multiply_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        if a.level != pt.level {
            return Err(CkksError::LevelMismatch {
                a: a.level,
                b: pt.level,
            });
        }
        let mut polys = Vec::with_capacity(a.size());
        for c in &a.polys {
            // Write the product straight into the fresh output instead of
            // cloning `c` first (clone-then-overwrite is a wasted memcpy).
            let mut prod = RnsPoly::zero(self.ctx.n(), c.moduli(), c.representation());
            prod.dyadic_mul_set_with(c, &pt.poly, self.exec.as_ref())?;
            polys.push(prod);
        }
        Ciphertext::from_parts(polys, a.level, a.scale * pt.scale)
    }

    /// `CKKS.Mul`, Algorithm 5, generalized to α- and β-component inputs
    /// as the MULT module is (Section 4.1): the output has `α + β - 1`
    /// components `c_t = Σ_{i+j=t} a_i ⊙ b_j`.
    ///
    /// # Errors
    ///
    /// Level/scale mismatches as in [`Evaluator::add`].
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_pair(a, b)?;
        let alpha = a.size();
        let beta = b.size();
        let out_size = alpha + beta - 1;
        let moduli = self.ctx.level_moduli(a.level);
        let mut polys = Vec::with_capacity(out_size);
        for t in 0..out_size {
            // First contributing pair writes the product directly; the
            // rest accumulate — no add-onto-zero pass, bit-identical sums.
            let mut ct = RnsPoly::zero(self.ctx.n(), moduli, Representation::Ntt);
            let i_lo = (t + 1).saturating_sub(beta);
            for i in i_lo..=t.min(alpha - 1) {
                let j = t - i;
                if i == i_lo {
                    ct.dyadic_mul_set_with(&a.polys[i], &b.polys[j], self.exec.as_ref())?;
                } else {
                    ct.dyadic_mul_acc_with(&a.polys[i], &b.polys[j], self.exec.as_ref())?;
                }
            }
            polys.push(ct);
        }
        Ciphertext::from_parts(polys, a.level, a.scale * b.scale)
    }

    /// Squares a ciphertext (multiply with itself).
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::multiply`].
    pub fn square(&self, a: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.multiply(a, a)
    }

    /// Multiplies by a small signed integer constant *without* touching
    /// the scale or consuming a level: every residue is scaled by
    /// `[v]_{p_i}`. Noise grows by `|v|`.
    pub fn multiply_integer(&self, a: &Ciphertext, v: i64) -> Ciphertext {
        let moduli = self.ctx.level_moduli(a.level);
        let scalars: Vec<u64> = moduli.iter().map(|m| m.reduce_i64(v)).collect();
        let mut out = a.clone();
        for p in &mut out.polys {
            p.scale_per_residue(&scalars);
        }
        out
    }

    /// Sums many ciphertexts (tree-free left fold; noise grows linearly).
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidCiphertext`] on an empty list; level/scale
    /// mismatches as in [`Evaluator::add`].
    pub fn add_many(&self, cts: &[Ciphertext]) -> Result<Ciphertext, CkksError> {
        let (first, rest) = cts.split_first().ok_or(CkksError::InvalidCiphertext {
            components: 0,
            expected: "at least one ciphertext",
        })?;
        let mut acc = first.clone();
        for ct in rest {
            acc = self.add(&acc, ct)?;
        }
        Ok(acc)
    }

    /// `CKKS.Rescale`, Algorithm 6: floors every component by the last
    /// active prime, dropping one level and dividing the scale by that
    /// prime.
    ///
    /// # Errors
    ///
    /// [`CkksError::LevelExhausted`] at level 0.
    pub fn rescale(&self, a: &Ciphertext) -> Result<Ciphertext, CkksError> {
        if a.level == 0 {
            return Err(CkksError::LevelExhausted);
        }
        let dropped = self.ctx.moduli()[a.level].value() as f64;
        let n = self.ctx.n();
        let out_moduli = self.ctx.level_moduli(a.level - 1);
        let mut polys = Vec::with_capacity(a.size());
        let mut guard = self.scratch();
        let bufs = &mut guard.ks;
        bufs.ensure(self.ctx, a.level);
        let KsBuffers {
            lane, drop_coeff, ..
        } = bufs;
        for c in &a.polys {
            let mut out = RnsPoly::zero(n, out_moduli, Representation::Ntt);
            floor_last_into(
                c,
                self.ctx,
                a.level,
                self.exec.as_ref(),
                drop_coeff,
                lane,
                &mut out,
            )?;
            polys.push(out);
        }
        drop(guard);
        Ciphertext::from_parts(polys, a.level - 1, a.scale / dropped)
    }

    /// Drops to the next level *without* scaling (modulus switching of the
    /// ciphertext basis only): simply forgets the last residue. Used to
    /// align levels of operands.
    ///
    /// # Errors
    ///
    /// [`CkksError::LevelExhausted`] at level 0.
    pub fn mod_switch_to_next(&self, a: &Ciphertext) -> Result<Ciphertext, CkksError> {
        if a.level == 0 {
            return Err(CkksError::LevelExhausted);
        }
        let mut polys = Vec::with_capacity(a.size());
        for c in &a.polys {
            let mut p = c.clone();
            p.pop_residue();
            polys.push(p);
        }
        Ciphertext::from_parts(polys, a.level - 1, a.scale)
    }

    /// Modulus-switches down to an arbitrary `target` level (repeated
    /// [`Evaluator::mod_switch_to_next`]). The wire path uses this to
    /// compress replies: a client that will only *decrypt* the result
    /// needs a single residue, so the server drops every higher limb
    /// before serializing and shrinks the PCIe-out transfer by `k×`.
    ///
    /// # Errors
    ///
    /// [`CkksError::LevelMismatch`] when `target` is above the
    /// ciphertext's current level.
    pub fn mod_switch_to_level(
        &self,
        a: &Ciphertext,
        target: usize,
    ) -> Result<Ciphertext, CkksError> {
        if target > a.level {
            return Err(CkksError::LevelMismatch {
                a: target,
                b: a.level,
            });
        }
        if target == a.level {
            return Ok(a.clone());
        }
        let mut polys = Vec::with_capacity(a.size());
        for c in &a.polys {
            let mut p = c.clone();
            for _ in target..a.level {
                p.pop_residue();
            }
            polys.push(p);
        }
        Ciphertext::from_parts(polys, target, a.scale)
    }

    /// The inner key-switching primitive (Algorithm 7, lines 1–19): given a
    /// single NTT-form polynomial `target` over the basis of `level` and a
    /// key-switching key, produces the pair `(f₀, f₁)` over the same basis
    /// such that `f₀ + f₁·s ≈ target·s'`.
    ///
    /// The accumulation runs against the key's Shoup
    /// ([`heax_math::word::MulRedConstant`]) tables with lazy `[0, 2p)`
    /// arithmetic and a single deferred reduction — bit-identical to the
    /// Barrett path ([`Evaluator::key_switch_reference`]), one
    /// shift-multiply per coefficient instead of a 128-bit reduction.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Math`] on representation/shape mismatches.
    pub fn key_switch(
        &self,
        target: &RnsPoly,
        ksk: &KeySwitchKey,
        level: usize,
    ) -> Result<(RnsPoly, RnsPoly), CkksError> {
        let n = self.ctx.n();
        let moduli = self.ctx.level_moduli(level);
        let mut f0 = RnsPoly::zero(n, moduli, Representation::Ntt);
        let mut f1 = RnsPoly::zero(n, moduli, Representation::Ntt);
        self.key_switch_into(target, ksk, level, &mut f0, &mut f1)?;
        Ok((f0, f1))
    }

    /// [`Evaluator::key_switch`] into caller-provided output buffers:
    /// `f0`/`f1` must be NTT-form polynomials over the basis of `level`.
    /// Together with the evaluator's internal workspace this makes the
    /// call **allocation-free after warm-up** (first call at a level
    /// shapes the buffers; see the `alloc_free` integration test).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Math`] on representation/shape mismatches of
    /// the target or the output buffers.
    pub fn key_switch_into(
        &self,
        target: &RnsPoly,
        ksk: &KeySwitchKey,
        level: usize,
        f0: &mut RnsPoly,
        f1: &mut RnsPoly,
    ) -> Result<(), CkksError> {
        let mut guard = self.scratch();
        self.key_switch_core(target, ksk, level, &mut guard.ks, f0, f1)
    }

    /// The scratch-parameterized key-switch body shared by
    /// [`Evaluator::key_switch_into`] and [`Evaluator::apply_galois`].
    fn key_switch_core(
        &self,
        target: &RnsPoly,
        ksk: &KeySwitchKey,
        level: usize,
        bufs: &mut KsBuffers,
        f0: &mut RnsPoly,
        f1: &mut RnsPoly,
    ) -> Result<(), CkksError> {
        let ctx = self.ctx;
        if target.representation() != Representation::Ntt {
            return Err(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            ));
        }
        if target.num_residues() != level + 1 {
            return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
                expected: level + 1,
                got: target.num_residues(),
            }));
        }
        let n = ctx.n();
        let k = ctx.params().k();
        check_switch_output(f0, n, ctx.level_moduli(level))?;
        check_switch_output(f1, n, ctx.level_moduli(level))?;
        bufs.ensure(ctx, level);
        let KsBuffers {
            ext_moduli,
            acc0,
            acc1,
            a_coeff,
            lane,
            drop_coeff,
            drop_coeff2,
            ..
        } = bufs;
        let ext_len = ext_moduli.len();

        // k iterations, one per input RNS component (Alg. 7, lines 2-18).
        // The inner loop over the extended basis is embarrassingly
        // parallel (each `j` touches only limb `j` of both accumulators
        // and its private scratch lane — in hardware these are the
        // concurrently running NTT0/DyadMult lanes), so it is dispatched
        // across the evaluator's executor.
        for i in 0..=level {
            // a ← INTT_{p_i}(c̃_{1,i})            (line 3)
            a_coeff.copy_from_slice(target.residue(i));
            ctx.ntt_table(i).inverse_auto(a_coeff);

            let (ksk_b, ksk_a) = ksk.component_shoup(i);
            let a_coeff = &*a_coeff;
            let ext_moduli = &*ext_moduli;
            // The first iteration writes the accumulators outright (no
            // zero-fill pass, no add-onto-zero).
            let first = i == 0;
            exec::for_each_limb3(
                self.exec.as_ref(),
                acc0.data_mut(),
                acc1.data_mut(),
                &mut lane[..ext_len * n],
                n,
                |j, d0, d1, buf| {
                    let m = &ext_moduli[j];
                    // Chain index of extended position j (special prime
                    // last).
                    let chain_idx = if j <= level { j } else { k };
                    // b̃: reuse the NTT form when i == j (line 9), otherwise
                    // reduce in coefficient space and re-NTT inside this
                    // limb's scratch lane (lines 6-7, 14-15).
                    let b_ntt: &[u64] = if chain_idx == i {
                        target.residue(i)
                    } else {
                        for (b, &x) in buf.iter_mut().zip(a_coeff) {
                            *b = m.reduce_u64(x);
                        }
                        ctx.ntt_table(chain_idx).forward_auto(buf);
                        buf
                    };
                    // Accumulate b̃ ⊙ d̃_{i,0/1,j} (lines 11-12, 16-17)
                    // against the Shoup tables, lazily: each product is
                    // in [0, 2p) and the word has headroom for all k of
                    // them whenever (level+1)·2p < 2^64 (every paper
                    // parameter set), so the hot loop is a bare
                    // shift-multiply-add — no reduction at all. The fold
                    // to [0, p) is a single deferred Barrett pass.
                    let kb = &ksk_b[chain_idx * n..(chain_idx + 1) * n];
                    let ka = &ksk_a[chain_idx * n..(chain_idx + 1) * n];
                    if first {
                        for ((d, &x), c) in d0.iter_mut().zip(b_ntt).zip(kb) {
                            *d = c.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                        }
                        for ((d, &x), c) in d1.iter_mut().zip(b_ntt).zip(ka) {
                            *d = c.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                        }
                    } else if lazy_acc_fits(m, level) {
                        for ((d, &x), c) in d0.iter_mut().zip(b_ntt).zip(kb) {
                            *d += c.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                        }
                        for ((d, &x), c) in d1.iter_mut().zip(b_ntt).zip(ka) {
                            *d += c.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                        }
                    } else {
                        // Wide-modulus fallback: correct to [0, 2p) per add.
                        let two_p = 2 * m.value();
                        for ((d, &x), c) in d0.iter_mut().zip(b_ntt).zip(kb) {
                            let s = *d + c.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                            *d = if s >= two_p { s - two_p } else { s };
                        }
                        for ((d, &x), c) in d1.iter_mut().zip(b_ntt).zip(ka) {
                            let s = *d + c.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                            *d = if s >= two_p { s - two_p } else { s };
                        }
                    }
                },
            );
        }

        // Modulus switching: floor both accumulators by the special prime
        // (line 19) as one interleaved pair, reusing the scratch lanes.
        // The accumulators are still lazy (< (level+1)·2p); the floor
        // folds the deferred Barrett reduction into its own streaming
        // reads, so no separate normalization pass ever touches memory.
        floor_special_pair_into(
            acc0,
            acc1,
            ctx,
            level,
            self.exec.as_ref(),
            drop_coeff,
            drop_coeff2,
            lane,
            f0,
            f1,
        )?;
        Ok(())
    }

    /// The seed's Barrett-reduction key switch, kept as the correctness
    /// oracle for the Shoup path (the property suite asserts bit-identical
    /// outputs across backends) and as the baseline the `bench_keyswitch`
    /// snapshot measures speedups against. Allocates per call, exactly
    /// like the seed did.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Math`] on representation/shape mismatches.
    pub fn key_switch_reference(
        &self,
        target: &RnsPoly,
        ksk: &KeySwitchKey,
        level: usize,
    ) -> Result<(RnsPoly, RnsPoly), CkksError> {
        let ctx = self.ctx;
        if target.representation() != Representation::Ntt {
            return Err(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            ));
        }
        if target.num_residues() != level + 1 {
            return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
                expected: level + 1,
                got: target.num_residues(),
            }));
        }
        let n = ctx.n();
        let k = ctx.params().k();
        let mut ext_chain: Vec<_> = ctx.level_moduli(level).to_vec();
        ext_chain.push(*ctx.special_modulus());

        let mut acc0 = RnsPoly::zero(n, &ext_chain, Representation::Ntt);
        let mut acc1 = RnsPoly::zero(n, &ext_chain, Representation::Ntt);

        for i in 0..=level {
            let mut a_coeff = target.residue(i).to_vec();
            ctx.ntt_table(i).inverse_auto(&mut a_coeff);

            let (ksk_b, ksk_a) = ksk.component(i);
            let a_coeff = &a_coeff;
            let ext_chain = &ext_chain;
            exec::for_each_limb2(
                self.exec.as_ref(),
                acc0.data_mut(),
                acc1.data_mut(),
                n,
                |j, d0, d1| {
                    let m = &ext_chain[j];
                    let chain_idx = if j <= level { j } else { k };
                    let reduced;
                    let b_ntt: &[u64] = if chain_idx == i {
                        target.residue(i)
                    } else {
                        let mut b: Vec<u64> = a_coeff.iter().map(|&x| m.reduce_u64(x)).collect();
                        ctx.ntt_table(chain_idx).forward_auto(&mut b);
                        reduced = b;
                        &reduced
                    };
                    let kb = ksk_b.residue(chain_idx);
                    let ka = ksk_a.residue(chain_idx);
                    for (t, d) in d0.iter_mut().enumerate() {
                        *d = m.add_mod(*d, m.mul_mod(b_ntt[t], kb[t]));
                    }
                    for (t, d) in d1.iter_mut().enumerate() {
                        *d = m.add_mod(*d, m.mul_mod(b_ntt[t], ka[t]));
                    }
                },
            );
        }

        let mut drop = Vec::new();
        let mut lane = vec![0u64; (level + 1) * n];
        let mut f0 = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
        let mut f1 = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
        floor_special_into(
            &acc0,
            ctx,
            level,
            self.exec.as_ref(),
            &mut drop,
            &mut lane,
            &mut f0,
        )?;
        floor_special_into(
            &acc1,
            ctx,
            level,
            self.exec.as_ref(),
            &mut drop,
            &mut lane,
            &mut f1,
        )?;
        Ok((f0, f1))
    }

    /// `CKKS.Relin`: key-switches the `c₂` component of a 3-component
    /// ciphertext back onto `(c₀, c₁)`.
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidCiphertext`] unless the input has exactly three
    /// components.
    pub fn relinearize(&self, a: &Ciphertext, rlk: &RelinKey) -> Result<Ciphertext, CkksError> {
        if a.size() != 3 {
            return Err(CkksError::InvalidCiphertext {
                components: a.size(),
                expected: "exactly 3",
            });
        }
        let (mut f0, mut f1) = self.key_switch(&a.polys[2], &rlk.ksk, a.level)?;
        // Accumulate (c₀, c₁) into the key-switch outputs in place.
        f0.add_assign_with(&a.polys[0], self.exec.as_ref())?;
        f1.add_assign_with(&a.polys[1], self.exec.as_ref())?;
        Ciphertext::from_parts(vec![f0, f1], a.level, a.scale)
    }

    /// Multiply then relinearize — the paper's "MULT+ReLin" composite
    /// operation (Table 8).
    ///
    /// # Errors
    ///
    /// Union of [`Evaluator::multiply`] and [`Evaluator::relinearize`].
    pub fn multiply_relin(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        rlk: &RelinKey,
    ) -> Result<Ciphertext, CkksError> {
        let prod = self.multiply(a, b)?;
        self.relinearize(&prod, rlk)
    }

    /// Rotates slots left by `step` (negative = right): applies the Galois
    /// automorphism to both components, then key-switches the `c₁`
    /// component back to the original key.
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] if no key was generated for the
    /// step; [`CkksError::InvalidCiphertext`] for non-2-component inputs
    /// (relinearize first).
    pub fn rotate(
        &self,
        a: &Ciphertext,
        step: i64,
        gks: &GaloisKeys,
    ) -> Result<Ciphertext, CkksError> {
        self.apply_galois(a, galois_elt_from_step(step, self.ctx.n()), gks)
    }

    /// Complex conjugation of all slots.
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::rotate`].
    pub fn conjugate(&self, a: &Ciphertext, gks: &GaloisKeys) -> Result<Ciphertext, CkksError> {
        self.apply_galois(a, galois_elt_conjugate(self.ctx.n()), gks)
    }

    /// Applies an arbitrary Galois element (rotation generalization).
    ///
    /// The rotated `c₁` lands in the evaluator's scratch buffer (no fresh
    /// polynomial per call), and `τ(c₀)` is never materialized: the
    /// permutation is fused into the final accumulation over `f₀`.
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::rotate`].
    pub fn apply_galois(
        &self,
        a: &Ciphertext,
        elt: usize,
        gks: &GaloisKeys,
    ) -> Result<Ciphertext, CkksError> {
        if a.size() != 2 {
            return Err(CkksError::InvalidCiphertext {
                components: a.size(),
                expected: "exactly 2 (relinearize first)",
            });
        }
        let ksk = gks.key(elt)?;
        let table = gks.permutation(elt)?;
        let ctx = self.ctx;
        let n = ctx.n();
        let level = a.level;
        let moduli = ctx.level_moduli(level);
        let mut f0 = RnsPoly::zero(n, moduli, Representation::Ntt);
        let mut f1 = RnsPoly::zero(n, moduli, Representation::Ntt);
        {
            let mut guard = self.scratch();
            let scratch = &mut *guard;
            scratch.ensure_rotated(ctx, level);
            let KeySwitchScratch { ks, rotated, .. } = scratch;
            apply_galois_ntt_into(&a.polys[1], table, rotated)?;
            self.key_switch_core(rotated, ksk, level, ks, &mut f0, &mut f1)?;
        }
        // c₀' = τ(c₀) + f₀, with the permutation fused into the add.
        let c0 = &a.polys[0];
        exec::for_each_limb(self.exec.as_ref(), f0.data_mut(), n, |i, dst| {
            let m = &moduli[i];
            let src = c0.residue(i);
            for (t, d) in dst.iter_mut().enumerate() {
                *d = m.add_mod(*d, src[table[t]]);
            }
        });
        Ciphertext::from_parts(vec![f0, f1], level, a.scale)
    }

    /// Hoisted multi-rotation: rotates `a` by every step in `steps`,
    /// decomposing/INTT-ing the `c₁` component **once** and applying each
    /// requested Galois element against the shared decomposition — `t`
    /// rotations cost one decomposition plus `t` cheap accumulation
    /// passes instead of `t` full key switches (the batched-rotation
    /// pattern of the paper's matrix-vector and convolution workloads).
    ///
    /// The outputs decrypt to the same values as sequential
    /// [`Evaluator::rotate`] calls; the ciphertext bits differ by a
    /// rounding-level noise term because the automorphism is applied to
    /// the shared NTT-form digits rather than re-decomposing the rotated
    /// polynomial (the standard hoisting trade, noise-equivalent).
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] if any step lacks a key;
    /// [`CkksError::InvalidCiphertext`] for non-2-component inputs.
    pub fn rotate_many(
        &self,
        a: &Ciphertext,
        steps: &[i64],
        gks: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>, CkksError> {
        if a.size() != 2 {
            return Err(CkksError::InvalidCiphertext {
                components: a.size(),
                expected: "exactly 2 (relinearize first)",
            });
        }
        if steps.is_empty() {
            return Ok(Vec::new());
        }
        let ctx = self.ctx;
        let n = ctx.n();
        let k = ctx.params().k();
        let level = a.level;
        let moduli = ctx.level_moduli(level);
        // Resolve every key up front so a missing key fails before the
        // decomposition work.
        let keys: Vec<(&KeySwitchKey, &[usize])> = steps
            .iter()
            .map(|&s| {
                let elt = galois_elt_from_step(s, n);
                Ok((gks.key(elt)?, gks.permutation(elt)?))
            })
            .collect::<Result<_, CkksError>>()?;

        let mut guard = self.scratch();
        let scratch = &mut *guard;
        scratch.ks.ensure(ctx, level);
        let KeySwitchScratch { ks, digits, .. } = scratch;
        let KsBuffers {
            ext_moduli,
            acc0,
            acc1,
            lane,
            drop_coeff,
            drop_coeff2,
            ..
        } = ks;
        let ext_len = ext_moduli.len();
        let ext_moduli = &*ext_moduli;

        // --- Hoist: decompose c₁ once into NTT-form digits -------------
        // Column-major layout: digits[(j·(level+1) + i)·n ..] is b̃_{i,j}
        // of Algorithm 7 — the same values every per-step key switch
        // would recompute. Digits live in the [0, 4p) lazy domain (the
        // accumulation below is domain-agnostic).
        let rows = level + 1;
        let c1 = &a.polys[1];
        // Step A: INTT every residue of c₁ into its lane slot.
        let lane_coeff = &mut lane[..rows * n];
        exec::for_each_limb(self.exec.as_ref(), lane_coeff, n, |i, dst| {
            dst.copy_from_slice(c1.residue(i));
            ctx.ntt_table(i).inverse_auto(dst);
        });
        // Step B: per extended limb j, fill the digit column. All
        // off-diagonal transforms of a column share one NTT table, so
        // they run as interleaved reduced-on-load pairs.
        let lane_coeff = &lane[..rows * n];
        digits.resize(ext_len * rows * n, 0);
        exec::for_each_limb(self.exec.as_ref(), digits, rows * n, |j, col| {
            let chain_idx = if j <= level { j } else { k };
            let table_j = ctx.ntt_table(chain_idx);
            if chain_idx <= level {
                col[chain_idx * n..(chain_idx + 1) * n].copy_from_slice(c1.residue(chain_idx));
            }
            let offdiag: Vec<usize> = (0..rows).filter(|&i| i != chain_idx).collect();
            for pair in offdiag.chunks(2) {
                match *pair {
                    [i1, i2] => {
                        let (lo, hi) = col.split_at_mut(i2 * n);
                        table_j.forward_reduced_auto2(
                            &lane_coeff[i1 * n..(i1 + 1) * n],
                            &lane_coeff[i2 * n..(i2 + 1) * n],
                            &mut lo[i1 * n..(i1 + 1) * n],
                            &mut hi[..n],
                        );
                    }
                    [i1] => {
                        table_j.forward_reduced_auto(
                            &lane_coeff[i1 * n..(i1 + 1) * n],
                            &mut col[i1 * n..(i1 + 1) * n],
                        );
                    }
                    _ => unreachable!("chunks(2)"),
                }
            }
        });

        // --- Per rotation: permute digits + Shoup-accumulate + floor ----
        let c0 = &a.polys[0];
        let mut out = Vec::with_capacity(steps.len());
        for (ksk, table) in keys {
            for i in 0..=level {
                let (ksk_b, ksk_a) = ksk.component_shoup(i);
                let digits = &*digits;
                // First iteration writes outright — no zero-fill pass.
                let first = i == 0;
                exec::for_each_limb2(
                    self.exec.as_ref(),
                    acc0.data_mut(),
                    acc1.data_mut(),
                    n,
                    |j, d0, d1| {
                        let m = &ext_moduli[j];
                        let chain_idx = if j <= level { j } else { k };
                        let dig = &digits[(j * rows + i) * n..(j * rows + i + 1) * n];
                        let kb = &ksk_b[chain_idx * n..(chain_idx + 1) * n];
                        let ka = &ksk_a[chain_idx * n..(chain_idx + 1) * n];
                        // τ(digit) is fused into the accumulation: the
                        // permutation is pure addressing, as in hardware.
                        let iter = table.iter().zip(d0.iter_mut().zip(d1.iter_mut()));
                        if first {
                            for ((&idx, (d0t, d1t)), (kbt, kat)) in iter.zip(kb.iter().zip(ka)) {
                                let x = dig[idx];
                                *d0t = kbt.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                                *d1t = kat.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                            }
                        } else if lazy_acc_fits(m, level) {
                            for ((&idx, (d0t, d1t)), (kbt, kat)) in iter.zip(kb.iter().zip(ka)) {
                                let x = dig[idx];
                                *d0t += kbt.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                                *d1t += kat.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                            }
                        } else {
                            let two_p = 2 * m.value();
                            for ((&idx, (d0t, d1t)), (kbt, kat)) in iter.zip(kb.iter().zip(ka)) {
                                let x = dig[idx];
                                let s = *d0t + kbt.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                                *d0t = if s >= two_p { s - two_p } else { s };
                                let s = *d1t + kat.mul_red_lazy(x, m); // DOMAIN: [0,2p)
                                *d1t = if s >= two_p { s - two_p } else { s };
                            }
                        }
                    },
                );
            }
            let mut f0 = RnsPoly::zero(n, moduli, Representation::Ntt);
            let mut f1 = RnsPoly::zero(n, moduli, Representation::Ntt);
            floor_special_pair_into(
                acc0,
                acc1,
                ctx,
                level,
                self.exec.as_ref(),
                drop_coeff,
                drop_coeff2,
                lane,
                &mut f0,
                &mut f1,
            )?;
            // c₀' = τ(c₀) + f₀, permutation fused into the add.
            exec::for_each_limb(self.exec.as_ref(), f0.data_mut(), n, |i, dst| {
                let m = &moduli[i];
                let src = c0.residue(i);
                for (t, d) in dst.iter_mut().enumerate() {
                    *d = m.add_mod(*d, src[table[t]]);
                }
            });
            out.push(Ciphertext::from_parts(vec![f0, f1], level, a.scale)?);
        }
        Ok(out)
    }
}

/// Whether `level + 1` lazy `[0, 2p)` products can accumulate in a bare
/// `u64` without any intermediate correction: each product is at most
/// `2p − 1`, so the requirement is `(level+1)·(2p−1) ≤ 2^64 − 1`.
/// Holds for every paper parameter set (and any chain of ≤ 60-bit primes
/// up to depth 8); the wide-modulus fallback corrects per add instead.
#[inline]
// DOMAIN: [0,2p)
fn lazy_acc_fits(m: &Modulus, level: usize) -> bool {
    (level as u128 + 1) * (2 * m.value() as u128 - 1) <= u64::MAX as u128
}

/// Validates a caller-provided key-switch output buffer: NTT-form shape
/// over exactly the given basis.
fn check_switch_output(out: &RnsPoly, n: usize, moduli: &[Modulus]) -> Result<(), CkksError> {
    if out.n() != n || out.num_residues() != moduli.len() {
        return Err(CkksError::Math(heax_math::MathError::LengthMismatch {
            expected: moduli.len() * n,
            got: out.num_residues() * out.n(),
        }));
    }
    for (a, b) in out.moduli().iter().zip(moduli) {
        if a.value() != b.value() {
            return Err(CkksError::Math(heax_math::MathError::BasisMismatch {
                a: a.value(),
                b: b.value(),
            }));
        }
    }
    Ok(())
}

/// Whether two scales are equal within the evaluator's tolerance.
pub fn scales_match(a: f64, b: f64) -> bool {
    (a - b).abs() <= SCALE_RTOL * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use crate::encoder::CkksEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::{PublicKey, SecretKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        ctx: CkksContext,
        sk: SecretKey,
        pk: PublicKey,
        rlk: RelinKey,
        rng: StdRng,
    }

    fn harness(seed: u64) -> Harness {
        let ctx = CkksContext::new(small()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        Harness {
            ctx,
            sk,
            pk,
            rlk,
            rng,
        }
    }

    impl Harness {
        fn encrypt(&mut self, vals: &[f64]) -> Ciphertext {
            let enc = CkksEncoder::new(&self.ctx);
            let pt = enc
                .encode_real(vals, self.ctx.params().scale(), self.ctx.max_level())
                .unwrap();
            Encryptor::new(&self.ctx, &self.pk)
                .encrypt(&pt, &mut self.rng)
                .unwrap()
        }

        fn decrypt(&self, ct: &Ciphertext) -> Vec<f64> {
            let enc = CkksEncoder::new(&self.ctx);
            let pt = Decryptor::new(&self.ctx, &self.sk).decrypt(ct).unwrap();
            enc.decode_real(&pt).unwrap()
        }
    }

    #[test]
    fn homomorphic_addition() {
        let mut h = harness(31);
        let a = h.encrypt(&[1.0, 2.0, -3.0]);
        let b = h.encrypt(&[0.5, -1.0, 10.0]);
        let ev = Evaluator::new(&h.ctx);
        let sum = ev.add(&a, &b).unwrap();
        let got = h.decrypt(&sum);
        for (g, w) in got.iter().zip([1.5, 1.0, 7.0]) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
        let diff = ev.sub(&a, &b).unwrap();
        let got = h.decrypt(&diff);
        for (g, w) in got.iter().zip([0.5, 3.0, -13.0]) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn homomorphic_multiplication_and_relin() {
        let mut h = harness(32);
        let a = h.encrypt(&[1.5, 2.0, -3.0]);
        let b = h.encrypt(&[2.0, -0.5, 4.0]);
        let ev = Evaluator::new(&h.ctx);
        let prod = ev.multiply(&a, &b).unwrap();
        assert_eq!(prod.size(), 3);
        // 3-component ciphertext decrypts correctly (Σ c_i s^i).
        let got = h.decrypt(&prod);
        for (g, w) in got.iter().zip([3.0, -1.0, -12.0]) {
            assert!((g - w).abs() < 1e-1, "{g} vs {w} (pre-relin)");
        }
        // Relinearized back to 2 components, same values.
        let lin = ev.relinearize(&prod, &h.rlk).unwrap();
        assert_eq!(lin.size(), 2);
        let got = h.decrypt(&lin);
        for (g, w) in got.iter().zip([3.0, -1.0, -12.0]) {
            assert!((g - w).abs() < 1e-1, "{g} vs {w} (post-relin)");
        }
    }

    #[test]
    fn rescale_drops_level_and_scale() {
        let mut h = harness(33);
        let a = h.encrypt(&[2.0]);
        let b = h.encrypt(&[3.0]);
        let ev = Evaluator::new(&h.ctx);
        let prod = ev.multiply_relin(&a, &b, &h.rlk).unwrap();
        let scale_before = prod.scale();
        let rs = ev.rescale(&prod).unwrap();
        assert_eq!(rs.level(), h.ctx.max_level() - 1);
        let p_dropped = h.ctx.moduli()[h.ctx.max_level()].value() as f64;
        assert!((rs.scale() - scale_before / p_dropped).abs() < 1.0);
        let got = h.decrypt(&rs);
        assert!((got[0] - 6.0).abs() < 1e-1, "{}", got[0]);
    }

    #[test]
    fn multiply_plain_and_add_plain() {
        let mut h = harness(34);
        let a = h.encrypt(&[1.0, -2.0]);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt = enc
            .encode_real(&[3.0, 3.0], scale, h.ctx.max_level())
            .unwrap();
        let ev = Evaluator::new(&h.ctx);
        let prod = ev.multiply_plain(&a, &pt).unwrap();
        let got = h.decrypt(&prod);
        assert!((got[0] - 3.0).abs() < 1e-1);
        assert!((got[1] + 6.0).abs() < 1e-1);

        let sum = ev.add_plain(&a, &pt).unwrap();
        let got = h.decrypt(&sum);
        assert!((got[0] - 4.0).abs() < 1e-2);
        assert!((got[1] - 1.0).abs() < 1e-2);

        let diff = ev.sub_plain(&a, &pt).unwrap();
        let got = h.decrypt(&diff);
        assert!((got[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn level_and_scale_mismatches_rejected() {
        let mut h = harness(35);
        let a = h.encrypt(&[1.0]);
        let b = h.encrypt(&[1.0]);
        let ev = Evaluator::new(&h.ctx);
        let dropped = ev.mod_switch_to_next(&b).unwrap();
        assert!(matches!(
            ev.add(&a, &dropped),
            Err(CkksError::LevelMismatch { .. })
        ));
        let mut rescaled = a.clone();
        rescaled.set_scale(a.scale() * 3.0);
        assert!(matches!(
            ev.add(&a, &rescaled),
            Err(CkksError::ScaleMismatch { .. })
        ));
    }

    #[test]
    fn relinearize_requires_three_components() {
        let mut h = harness(36);
        let a = h.encrypt(&[1.0]);
        let ev = Evaluator::new(&h.ctx);
        assert!(matches!(
            ev.relinearize(&a, &h.rlk),
            Err(CkksError::InvalidCiphertext { .. })
        ));
    }

    #[test]
    fn rotation_moves_slots() {
        let mut h = harness(37);
        let slots = h.ctx.n() / 2;
        let vals: Vec<f64> = (0..slots).map(|i| i as f64).collect();
        let a = h.encrypt(&vals);
        let mut rng = StdRng::seed_from_u64(99);
        let gks = GaloisKeys::generate(&h.ctx, &h.sk, &[1, -1, 3], &mut rng);
        let ev = Evaluator::new(&h.ctx);
        for step in [1i64, -1, 3] {
            let rot = ev.rotate(&a, step, &gks).unwrap();
            let got = h.decrypt(&rot);
            for (j, g) in got.iter().enumerate() {
                let src = (j as i64 + step).rem_euclid(slots as i64) as usize;
                assert!(
                    (g - vals[src]).abs() < 1e-1,
                    "step {step}: slot {j} got {g}, want {}",
                    vals[src]
                );
            }
        }
    }

    #[test]
    fn shoup_key_switch_matches_barrett_reference() {
        let mut h = harness(60);
        let a = h.encrypt(&[1.5, -2.0]);
        let b = h.encrypt(&[0.25, 3.0]);
        let ev = Evaluator::new(&h.ctx);
        let prod = ev.multiply(&a, &b).unwrap();
        let (f0, f1) = ev
            .key_switch(prod.component(2), h.rlk.ksk(), prod.level())
            .unwrap();
        let (g0, g1) = ev
            .key_switch_reference(prod.component(2), h.rlk.ksk(), prod.level())
            .unwrap();
        assert_eq!(f0, g0, "Shoup f0 must equal the seed Barrett path");
        assert_eq!(f1, g1, "Shoup f1 must equal the seed Barrett path");
    }

    #[test]
    fn key_switch_into_reuses_buffers_and_matches() {
        let mut h = harness(61);
        let a = h.encrypt(&[2.0, 1.0]);
        let ev = Evaluator::new(&h.ctx);
        let prod = ev.multiply(&a, &a).unwrap();
        let (f0, f1) = ev
            .key_switch(prod.component(2), h.rlk.ksk(), prod.level())
            .unwrap();
        let moduli = h.ctx.level_moduli(prod.level());
        let mut g0 = RnsPoly::zero(h.ctx.n(), moduli, Representation::Ntt);
        let mut g1 = RnsPoly::zero(h.ctx.n(), moduli, Representation::Ntt);
        // Two calls into the same buffers: both must land on the same
        // values (stale contents fully overwritten).
        for _ in 0..2 {
            ev.key_switch_into(
                prod.component(2),
                h.rlk.ksk(),
                prod.level(),
                &mut g0,
                &mut g1,
            )
            .unwrap();
            assert_eq!(f0, g0);
            assert_eq!(f1, g1);
        }
        // Mis-shaped outputs rejected.
        let mut bad = RnsPoly::zero(h.ctx.n(), &moduli[..1], Representation::Ntt);
        assert!(ev
            .key_switch_into(
                prod.component(2),
                h.rlk.ksk(),
                prod.level(),
                &mut bad,
                &mut g1
            )
            .is_err());
    }

    #[test]
    fn rotate_many_decrypts_like_sequential_rotations() {
        let mut h = harness(62);
        let slots = h.ctx.n() / 2;
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 * 0.5 - 3.0).collect();
        let a = h.encrypt(&vals);
        let steps = [1i64, -1, 2, 5];
        let mut rng = StdRng::seed_from_u64(102);
        let gks = GaloisKeys::generate(&h.ctx, &h.sk, &steps, &mut rng);
        let ev = Evaluator::new(&h.ctx);
        let hoisted = ev.rotate_many(&a, &steps, &gks).unwrap();
        assert_eq!(hoisted.len(), steps.len());
        for (ct, &step) in hoisted.iter().zip(&steps) {
            let seq = ev.rotate(&a, step, &gks).unwrap();
            assert_eq!(ct.level(), seq.level());
            assert_eq!(ct.scale(), seq.scale());
            let got = h.decrypt(ct);
            let want = h.decrypt(&seq);
            for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() < 1e-2,
                    "step {step}: slot {j} hoisted {g} vs sequential {w}"
                );
            }
        }
        // Empty step list is a no-op.
        assert!(ev.rotate_many(&a, &[], &gks).unwrap().is_empty());
        // Missing key surfaces before any work.
        assert!(matches!(
            ev.rotate_many(&a, &[7], &gks),
            Err(CkksError::MissingGaloisKey { .. })
        ));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let mut h = harness(38);
        let enc = CkksEncoder::new(&h.ctx);
        let vals = vec![
            heax_math::fft::Complex64::new(1.0, 2.0),
            heax_math::fft::Complex64::new(-3.0, 0.5),
        ];
        let pt = enc
            .encode(&vals, h.ctx.params().scale(), h.ctx.max_level())
            .unwrap();
        let ct = Encryptor::new(&h.ctx, &h.pk)
            .encrypt(&pt, &mut h.rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(100);
        let gks = GaloisKeys::generate_with_conjugate(&h.ctx, &h.sk, &[], &mut rng);
        let ev = Evaluator::new(&h.ctx);
        let conj = ev.conjugate(&ct, &gks).unwrap();
        let dec = Decryptor::new(&h.ctx, &h.sk).decrypt(&conj).unwrap();
        let got = enc.decode(&dec).unwrap();
        assert!((got[0].re - 1.0).abs() < 1e-1);
        assert!((got[0].im + 2.0).abs() < 1e-1);
        assert!((got[1].re + 3.0).abs() < 1e-1);
        assert!((got[1].im + 0.5).abs() < 1e-1);
    }

    #[test]
    fn missing_galois_key_rejected() {
        let mut h = harness(39);
        let a = h.encrypt(&[1.0]);
        let mut rng = StdRng::seed_from_u64(101);
        let gks = GaloisKeys::generate(&h.ctx, &h.sk, &[1], &mut rng);
        let ev = Evaluator::new(&h.ctx);
        assert!(matches!(
            ev.rotate(&a, 5, &gks),
            Err(CkksError::MissingGaloisKey { .. })
        ));
    }

    #[test]
    fn depth_two_circuit() {
        // ((a*b rescaled) * c rescaled) uses both levels of the chain.
        let mut h = harness(40);
        let a = h.encrypt(&[1.5]);
        let b = h.encrypt(&[2.0]);
        let ev = Evaluator::new(&h.ctx);
        let ab = ev
            .rescale(&ev.multiply_relin(&a, &b, &h.rlk).unwrap())
            .unwrap();
        // Encrypt c directly at the lower level with the matching scale.
        let enc = CkksEncoder::new(&h.ctx);
        let pt_c = enc.encode_real(&[4.0], ab.scale(), ab.level()).unwrap();
        let c = Encryptor::new(&h.ctx, &h.pk)
            .encrypt(&pt_c, &mut h.rng)
            .unwrap();
        let abc = ev
            .rescale(&ev.multiply_relin(&ab, &c, &h.rlk).unwrap())
            .unwrap();
        assert_eq!(abc.level(), 0);
        let got = h.decrypt(&abc);
        assert!((got[0] - 12.0).abs() < 0.5, "{}", got[0]);
    }

    #[test]
    fn multiply_integer_preserves_scale_and_level() {
        let mut h = harness(42);
        let a = h.encrypt(&[1.5, -2.0]);
        let ev = Evaluator::new(&h.ctx);
        for v in [3i64, -4, 0, 1] {
            let scaled = ev.multiply_integer(&a, v);
            assert_eq!(scaled.level(), a.level());
            assert_eq!(scaled.scale(), a.scale());
            let got = h.decrypt(&scaled);
            assert!((got[0] - 1.5 * v as f64).abs() < 1e-2, "v={v}: {}", got[0]);
            assert!((got[1] + 2.0 * v as f64).abs() < 1e-2, "v={v}: {}", got[1]);
        }
    }

    #[test]
    fn add_many_sums() {
        let mut h = harness(43);
        let cts: Vec<Ciphertext> = (1..=4).map(|i| h.encrypt(&[i as f64])).collect();
        let ev = Evaluator::new(&h.ctx);
        let total = ev.add_many(&cts).unwrap();
        let got = h.decrypt(&total);
        assert!((got[0] - 10.0).abs() < 1e-2);
        assert!(matches!(
            ev.add_many(&[]),
            Err(CkksError::InvalidCiphertext { .. })
        ));
    }

    #[test]
    fn negate_and_mod_switch() {
        let mut h = harness(41);
        let a = h.encrypt(&[2.5]);
        let ev = Evaluator::new(&h.ctx);
        let neg = ev.negate(&a);
        let got = h.decrypt(&neg);
        assert!((got[0] + 2.5).abs() < 1e-2);
        let dropped = ev.mod_switch_to_next(&a).unwrap();
        assert_eq!(dropped.level(), a.level() - 1);
        let got = h.decrypt(&dropped);
        assert!((got[0] - 2.5).abs() < 1e-2);
    }

    #[test]
    fn mod_switch_to_level_compresses_to_one_residue() {
        let mut h = harness(42);
        let a = h.encrypt(&[4.75]);
        let ev = Evaluator::new(&h.ctx);
        // Dropping to level 0 leaves one residue and the same scale, and
        // still decrypts: decrypt-only precision survives the compression.
        let compressed = ev.mod_switch_to_level(&a, 0).unwrap();
        assert_eq!(compressed.level(), 0);
        assert_eq!(compressed.component(0).num_residues(), 1);
        assert_eq!(compressed.scale(), a.scale());
        let got = h.decrypt(&compressed);
        assert!((got[0] - 4.75).abs() < 1e-2);
        // Identity at the current level; error above it.
        assert_eq!(ev.mod_switch_to_level(&a, a.level()).unwrap(), a);
        assert!(ev.mod_switch_to_level(&a, a.level() + 1).is_err());
    }
}
