//! Key material: secret key, public key, and key-switching keys
//! (relinearization and Galois/rotation keys).
//!
//! `KskGen` follows Section 3 of the paper: a key-switching key from `s'`
//! to `s` is `ksk = (D_0 | D_1)` where `(d_{0,i}, d_{1,i}) =
//! SymEnc(P·g_i·s', s)` over the extended modulus `q·P` — `P` being the
//! special prime and `g` the RNS gadget vector. `RlkGen` instantiates it
//! with `s' = s²`; `GlkGen` with `s' = τ_g(s)` for the rotation
//! automorphism `τ_g`.

use std::collections::HashMap;

use heax_math::poly::{Representation, RnsPoly};
use heax_math::sampling::{sample_error, sample_ternary, sample_uniform};
use heax_math::word::{precompute_shoup, MulRedConstant};
use rand::Rng;

use crate::context::CkksContext;
use crate::galois::{
    apply_galois_ntt, galois_elt_conjugate, galois_elt_from_step, galois_permutation,
};
use crate::CkksError;

/// The secret key `s` (ternary), stored in NTT form over the full modulus
/// chain including the special prime.
#[derive(Clone, Debug, PartialEq)]
pub struct SecretKey {
    pub(crate) poly: RnsPoly,
}

impl SecretKey {
    /// Samples a fresh ternary secret key.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> Self {
        let mut poly = sample_ternary(rng, ctx.n(), ctx.moduli());
        poly.ntt_forward(ctx.ntt_tables())
            .expect("fresh key in coeff form");
        Self { poly }
    }

    /// The key polynomial (NTT form, full chain).
    #[inline]
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// The key restricted to the first `count` moduli of the chain.
    pub(crate) fn restricted(&self, indices: &[usize]) -> RnsPoly {
        restrict_poly(&self.poly, indices)
    }
}

/// The public key: `SymEnc(0, sk)` over the full chain.
#[derive(Clone, Debug, PartialEq)]
pub struct PublicKey {
    /// `b = -a·s + e` (NTT form, full chain).
    pub(crate) b: RnsPoly,
    /// `a` (uniform, NTT form, full chain).
    pub(crate) a: RnsPoly,
}

impl PublicKey {
    /// Generates a public key for `sk`.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, sk: &SecretKey, rng: &mut R) -> Self {
        let (b, a) = sym_enc_zero(ctx, sk, rng);
        Self { b, a }
    }

    /// The `b = -a·s + e` component.
    #[inline]
    pub fn b(&self) -> &RnsPoly {
        &self.b
    }

    /// The uniform `a` component.
    #[inline]
    pub fn a(&self) -> &RnsPoly {
        &self.a
    }
}

/// A key-switching key from some `s'` to `s`: `d` component pairs over the
/// full chain (`q` primes + special prime), one per decomposition index.
///
/// Key residues are constant after keygen, so every component is stored
/// twice: as plain residues and as [`MulRedConstant`] (Shoup-form) tables.
/// The evaluator's key-switch inner loop multiplies against the Shoup
/// tables with [`MulRedConstant::mul_red_lazy`] — one shift-multiply per
/// coefficient instead of a 128-bit Barrett reduction, the same word-level
/// trick the paper's MulRed hardware unit implements.
#[derive(Clone, Debug, PartialEq)]
pub struct KeySwitchKey {
    /// `components[i] = (d_{0,i}, d_{1,i})`, NTT form over the full chain.
    pub(crate) components: Vec<(RnsPoly, RnsPoly)>,
    /// Shoup precomputation aligned with `components`: `shoup[i]` holds
    /// the `(d_{0,i}, d_{1,i})` residues as limb-major `MulRedConstant`
    /// tables (limb `j` spans `[j·n, (j+1)·n)`).
    pub(crate) shoup: Vec<(Vec<MulRedConstant>, Vec<MulRedConstant>)>,
}

/// Limb-major Shoup table for every residue of a key polynomial.
fn shoup_table(poly: &RnsPoly) -> Vec<MulRedConstant> {
    let mut out = Vec::with_capacity(poly.num_residues() * poly.n());
    for (m, residue) in poly.iter() {
        out.extend(precompute_shoup(residue, m));
    }
    out
}

impl KeySwitchKey {
    /// Builds the key from raw component pairs, precomputing the Shoup
    /// tables. Used by keygen and deserialization.
    pub(crate) fn from_components(components: Vec<(RnsPoly, RnsPoly)>) -> Self {
        let shoup = components
            .iter()
            .map(|(b, a)| (shoup_table(b), shoup_table(a)))
            .collect();
        Self { components, shoup }
    }
    /// `KskGen(s', s)` — encrypts `P·g_i·s'` under `s` for every
    /// decomposition index `i` (Section 3, `KskGen`).
    ///
    /// `s_prime` must be in NTT form over the full chain.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        s_prime: &RnsPoly,
        sk: &SecretKey,
        rng: &mut R,
    ) -> Self {
        let d = ctx.params().k();
        let gadget = ctx.gadget();
        let mut components = Vec::with_capacity(d);
        for i in 0..d {
            // (b_i, a_i) = SymEnc(0, s) over the full chain…
            let (mut b_i, a_i) = sym_enc_zero(ctx, sk, rng);
            // …then add P·g_i·s' to b_i. factor(i, j) is already in RNS per
            // chain modulus (special prime at index k).
            let k = ctx.params().k();
            for (j, m) in ctx.moduli().iter().enumerate() {
                let gadget_j = gadget.factor(i, j.min(k));
                let s_res = s_prime.residue(j);
                let dst = b_i.residue_mut(j);
                for (dstc, &sc) in dst.iter_mut().zip(s_res) {
                    *dstc = m.add_mod(*dstc, m.mul_mod(m.reduce_u64(gadget_j), sc));
                }
            }
            components.push((b_i, a_i));
        }
        Self::from_components(components)
    }

    /// Number of decomposition components (`d = k`).
    #[inline]
    pub fn decomp_len(&self) -> usize {
        self.components.len()
    }

    /// Component `i` as `(d_{0,i}, d_{1,i})`.
    #[inline]
    pub fn component(&self, i: usize) -> (&RnsPoly, &RnsPoly) {
        let (b, a) = &self.components[i];
        (b, a)
    }

    /// Component `i` as limb-major Shoup (`MulRedConstant`) tables over
    /// the full chain: limb `j` spans `[j·n, (j+1)·n)` of each slice.
    #[inline]
    pub fn component_shoup(&self, i: usize) -> (&[MulRedConstant], &[MulRedConstant]) {
        let (b, a) = &self.shoup[i];
        (b, a)
    }

    /// Extracts component `i` restricted to the moduli active at `level`
    /// plus the special prime — the exact operand set the KeySwitch module
    /// streams from DRAM (Section 5.1).
    pub fn component_at_level(
        &self,
        i: usize,
        ctx: &CkksContext,
        level: usize,
    ) -> (RnsPoly, RnsPoly) {
        let mut indices: Vec<usize> = (0..=level).collect();
        indices.push(ctx.params().k());
        let (b, a) = &self.components[i];
        (restrict_poly(b, &indices), restrict_poly(a, &indices))
    }

    /// Total size in 64-bit words (for the DRAM-bandwidth model of §5.1).
    pub fn size_words(&self) -> usize {
        self.components
            .iter()
            .map(|(b, a)| b.data().len() + a.data().len())
            .sum()
    }
}

/// Relinearization key: a key-switching key from `s²` to `s`.
#[derive(Clone, Debug, PartialEq)]
pub struct RelinKey {
    pub(crate) ksk: KeySwitchKey,
}

impl RelinKey {
    /// `CKKS.RlkGen(sk)`.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, sk: &SecretKey, rng: &mut R) -> Self {
        let s_squared = sk.poly.dyadic_mul(&sk.poly).expect("same basis");
        Self {
            ksk: KeySwitchKey::generate(ctx, &s_squared, sk, rng),
        }
    }

    /// The underlying key-switching key.
    #[inline]
    pub fn ksk(&self) -> &KeySwitchKey {
        &self.ksk
    }
}

/// Galois (rotation/conjugation) keys: one key-switching key per Galois
/// element, from `τ_g(s)` to `s`.
#[derive(Clone, Debug)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<usize, KeySwitchKey>,
    pub(crate) permutations: HashMap<usize, Vec<usize>>,
}

impl GaloisKeys {
    /// `CKKS.GlkGen(sk, steps)` — generates keys for the given rotation
    /// steps (and nothing else).
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        sk: &SecretKey,
        steps: &[i64],
        rng: &mut R,
    ) -> Self {
        let mut gk = Self {
            keys: HashMap::new(),
            permutations: HashMap::new(),
        };
        for &s in steps {
            gk.add_step(ctx, sk, s, rng);
        }
        gk
    }

    /// Generates rotation keys plus the conjugation key.
    pub fn generate_with_conjugate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        sk: &SecretKey,
        steps: &[i64],
        rng: &mut R,
    ) -> Self {
        let mut gk = Self::generate(ctx, sk, steps, rng);
        gk.add_element(ctx, sk, galois_elt_conjugate(ctx.n()), rng);
        gk
    }

    /// Adds a key for one rotation step.
    pub fn add_step<R: Rng + ?Sized>(
        &mut self,
        ctx: &CkksContext,
        sk: &SecretKey,
        step: i64,
        rng: &mut R,
    ) {
        let elt = galois_elt_from_step(step, ctx.n());
        self.add_element(ctx, sk, elt, rng);
    }

    /// Adds a key for a raw Galois element.
    pub fn add_element<R: Rng + ?Sized>(
        &mut self,
        ctx: &CkksContext,
        sk: &SecretKey,
        elt: usize,
        rng: &mut R,
    ) {
        if self.keys.contains_key(&elt) {
            return;
        }
        let table = galois_permutation(elt, ctx.n());
        let s_rotated = apply_galois_ntt(&sk.poly, &table).expect("sk is NTT form");
        let ksk = KeySwitchKey::generate(ctx, &s_rotated, sk, rng);
        self.keys.insert(elt, ksk);
        self.permutations.insert(elt, table);
    }

    /// Looks up the key for a Galois element.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingGaloisKey`] if no key was generated for
    /// the element.
    pub fn key(&self, elt: usize) -> Result<&KeySwitchKey, CkksError> {
        self.keys
            .get(&elt)
            .ok_or(CkksError::MissingGaloisKey { galois_elt: elt })
    }

    /// Looks up the permutation table for a Galois element.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingGaloisKey`] if no key was generated.
    pub fn permutation(&self, elt: usize) -> Result<&[usize], CkksError> {
        self.permutations
            .get(&elt)
            .map(Vec::as_slice)
            .ok_or(CkksError::MissingGaloisKey { galois_elt: elt })
    }

    /// Galois elements with generated keys.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }
}

/// `SymEnc(0, sk)`: returns `(b, a)` with `a ← U(R)` and `b = -a·s + e`,
/// in NTT form over the full chain.
pub(crate) fn sym_enc_zero<R: Rng + ?Sized>(
    ctx: &CkksContext,
    sk: &SecretKey,
    rng: &mut R,
) -> (RnsPoly, RnsPoly) {
    let a = sample_uniform(rng, ctx.n(), ctx.moduli(), Representation::Ntt);
    let mut e = sample_error(rng, ctx.n(), ctx.moduli());
    e.ntt_forward(ctx.ntt_tables())
        .expect("error in coeff form");
    // b = -(a·s) + e
    let mut b = a.dyadic_mul(&sk.poly).expect("same basis").neg();
    b.add_assign(&e).expect("same basis");
    (b, a)
}

/// Restricts a full-chain polynomial to the given modulus indices.
pub(crate) fn restrict_poly(poly: &RnsPoly, indices: &[usize]) -> RnsPoly {
    let n = poly.n();
    let moduli: Vec<_> = indices.iter().map(|&i| poly.moduli()[i]).collect();
    let mut out = RnsPoly::zero(n, &moduli, poly.representation());
    for (dst, &src) in indices.iter().enumerate() {
        out.residue_mut(dst).copy_from_slice(poly.residue(src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::small;
    use crate::context::CkksContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(small()).unwrap()
    }

    #[test]
    fn secret_key_is_ntt_over_full_chain() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let sk = SecretKey::generate(&ctx, &mut rng);
        assert_eq!(sk.poly().num_residues(), ctx.moduli().len());
        assert_eq!(sk.poly().representation(), Representation::Ntt);
    }

    #[test]
    fn public_key_decrypts_to_small_error() {
        // b + a·s = e must be small after INTT.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(8);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let mut e = pk.b().add(&pk.a().dyadic_mul(sk.poly()).unwrap()).unwrap();
        e.ntt_inverse(ctx.ntt_tables()).unwrap();
        let p0 = ctx.moduli()[0];
        for &c in e.residue(0) {
            let centered = if c > p0.value() / 2 {
                c as i64 - p0.value() as i64
            } else {
                c as i64
            };
            assert!(
                centered.abs() <= 21,
                "error coefficient too large: {centered}"
            );
        }
    }

    #[test]
    fn ksk_components_count_and_size() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(9);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        assert_eq!(rlk.ksk().decomp_len(), ctx.params().k());
        // Each component pair spans the full chain.
        let (b, a) = rlk.ksk().component(0);
        assert_eq!(b.num_residues(), ctx.moduli().len());
        assert_eq!(a.num_residues(), ctx.moduli().len());
        // Size: d * 2 * (k+1) * n words.
        let k = ctx.params().k();
        assert_eq!(rlk.ksk().size_words(), k * 2 * (k + 1) * ctx.n());
    }

    #[test]
    fn ksk_encrypts_gadget_multiple_of_target() {
        // d_{0,i} + d_{1,i}·s  ==  P·g_i·s' + e_i  (small error) — check the
        // identity holds modulo p_i where g_i ≡ 1: value ≈ P·s'.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(10);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let s_prime = sk.poly().dyadic_mul(sk.poly()).unwrap(); // s²
        let ksk = KeySwitchKey::generate(&ctx, &s_prime, &sk, &mut rng);
        let k = ctx.params().k();
        let p_sp = ctx.special_modulus().value();
        for i in 0..k {
            let (b, a) = ksk.component(i);
            let lhs = b.add(&a.dyadic_mul(sk.poly()).unwrap()).unwrap();
            // In residue i: lhs ≈ P·s' (mod p_i) up to small error.
            let m = ctx.moduli()[i];
            let mut diff = RnsPoly::zero(ctx.n(), &[m], Representation::Ntt);
            let s_res = s_prime.residue(i);
            for (j, d) in diff.residue_mut(0).iter_mut().enumerate() {
                let expect = m.mul_mod(m.reduce_u64(p_sp), s_res[j]);
                *d = m.sub_mod(lhs.residue(i)[j], expect);
            }
            let table = [ctx.ntt_table(i).clone()];
            diff.ntt_inverse(&table).unwrap();
            for &c in diff.residue(0) {
                let centered = if c > m.value() / 2 {
                    c as i64 - m.value() as i64
                } else {
                    c as i64
                };
                assert!(centered.abs() <= 21, "ksk error too large: {centered}");
            }
        }
    }

    #[test]
    fn ksk_shoup_tables_match_plain_residues() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(13);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let ksk = rlk.ksk();
        let n = ctx.n();
        for i in 0..ksk.decomp_len() {
            let (b, a) = ksk.component(i);
            let (bs, as_) = ksk.component_shoup(i);
            assert_eq!(bs.len(), b.num_residues() * n);
            assert_eq!(as_.len(), a.num_residues() * n);
            for (j, m) in b.moduli().iter().enumerate() {
                for t in (0..n).step_by(17) {
                    let c = &bs[j * n + t];
                    assert_eq!(c.operand(), b.residue(j)[t]);
                    assert_eq!(c.mul_red(3, m), m.mul_mod(b.residue(j)[t], 3));
                    let c = &as_[j * n + t];
                    assert_eq!(c.operand(), a.residue(j)[t]);
                }
            }
        }
    }

    #[test]
    fn galois_keys_lookup() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(11);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let gk = GaloisKeys::generate_with_conjugate(&ctx, &sk, &[1, -2], &mut rng);
        let e1 = galois_elt_from_step(1, ctx.n());
        assert!(gk.key(e1).is_ok());
        assert!(gk.permutation(e1).is_ok());
        assert!(gk.key(galois_elt_conjugate(ctx.n())).is_ok());
        assert!(matches!(
            gk.key(999_999),
            Err(CkksError::MissingGaloisKey { .. })
        ));
        assert!(gk.elements().count() >= 3);
    }

    #[test]
    fn restrict_poly_picks_indices() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(12);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let r = sk.restricted(&[0, 2]);
        assert_eq!(r.num_residues(), 2);
        assert_eq!(r.residue(0), sk.poly().residue(0));
        assert_eq!(r.residue(1), sk.poly().residue(2));
    }
}
