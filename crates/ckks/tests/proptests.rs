//! Property tests for the CKKS scheme: homomorphism laws, rotation
//! composition, serialization robustness.

use heax_ckks::serialize::{deserialize_ciphertext, serialize_ciphertext};
use heax_ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, PublicKey,
    RelinKey, SecretKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

struct Rig {
    ctx: CkksContext,
    sk: SecretKey,
    pk: PublicKey,
    rng: StdRng,
}

fn rig(seed: u64) -> Rig {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    Rig { ctx, sk, pk, rng }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Homomorphism: Dec(Enc(x) + Enc(y)·Enc(z) relinearized) ≈ x + y·z.
    #[test]
    fn fused_add_mul_homomorphism(
        x in -5.0f64..5.0,
        y in -5.0f64..5.0,
        z in -5.0f64..5.0,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let rlk = RelinKey::generate(&r.ctx, &r.sk, &mut r.rng);
        let enc = CkksEncoder::new(&r.ctx);
        let eval = Evaluator::new(&r.ctx);
        let scale = r.ctx.params().scale();
        let top = r.ctx.max_level();
        let e = Encryptor::new(&r.ctx, &r.pk);
        let cy = e.encrypt(&enc.encode_real(&[y], scale, top).unwrap(), &mut r.rng).unwrap();
        let cz = e.encrypt(&enc.encode_real(&[z], scale, top).unwrap(), &mut r.rng).unwrap();
        let yz = eval.multiply_relin(&cy, &cz, &rlk).unwrap();
        // Match x's scale to the (unrescaled) product scale by re-encoding.
        let cx2 = e.encrypt(&enc.encode_real(&[x], yz.scale(), top).unwrap(), &mut r.rng).unwrap();
        let total = eval.add(&cx2, &yz).unwrap();
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let got = enc.decode_real(&dec.decrypt(&total).unwrap()).unwrap()[0];
        prop_assert!((got - (x + y * z)).abs() < 0.05, "{got} vs {}", x + y * z);
    }

    /// Rotation composition: rotate(rotate(x, a), b) == rotate(x, a+b).
    #[test]
    fn rotation_composes(
        a in 1i64..8,
        b in 1i64..8,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let gks = GaloisKeys::generate(&r.ctx, &r.sk, &[a, b, a + b], &mut r.rng);
        let enc = CkksEncoder::new(&r.ctx);
        let eval = Evaluator::new(&r.ctx);
        let slots = r.ctx.n() / 2;
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 * 0.25).collect();
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let two_step = eval.rotate(&eval.rotate(&ct, a, &gks).unwrap(), b, &gks).unwrap();
        let one_step = eval.rotate(&ct, a + b, &gks).unwrap();
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let va = enc.decode_real(&dec.decrypt(&two_step).unwrap()).unwrap();
        let vb = enc.decode_real(&dec.decrypt(&one_step).unwrap()).unwrap();
        for j in 0..slots {
            prop_assert!((va[j] - vb[j]).abs() < 0.05, "slot {j}");
            let src = (j as i64 + a + b).rem_euclid(slots as i64) as usize;
            prop_assert!((vb[j] - vals[src]).abs() < 0.05, "slot {j} value");
        }
    }

    /// Serialization round-trips arbitrary encrypted vectors exactly.
    #[test]
    fn serialization_roundtrip(
        vals in prop::collection::vec(-100.0f64..100.0, 1..16),
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let enc = CkksEncoder::new(&r.ctx);
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let bytes = serialize_ciphertext(&ct);
        let back = deserialize_ciphertext(&bytes, &r.ctx).unwrap();
        prop_assert_eq!(&back, &ct);
    }

    /// Random byte mutations never panic and are (almost always) rejected;
    /// when accepted they still deserialize into a structurally valid
    /// ciphertext.
    #[test]
    fn serialization_fuzz_no_panic(
        flip_at in 0usize..5000,
        flip_val in 1u8..=255,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let enc = CkksEncoder::new(&r.ctx);
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&[1.0], r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let mut bytes = serialize_ciphertext(&ct);
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_val;
        if let Ok(parsed) = deserialize_ciphertext(&bytes, &r.ctx) {
            // Accepted mutations must still satisfy every invariant.
            parsed.validate(&r.ctx).unwrap();
        }
    }
}

/// Backend equivalence at the scheme layer: an evaluator pinned to
/// `ThreadPool(k)` must produce bit-identical ciphertexts to the
/// `Sequential` backend for the full multiply / key-switch / relinearize
/// / rescale pipeline, for k ∈ {1, 2, 4}.
mod backend_equivalence {
    use super::*;
    use heax_math::exec::{with_threads, Sequential};
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn key_switch_pipeline_pool_matches_sequential(
            seed in any::<u64>(),
            k in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            let mut r = rig(seed);
            let rlk = RelinKey::generate(&r.ctx, &r.sk, &mut r.rng);
            let enc = CkksEncoder::new(&r.ctx);
            let scale = r.ctx.params().scale();
            let encryptor = Encryptor::new(&r.ctx, &r.pk);
            let ca = encryptor
                .encrypt(&enc.encode_real(&[1.5, -2.25], scale, r.ctx.max_level()).unwrap(), &mut r.rng)
                .unwrap();
            let cb = encryptor
                .encrypt(&enc.encode_real(&[0.5, 3.0], scale, r.ctx.max_level()).unwrap(), &mut r.rng)
                .unwrap();

            let seq = Evaluator::with_executor(&r.ctx, Arc::new(Sequential));
            let par = Evaluator::with_executor(&r.ctx, with_threads(k));

            // Multiply (dyadic accumulate over limbs).
            let prod_seq = seq.multiply(&ca, &cb).unwrap();
            let prod_par = par.multiply(&ca, &cb).unwrap();
            prop_assert_eq!(&prod_seq, &prod_par, "multiply diverged at k={}", k);

            // The inner key-switch primitive.
            let (f0s, f1s) = seq
                .key_switch(prod_seq.component(2), rlk.ksk(), prod_seq.level())
                .unwrap();
            let (f0p, f1p) = par
                .key_switch(prod_par.component(2), rlk.ksk(), prod_par.level())
                .unwrap();
            prop_assert_eq!(&f0s, &f0p, "key_switch f0 diverged at k={}", k);
            prop_assert_eq!(&f1s, &f1p, "key_switch f1 diverged at k={}", k);

            // Relinearize + rescale (exercises flooring through the pool).
            let lin_seq = seq.rescale(&seq.relinearize(&prod_seq, &rlk).unwrap()).unwrap();
            let lin_par = par.rescale(&par.relinearize(&prod_par, &rlk).unwrap()).unwrap();
            prop_assert_eq!(&lin_seq, &lin_par, "relin+rescale diverged at k={}", k);
        }
    }
}
