//! Property tests for the CKKS scheme: homomorphism laws, rotation
//! composition, serialization robustness.

use heax_ckks::serialize::{deserialize_ciphertext, serialize_ciphertext};
use heax_ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, PublicKey,
    RelinKey, SecretKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

struct Rig {
    ctx: CkksContext,
    sk: SecretKey,
    pk: PublicKey,
    rng: StdRng,
}

fn rig(seed: u64) -> Rig {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    Rig { ctx, sk, pk, rng }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Homomorphism: Dec(Enc(x) + Enc(y)·Enc(z) relinearized) ≈ x + y·z.
    #[test]
    fn fused_add_mul_homomorphism(
        x in -5.0f64..5.0,
        y in -5.0f64..5.0,
        z in -5.0f64..5.0,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let rlk = RelinKey::generate(&r.ctx, &r.sk, &mut r.rng);
        let enc = CkksEncoder::new(&r.ctx);
        let eval = Evaluator::new(&r.ctx);
        let scale = r.ctx.params().scale();
        let top = r.ctx.max_level();
        let e = Encryptor::new(&r.ctx, &r.pk);
        let cy = e.encrypt(&enc.encode_real(&[y], scale, top).unwrap(), &mut r.rng).unwrap();
        let cz = e.encrypt(&enc.encode_real(&[z], scale, top).unwrap(), &mut r.rng).unwrap();
        let yz = eval.multiply_relin(&cy, &cz, &rlk).unwrap();
        // Match x's scale to the (unrescaled) product scale by re-encoding.
        let cx2 = e.encrypt(&enc.encode_real(&[x], yz.scale(), top).unwrap(), &mut r.rng).unwrap();
        let total = eval.add(&cx2, &yz).unwrap();
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let got = enc.decode_real(&dec.decrypt(&total).unwrap()).unwrap()[0];
        prop_assert!((got - (x + y * z)).abs() < 0.05, "{got} vs {}", x + y * z);
    }

    /// Rotation composition: rotate(rotate(x, a), b) == rotate(x, a+b).
    #[test]
    fn rotation_composes(
        a in 1i64..8,
        b in 1i64..8,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let gks = GaloisKeys::generate(&r.ctx, &r.sk, &[a, b, a + b], &mut r.rng);
        let enc = CkksEncoder::new(&r.ctx);
        let eval = Evaluator::new(&r.ctx);
        let slots = r.ctx.n() / 2;
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 * 0.25).collect();
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let two_step = eval.rotate(&eval.rotate(&ct, a, &gks).unwrap(), b, &gks).unwrap();
        let one_step = eval.rotate(&ct, a + b, &gks).unwrap();
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let va = enc.decode_real(&dec.decrypt(&two_step).unwrap()).unwrap();
        let vb = enc.decode_real(&dec.decrypt(&one_step).unwrap()).unwrap();
        for j in 0..slots {
            prop_assert!((va[j] - vb[j]).abs() < 0.05, "slot {j}");
            let src = (j as i64 + a + b).rem_euclid(slots as i64) as usize;
            prop_assert!((vb[j] - vals[src]).abs() < 0.05, "slot {j} value");
        }
    }

    /// Serialization round-trips arbitrary encrypted vectors exactly.
    #[test]
    fn serialization_roundtrip(
        vals in prop::collection::vec(-100.0f64..100.0, 1..16),
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let enc = CkksEncoder::new(&r.ctx);
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let bytes = serialize_ciphertext(&ct);
        let back = deserialize_ciphertext(&bytes, &r.ctx).unwrap();
        prop_assert_eq!(&back, &ct);
    }

    /// Random byte mutations never panic and are (almost always) rejected;
    /// when accepted they still deserialize into a structurally valid
    /// ciphertext.
    #[test]
    fn serialization_fuzz_no_panic(
        flip_at in 0usize..5000,
        flip_val in 1u8..=255,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let enc = CkksEncoder::new(&r.ctx);
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&[1.0], r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let mut bytes = serialize_ciphertext(&ct);
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_val;
        if let Ok(parsed) = deserialize_ciphertext(&bytes, &r.ctx) {
            // Accepted mutations must still satisfy every invariant.
            parsed.validate(&r.ctx).unwrap();
        }
    }
}
