//! Property tests for the CKKS scheme: homomorphism laws, rotation
//! composition, serialization robustness.

use heax_ckks::serialize::{deserialize_ciphertext, serialize_ciphertext};
use heax_ckks::{
    CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, GaloisKeys, PublicKey,
    RelinKey, SecretKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> CkksContext {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
}

struct Rig {
    ctx: CkksContext,
    sk: SecretKey,
    pk: PublicKey,
    rng: StdRng,
}

fn rig(seed: u64) -> Rig {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    Rig { ctx, sk, pk, rng }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Homomorphism: Dec(Enc(x) + Enc(y)·Enc(z) relinearized) ≈ x + y·z.
    #[test]
    fn fused_add_mul_homomorphism(
        x in -5.0f64..5.0,
        y in -5.0f64..5.0,
        z in -5.0f64..5.0,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let rlk = RelinKey::generate(&r.ctx, &r.sk, &mut r.rng);
        let enc = CkksEncoder::new(&r.ctx);
        let eval = Evaluator::new(&r.ctx);
        let scale = r.ctx.params().scale();
        let top = r.ctx.max_level();
        let e = Encryptor::new(&r.ctx, &r.pk);
        let cy = e.encrypt(&enc.encode_real(&[y], scale, top).unwrap(), &mut r.rng).unwrap();
        let cz = e.encrypt(&enc.encode_real(&[z], scale, top).unwrap(), &mut r.rng).unwrap();
        let yz = eval.multiply_relin(&cy, &cz, &rlk).unwrap();
        // Match x's scale to the (unrescaled) product scale by re-encoding.
        let cx2 = e.encrypt(&enc.encode_real(&[x], yz.scale(), top).unwrap(), &mut r.rng).unwrap();
        let total = eval.add(&cx2, &yz).unwrap();
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let got = enc.decode_real(&dec.decrypt(&total).unwrap()).unwrap()[0];
        prop_assert!((got - (x + y * z)).abs() < 0.05, "{got} vs {}", x + y * z);
    }

    /// Rotation composition: rotate(rotate(x, a), b) == rotate(x, a+b).
    #[test]
    fn rotation_composes(
        a in 1i64..8,
        b in 1i64..8,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let gks = GaloisKeys::generate(&r.ctx, &r.sk, &[a, b, a + b], &mut r.rng);
        let enc = CkksEncoder::new(&r.ctx);
        let eval = Evaluator::new(&r.ctx);
        let slots = r.ctx.n() / 2;
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 * 0.25).collect();
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let two_step = eval.rotate(&eval.rotate(&ct, a, &gks).unwrap(), b, &gks).unwrap();
        let one_step = eval.rotate(&ct, a + b, &gks).unwrap();
        let dec = Decryptor::new(&r.ctx, &r.sk);
        let va = enc.decode_real(&dec.decrypt(&two_step).unwrap()).unwrap();
        let vb = enc.decode_real(&dec.decrypt(&one_step).unwrap()).unwrap();
        for j in 0..slots {
            prop_assert!((va[j] - vb[j]).abs() < 0.05, "slot {j}");
            let src = (j as i64 + a + b).rem_euclid(slots as i64) as usize;
            prop_assert!((vb[j] - vals[src]).abs() < 0.05, "slot {j} value");
        }
    }

    /// Serialization round-trips arbitrary encrypted vectors exactly.
    #[test]
    fn serialization_roundtrip(
        vals in prop::collection::vec(-100.0f64..100.0, 1..16),
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let enc = CkksEncoder::new(&r.ctx);
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let bytes = serialize_ciphertext(&ct);
        let back = deserialize_ciphertext(&bytes, &r.ctx).unwrap();
        prop_assert_eq!(&back, &ct);
    }

    /// Random byte mutations never panic and are (almost always) rejected;
    /// when accepted they still deserialize into a structurally valid
    /// ciphertext.
    #[test]
    fn serialization_fuzz_no_panic(
        flip_at in 0usize..5000,
        flip_val in 1u8..=255,
        seed in any::<u64>(),
    ) {
        let mut r = rig(seed);
        let enc = CkksEncoder::new(&r.ctx);
        let ct = Encryptor::new(&r.ctx, &r.pk)
            .encrypt(
                &enc.encode_real(&[1.0], r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                &mut r.rng,
            )
            .unwrap();
        let mut bytes = serialize_ciphertext(&ct);
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_val;
        if let Ok(parsed) = deserialize_ciphertext(&bytes, &r.ctx) {
            // Accepted mutations must still satisfy every invariant.
            parsed.validate(&r.ctx).unwrap();
        }
    }
}

/// PR 3 key-switch overhaul properties: the Shoup-table fast path must be
/// bit-identical to the seed Barrett path on every backend, and hoisted
/// multi-rotation must decrypt to the same slot values as sequential
/// rotations.
mod keyswitch_overhaul {
    use super::*;
    use heax_math::exec::with_threads;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Shoup-path key switch is bit-identical to the seed Barrett
        /// reference, under both the sequential backend and a 4-lane pool
        /// (the two `HEAX_THREADS` configurations CI smoke-tests).
        #[test]
        fn shoup_key_switch_bit_identical_to_barrett(
            seed in any::<u64>(),
            threads in prop::sample::select(vec![1usize, 4]),
        ) {
            let mut r = rig(seed);
            let rlk = RelinKey::generate(&r.ctx, &r.sk, &mut r.rng);
            let enc = CkksEncoder::new(&r.ctx);
            let scale = r.ctx.params().scale();
            let e = Encryptor::new(&r.ctx, &r.pk);
            let ca = e
                .encrypt(&enc.encode_real(&[1.25, -0.75], scale, r.ctx.max_level()).unwrap(), &mut r.rng)
                .unwrap();
            let eval = Evaluator::with_executor(&r.ctx, with_threads(threads));
            let prod = eval.multiply(&ca, &ca).unwrap();
            for level in [prod.level(), 1, 0] {
                let target = if level == prod.level() {
                    prod.component(2).clone()
                } else {
                    // Restrict the target to a lower level to cover the
                    // non-top bases too.
                    let mut t = prod.component(2).clone();
                    while t.num_residues() > level + 1 {
                        t.pop_residue();
                    }
                    t
                };
                let (f0, f1) = eval.key_switch(&target, rlk.ksk(), level).unwrap();
                let (g0, g1) = eval.key_switch_reference(&target, rlk.ksk(), level).unwrap();
                prop_assert_eq!(&f0, &g0, "f0 diverged at level={} threads={}", level, threads);
                prop_assert_eq!(&f1, &g1, "f1 diverged at level={} threads={}", level, threads);
            }
        }

        /// `rotate_many(steps)` decrypts identically (slot-wise, within
        /// encoder tolerance) to sequential `rotate` per step, and is
        /// bit-identical across the sequential and 4-lane backends.
        #[test]
        fn rotate_many_matches_sequential_rotations(
            steps in prop::collection::vec(-7i64..8, 1..5),
            seed in any::<u64>(),
        ) {
            let mut r = rig(seed);
            let gks = GaloisKeys::generate(&r.ctx, &r.sk, &steps, &mut r.rng);
            let enc = CkksEncoder::new(&r.ctx);
            let slots = r.ctx.n() / 2;
            let vals: Vec<f64> = (0..slots).map(|i| i as f64 * 0.125 - 2.0).collect();
            let ct = Encryptor::new(&r.ctx, &r.pk)
                .encrypt(
                    &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                    &mut r.rng,
                )
                .unwrap();
            let seq_eval = Evaluator::with_executor(&r.ctx, with_threads(1));
            let par_eval = Evaluator::with_executor(&r.ctx, with_threads(4));
            let hoisted = seq_eval.rotate_many(&ct, &steps, &gks).unwrap();
            let hoisted_par = par_eval.rotate_many(&ct, &steps, &gks).unwrap();
            prop_assert_eq!(hoisted.len(), steps.len());
            let dec = Decryptor::new(&r.ctx, &r.sk);
            for ((h, hp), &step) in hoisted.iter().zip(&hoisted_par).zip(&steps) {
                prop_assert_eq!(h, hp, "hoisted rotation diverged across backends");
                let sequential = seq_eval.rotate(&ct, step, &gks).unwrap();
                let vh = enc.decode_real(&dec.decrypt(h).unwrap()).unwrap();
                let vs = enc.decode_real(&dec.decrypt(&sequential).unwrap()).unwrap();
                for j in 0..slots {
                    prop_assert!(
                        (vh[j] - vs[j]).abs() < 0.05,
                        "step {} slot {}: hoisted {} vs sequential {}", step, j, vh[j], vs[j]
                    );
                    let src = (j as i64 + step).rem_euclid(slots as i64) as usize;
                    prop_assert!(
                        (vh[j] - vals[src]).abs() < 0.05,
                        "step {} slot {} wrong value", step, j
                    );
                }
            }
        }
    }
}

/// PR 7 seeded wire path (PROTOCOL.md §4.4): a seeded fresh encryption
/// must survive the wire byte-for-byte, expand identically on both
/// ends, travel through the tag-dispatching operand decoder, and
/// decrypt to the same values as its unseeded symmetric twin.
mod seeded_wire_path {
    use super::*;
    use heax_ckks::encrypt_symmetric_seeded;
    use heax_ckks::serialize::{deserialize_operand, serialize_seeded_ciphertext};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn seeded_roundtrip_expands_and_decrypts_identically(
            vals in prop::collection::vec(-50.0f64..50.0, 1..16),
            seed in any::<u64>(),
        ) {
            let mut r = rig(seed);
            let enc = CkksEncoder::new(&r.ctx);
            let pt = enc
                .encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level())
                .unwrap();
            let seeded = encrypt_symmetric_seeded(&r.ctx, &r.sk, &pt, &mut r.rng).unwrap();
            let sender_side = seeded.expand(&r.ctx).unwrap();

            // Wire trip through the operand decoder: the receiver's
            // expansion must be bit-identical to the sender's.
            let bytes = serialize_seeded_ciphertext(&seeded);
            let (receiver_side, was_seeded) = deserialize_operand(&bytes, &r.ctx).unwrap();
            prop_assert!(was_seeded);
            prop_assert_eq!(&receiver_side, &sender_side);

            // And it decrypts to the encoded values, like an unseeded
            // symmetric encryption of the same plaintext does.
            let dec = Decryptor::new(&r.ctx, &r.sk);
            let got = enc.decode_real(&dec.decrypt(&receiver_side).unwrap()).unwrap();
            let unseeded = heax_ckks::encrypt_symmetric(&r.ctx, &r.sk, &pt, &mut r.rng).unwrap();
            let via_unseeded = enc.decode_real(&dec.decrypt(&unseeded).unwrap()).unwrap();
            for (j, &v) in vals.iter().enumerate() {
                prop_assert!((got[j] - v).abs() < 0.05, "slot {} seeded: {} vs {}", j, got[j], v);
                prop_assert!(
                    (got[j] - via_unseeded[j]).abs() < 0.1,
                    "slot {} seeded vs unseeded drifted", j
                );
            }
        }

        /// The operand decoder's zero-copy full-ciphertext path agrees
        /// with the classic owned decoder on arbitrary encrypted data.
        #[test]
        fn operand_view_path_matches_owned_decoder(
            vals in prop::collection::vec(-50.0f64..50.0, 1..16),
            seed in any::<u64>(),
        ) {
            let mut r = rig(seed);
            let enc = CkksEncoder::new(&r.ctx);
            let ct = Encryptor::new(&r.ctx, &r.pk)
                .encrypt(
                    &enc.encode_real(&vals, r.ctx.params().scale(), r.ctx.max_level()).unwrap(),
                    &mut r.rng,
                )
                .unwrap();
            let bytes = serialize_ciphertext(&ct);
            let (via_view, was_seeded) = deserialize_operand(&bytes, &r.ctx).unwrap();
            prop_assert!(!was_seeded);
            prop_assert_eq!(&via_view, &deserialize_ciphertext(&bytes, &r.ctx).unwrap());
            prop_assert_eq!(&via_view, &ct);
        }
    }
}

/// Backend equivalence at the scheme layer: an evaluator pinned to
/// `ThreadPool(k)` must produce bit-identical ciphertexts to the
/// `Sequential` backend for the full multiply / key-switch / relinearize
/// / rescale pipeline, for k ∈ {1, 2, 4}.
mod backend_equivalence {
    use super::*;
    use heax_math::exec::{with_threads, Sequential};
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn key_switch_pipeline_pool_matches_sequential(
            seed in any::<u64>(),
            k in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            let mut r = rig(seed);
            let rlk = RelinKey::generate(&r.ctx, &r.sk, &mut r.rng);
            let enc = CkksEncoder::new(&r.ctx);
            let scale = r.ctx.params().scale();
            let encryptor = Encryptor::new(&r.ctx, &r.pk);
            let ca = encryptor
                .encrypt(&enc.encode_real(&[1.5, -2.25], scale, r.ctx.max_level()).unwrap(), &mut r.rng)
                .unwrap();
            let cb = encryptor
                .encrypt(&enc.encode_real(&[0.5, 3.0], scale, r.ctx.max_level()).unwrap(), &mut r.rng)
                .unwrap();

            let seq = Evaluator::with_executor(&r.ctx, Arc::new(Sequential));
            let par = Evaluator::with_executor(&r.ctx, with_threads(k));

            // Multiply (dyadic accumulate over limbs).
            let prod_seq = seq.multiply(&ca, &cb).unwrap();
            let prod_par = par.multiply(&ca, &cb).unwrap();
            prop_assert_eq!(&prod_seq, &prod_par, "multiply diverged at k={}", k);

            // The inner key-switch primitive.
            let (f0s, f1s) = seq
                .key_switch(prod_seq.component(2), rlk.ksk(), prod_seq.level())
                .unwrap();
            let (f0p, f1p) = par
                .key_switch(prod_par.component(2), rlk.ksk(), prod_par.level())
                .unwrap();
            prop_assert_eq!(&f0s, &f0p, "key_switch f0 diverged at k={}", k);
            prop_assert_eq!(&f1s, &f1p, "key_switch f1 diverged at k={}", k);

            // Relinearize + rescale (exercises flooring through the pool).
            let lin_seq = seq.rescale(&seq.relinearize(&prod_seq, &rlk).unwrap()).unwrap();
            let lin_par = par.rescale(&par.relinearize(&prod_par, &rlk).unwrap()).unwrap();
            prop_assert_eq!(&lin_seq, &lin_par, "relin+rescale diverged at k={}", k);
        }
    }
}
