//! Adversarial decoding suite: every `deserialize_*` entry point must be
//! **total** on untrusted input — structured `Err`, never a panic or
//! abort — under random truncation, bit flips, oversized length fields,
//! overwritten words, NaN scales, and raw garbage.
//!
//! Every mutated byte string is fed to *every* decoder (not just the one
//! matching its original type), because a hostile peer is not obliged to
//! send the object the server expects. CI runs this suite under both
//! `HEAX_THREADS=1` and `HEAX_THREADS=4`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use heax_ckks::serialize::{
    deserialize_ciphertext, deserialize_galois_keys, deserialize_ksk, deserialize_operand,
    deserialize_plaintext, deserialize_public_key, deserialize_relin_key, deserialize_secret_key,
    deserialize_seeded_ciphertext, serialize_ciphertext, serialize_galois_keys, serialize_ksk,
    serialize_plaintext, serialize_public_key, serialize_relin_key, serialize_secret_key,
    serialize_seeded_ciphertext, CiphertextView,
};
use heax_ckks::{
    encrypt_symmetric_seeded, CkksContext, CkksEncoder, CkksParams, Encryptor, GaloisKeys,
    KeySwitchKey, PublicKey, RelinKey, SecretKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Valid serialized objects of every wire type, built once.
struct Corpus {
    ctx: CkksContext,
    blobs: Vec<(&'static str, Vec<u8>)>,
}

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
        let ctx =
            CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let s_sq = sk.poly().dyadic_mul(sk.poly()).unwrap();
        let ksk = KeySwitchKey::generate(&ctx, &s_sq, &sk, &mut rng);
        let gks = GaloisKeys::generate(&ctx, &sk, &[1, -2], &mut rng);
        let enc = CkksEncoder::new(&ctx);
        let pt = enc
            .encode_real(&[1.5, -2.25, 0.5], ctx.params().scale(), ctx.max_level())
            .unwrap();
        let ct = Encryptor::new(&ctx, &pk).encrypt(&pt, &mut rng).unwrap();
        let seeded = encrypt_symmetric_seeded(&ctx, &sk, &pt, &mut rng).unwrap();
        let blobs = vec![
            ("plaintext", serialize_plaintext(&pt)),
            ("ciphertext", serialize_ciphertext(&ct)),
            ("secret_key", serialize_secret_key(&sk)),
            ("public_key", serialize_public_key(&pk)),
            ("ksk", serialize_ksk(&ksk)),
            ("relin_key", serialize_relin_key(&rlk)),
            ("galois_keys", serialize_galois_keys(&gks)),
            ("seeded_ciphertext", serialize_seeded_ciphertext(&seeded)),
        ];
        Corpus { ctx, blobs }
    })
}

/// Runs every decoder over the bytes; returns how many accepted. Any
/// panic propagates to the caller's `catch_unwind`. The v2 entry
/// points — seeded ciphertexts, the zero-copy view (parse *and*
/// materialize), and the tag-dispatching operand decoder — face the
/// same hostile bytes as the originals.
fn decode_all(ctx: &CkksContext, bytes: &[u8]) -> usize {
    let mut ok = 0;
    ok += usize::from(deserialize_plaintext(bytes, ctx).is_ok());
    ok += usize::from(deserialize_ciphertext(bytes, ctx).is_ok());
    ok += usize::from(deserialize_secret_key(bytes, ctx).is_ok());
    ok += usize::from(deserialize_public_key(bytes, ctx).is_ok());
    ok += usize::from(deserialize_ksk(bytes, ctx).is_ok());
    ok += usize::from(deserialize_relin_key(bytes, ctx).is_ok());
    ok += usize::from(deserialize_galois_keys(bytes, ctx).is_ok());
    ok += usize::from(deserialize_seeded_ciphertext(bytes, ctx).is_ok());
    ok += usize::from(
        CiphertextView::parse(bytes)
            .and_then(|v| v.to_ciphertext(ctx))
            .is_ok(),
    );
    ok += usize::from(deserialize_operand(bytes, ctx).is_ok());
    ok
}

/// Asserts "no panic" for a mutated input, via `catch_unwind` so a
/// violation reports the mutation instead of killing the harness.
fn assert_total(ctx: &CkksContext, bytes: &[u8]) -> Result<(), TestCaseError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| decode_all(ctx, bytes)));
    prop_assert!(
        outcome.is_ok(),
        "a deserialize_* entry point panicked on {} mutated bytes",
        bytes.len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random structural mutations of valid objects never panic any
    /// decoder.
    #[test]
    fn mutated_objects_never_panic(
        blob_idx in any::<u64>(),
        kind in 0usize..5,
        pos in any::<u64>(),
        bit in 0u8..8,
        word in any::<u64>(),
    ) {
        let c = corpus();
        let (_, blob) = &c.blobs[(blob_idx % c.blobs.len() as u64) as usize];
        let mut bytes = blob.clone();
        let len = bytes.len();
        match kind {
            // Truncation at an arbitrary boundary.
            0 => bytes.truncate((pos % (len as u64 + 1)) as usize),
            // Single bit flip.
            1 => bytes[(pos % len as u64) as usize] ^= 1 << bit,
            // Overwrite an aligned-ish u64 — this is how hostile length
            // fields (up to u64::MAX) and non-canonical residues appear.
            2 => {
                let at = (pos % (len as u64 - 8)) as usize;
                bytes[at..at + 8].copy_from_slice(&word.to_le_bytes());
            }
            // Non-finite scale in the header region (offset 14 is the
            // scale field of plaintext/ciphertext layouts; for other
            // objects it is just another corruption).
            3 => {
                let nan = if word % 2 == 0 { f64::NAN } else { f64::INFINITY };
                bytes[14..22].copy_from_slice(&nan.to_le_bytes());
            }
            // Trailing garbage.
            _ => bytes.extend_from_slice(&word.to_le_bytes()),
        }
        assert_total(&c.ctx, &bytes)?;
    }

    /// Raw random bytes never panic and are never accepted.
    #[test]
    fn random_garbage_rejected_without_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let c = corpus();
        assert_total(&c.ctx, &bytes)?;
        let accepted = catch_unwind(AssertUnwindSafe(|| decode_all(&c.ctx, &bytes)))
            .expect("checked above");
        prop_assert_eq!(accepted, 0, "random garbage must never decode");
    }

    /// Every strict prefix of a valid object is rejected (no decoder
    /// accepts truncated input), still without panicking.
    #[test]
    fn strict_prefixes_always_error(
        blob_idx in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let c = corpus();
        let (name, blob) = &c.blobs[(blob_idx % c.blobs.len() as u64) as usize];
        let cut = (cut % blob.len() as u64) as usize;
        let bytes = &blob[..cut];
        assert_total(&c.ctx, bytes)?;
        let accepted = catch_unwind(AssertUnwindSafe(|| decode_all(&c.ctx, bytes)))
            .expect("checked above");
        prop_assert_eq!(accepted, 0, "truncated {} decoded at cut {}", name, cut);
    }
}

/// Deterministic spot checks for the two hardening fixes, independent of
/// the random sweep: NaN/tiny scales and hostile length fields.
#[test]
fn nan_scale_and_huge_lengths_are_structured_errors() {
    let c = corpus();
    for (name, blob) in &c.blobs[..2] {
        // plaintext, ciphertext: scale at offset 14.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, 1.999] {
            let mut bytes = blob.clone();
            bytes[14..22].copy_from_slice(&bad.to_le_bytes());
            let pt = deserialize_plaintext(&bytes, &c.ctx);
            let ct = deserialize_ciphertext(&bytes, &c.ctx);
            assert!(
                pt.is_err() && ct.is_err(),
                "{name} with scale {bad} must be rejected"
            );
        }
    }
    // Huge length fields planted over every u64-aligned offset must
    // never allocate-then-crash; scan the whole ciphertext blob.
    let (_, ct_blob) = &c.blobs[1];
    for at in (0..ct_blob.len() - 8).step_by(8) {
        let mut bytes = ct_blob.clone();
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let _ = catch_unwind(AssertUnwindSafe(|| decode_all(&c.ctx, &bytes)))
            .unwrap_or_else(|_| panic!("panic with u64::MAX planted at offset {at}"));
    }
}
