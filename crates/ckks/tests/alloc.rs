//! Asserts the key-switch hot path is allocation-free after warm-up
//! (PR 3 acceptance criterion): a counting global allocator tracks
//! allocations made by *this thread* while `key_switch_into` runs against
//! pre-shaped outputs and the evaluator's warmed scratch workspace.
//!
//! The counter is thread-local so concurrently running tests in this
//! binary cannot pollute the measurement; the assertion therefore covers
//! the sequential backend (the pooled backend allocates its limb
//! work-lists on the submitting thread by design and is exercised for
//! correctness elsewhere).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use heax_ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksParams, Encryptor, Evaluator, GaloisKeys, PublicKey,
    RelinKey, SecretKey,
};
use heax_math::exec::Sequential;
use heax_math::poly::{Representation, RnsPoly};
use rand::rngs::StdRng;
use rand::SeedableRng;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn record() {
        // `try_with` so allocations during TLS setup/teardown never recurse
        // or abort; they simply go uncounted.
        let _ = COUNTING.try_with(|c| {
            if c.get() {
                let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
            }
        });
    }
}

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; `record()` only bumps a thread-local counter and never
// allocates, so re-entrancy into the allocator is impossible.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled on this thread and returns
/// how many heap allocations it performed.
fn count_allocs<F: FnOnce()>(f: F) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

struct Rig {
    ctx: CkksContext,
    rlk: RelinKey,
    gks: GaloisKeys,
    prod: Ciphertext,
    fresh: Ciphertext,
}

fn rig() -> Rig {
    let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
    let ctx = CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
    let gks = GaloisKeys::generate(&ctx, &sk, &[1, 2], &mut rng);
    let enc = CkksEncoder::new(&ctx);
    let scale = ctx.params().scale();
    let pt = enc
        .encode_real(&[1.5, -2.0, 0.25], scale, ctx.max_level())
        .unwrap();
    let e = Encryptor::new(&ctx, &pk);
    let fresh = e.encrypt(&pt, &mut rng).unwrap();
    let eval = Evaluator::with_executor(&ctx, Arc::new(Sequential));
    let prod = eval.multiply(&fresh, &fresh).unwrap();
    Rig {
        ctx,
        rlk,
        gks,
        prod,
        fresh,
    }
}

#[test]
fn key_switch_into_is_allocation_free_after_warmup() {
    let r = rig();
    let eval = Evaluator::with_executor(&r.ctx, Arc::new(Sequential));
    let level = r.prod.level();
    let moduli = r.ctx.level_moduli(level);
    let mut f0 = RnsPoly::zero(r.ctx.n(), moduli, Representation::Ntt);
    let mut f1 = RnsPoly::zero(r.ctx.n(), moduli, Representation::Ntt);
    let target = r.prod.component(2);

    // Warm-up: the first call shapes the evaluator's scratch for `level`.
    for _ in 0..2 {
        eval.key_switch_into(target, r.rlk.ksk(), level, &mut f0, &mut f1)
            .unwrap();
    }
    let expected = eval.key_switch(target, r.rlk.ksk(), level).unwrap();

    let allocs = count_allocs(|| {
        for _ in 0..5 {
            eval.key_switch_into(target, r.rlk.ksk(), level, &mut f0, &mut f1)
                .unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "key_switch_into allocated {allocs} times after warm-up"
    );
    assert_eq!((f0, f1), expected, "warm path result drifted");
}

#[test]
fn rotation_hot_path_allocates_only_outputs() {
    // apply_galois must not allocate scratch beyond its two output
    // polynomials (f0/f1 backing vecs + their moduli vecs + the component
    // vec + the Ciphertext is a small constant; the seed allocated
    // O(k²) temporaries on top).
    let r = rig();
    let eval = Evaluator::with_executor(&r.ctx, Arc::new(Sequential));
    for _ in 0..2 {
        eval.rotate(&r.fresh, 1, &r.gks).unwrap();
    }
    let allocs = count_allocs(|| {
        let _ = eval.rotate(&r.fresh, 1, &r.gks).unwrap();
    });
    // 2 output polys × (data vec + moduli vec) + polys vec + slack for the
    // Ciphertext container — anything near the seed's O(k²) per-call
    // buffer churn (dozens) fails.
    assert!(
        allocs <= 10,
        "rotate allocated {allocs} times; expected only output buffers"
    );
}
