//! Property tests for the hardware models: scheduler invariants under
//! randomized architectures, BRAM packing laws, and word-size-model
//! monotonicity.

use heax_hw::bram::BankLayout;
use heax_hw::keyswitch_pipeline::{schedule, KeySwitchArch, Station};
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_hw::wordsize::{dsps_per_multiplier, moduli_needed, MultiplierStyle};
use proptest::prelude::*;

fn arb_arch() -> impl Strategy<Value = KeySwitchArch> {
    (
        prop::sample::select(vec![4096usize, 8192, 16384]),
        1usize..=8,                                // k
        prop::sample::select(vec![4usize, 8, 16]), // nc_intt0
        prop::sample::select(vec![1usize, 2, 4]),  // m0
    )
        .prop_map(|(n, k, nc_intt0, m0)| {
            // The paper's rule m0 = min(k, 4): more modules than RNS
            // components would idle (k NTT0 jobs round-robin over m0
            // modules), unbalancing the pipeline the f1/f2 formulas assume.
            let m0 = m0.min(k);
            let log_n = n.trailing_zeros() as u64;
            let nc_ntt0 = (k * nc_intt0 / m0).max(1).next_power_of_two();
            let nc_dyad = ((4 * nc_ntt0 as u64).div_ceil(log_n) as usize)
                .next_power_of_two()
                .max(1);
            KeySwitchArch {
                n,
                k,
                nc_intt0,
                m0,
                nc_ntt0,
                num_dyad: m0 + 1,
                nc_dyad,
                nc_intt1: (nc_intt0 / k).max(1).next_power_of_two(),
                nc_ntt1: nc_intt0,
                nc_ms: 2,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No station ever runs two jobs at once, completions are monotone,
    /// and the job counts per op are exactly k INTT0 / k² NTT0 /
    /// k·(m0+1) Dyad jobs.
    #[test]
    fn schedule_invariants(arch in arb_arch()) {
        prop_assume!(arch.validate().is_ok());
        let ops = 5usize;
        let sched = schedule(&arch, ops).unwrap();
        // Monotone completions.
        for w in sched.op_completion.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Exclusivity per station.
        let stations: Vec<Station> =
            sched.station_busy().iter().map(|(s, _)| *s).collect();
        for s in stations {
            let mut evs: Vec<_> =
                sched.events.iter().filter(|e| e.station == s).collect();
            evs.sort_by_key(|e| e.start);
            for w in evs.windows(2) {
                prop_assert!(w[1].start >= w[0].end);
            }
        }
        // Job counts for a middle op.
        let op = 2usize;
        let count =
            |pred: &dyn Fn(&Station) -> bool| sched.events.iter()
                .filter(|e| e.op == op && pred(&e.station)).count();
        prop_assert_eq!(count(&|s| *s == Station::Intt0), arch.k);
        prop_assert_eq!(count(&|s| matches!(s, Station::Ntt0(_))), arch.k * arch.k);
        prop_assert_eq!(count(&|s| matches!(s, Station::Dyad(_))), arch.k * arch.num_dyad);
        // Steady interval is at least the bottleneck closed form.
        prop_assert!(sched.steady_interval >= arch.k as u64 * arch.intt0_cycles()
            || sched.steady_interval >= arch.steady_interval_cycles());
    }

    /// Buffer demand never exceeds the provisioning formulas.
    #[test]
    fn buffer_formulas_are_upper_bounds(arch in arb_arch()) {
        prop_assume!(arch.validate().is_ok());
        let sched = schedule(&arch, 8).unwrap();
        prop_assert!(sched.input_buffers_needed() <= arch.f1());
        prop_assert!(sched.accumulator_buffers_needed() <= arch.f2());
    }

    /// BRAM packing: provisioned bits always cover the payload; packed
    /// layout never uses more M20Ks than the naive one; utilization in
    /// (0, 1].
    #[test]
    fn bank_packing_laws(
        log_n in 9u32..15,
        beta in prop::sample::select(vec![2u64, 4, 8, 16, 32]),
    ) {
        let n = 1u64 << log_n;
        let bank = BankLayout::polynomial(n, beta);
        prop_assert!(bank.payload_bits() <= bank.resources().bram_bits);
        prop_assert!(bank.m20k_units() <= bank.naive_m20k_units());
        let u = bank.utilization();
        prop_assert!(u > 0.0 && u <= 1.0);
        prop_assert!(bank.width_utilization() >= bank.naive_width_utilization());
    }

    /// NTT module cycle formula scales linearly in 1/cores and the stage
    /// split always sums to log n.
    #[test]
    fn ntt_config_laws(
        log_n in 8u32..15,
        log_nc in 2u32..5,
    ) {
        prop_assume!(log_nc + 2 <= log_n);
        let n = 1usize << log_n;
        let nc = 1usize << log_nc;
        let cfg = NttModuleConfig::new(n, nc).unwrap();
        let dbl = NttModuleConfig::new(n, nc * 2);
        if let Ok(dbl) = dbl {
            prop_assert_eq!(cfg.transform_cycles(), 2 * dbl.transform_cycles());
        }
        let t1 = (0..cfg.log_n()).filter(|&s| {
            cfg.stage_kind(s) == heax_hw::ntt_dataflow::StageKind::Type1
        }).count() as u32;
        prop_assert_eq!(t1, cfg.log_n() - cfg.log_nc() - 1);
        prop_assert!(cfg.transform_cycles_basic() >= cfg.transform_cycles());
    }

    /// Word-size model: DSPs per multiplier grow with width; Toom-Cook
    /// never exceeds naive; modulus count shrinks with wider words.
    #[test]
    fn wordsize_monotonicity(w1 in 27u32..80, w2 in 27u32..80, bits in 50u32..500) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(
            dsps_per_multiplier(lo, MultiplierStyle::Naive)
                <= dsps_per_multiplier(hi, MultiplierStyle::Naive)
        );
        prop_assert!(
            dsps_per_multiplier(hi, MultiplierStyle::ToomCook)
                <= dsps_per_multiplier(hi, MultiplierStyle::Naive)
        );
        prop_assert!(moduli_needed(bits, hi) <= moduli_needed(bits, lo));
    }

    /// Board-level pipeline scheduler invariants under random op
    /// streams, architectures, and core counts: per-core compute
    /// exclusivity, DMA-channel exclusivity, stall/busy accounting
    /// consistency, FIFO backpressure respected, and monotone
    /// improvement when cores are added.
    #[test]
    fn board_scheduler_invariants(
        arch in arb_arch(),
        cores in 1usize..=4,
        picks in prop::collection::vec(0usize..7, 1..12),
    ) {
        prop_assume!(arch.validate().is_ok());
        use heax_hw::scheduler::{BoardOp, BoardOpKind, PipelineConfig};
        let mult = heax_hw::mult_dataflow::MultModuleConfig::new(arch.n, 16).unwrap();
        let board = heax_hw::board::Board::stratix10();
        let ops: Vec<BoardOp> = picks.iter().map(|&p| match p {
            0 => BoardOp::new(BoardOpKind::Multiply),
            1 => BoardOp::new(BoardOpKind::Relinearize),
            2 => BoardOp::new(BoardOpKind::Rotate),
            3 => BoardOp::rotate_many(3),
            4 => BoardOp::new(BoardOpKind::Rescale),
            5 => BoardOp::new(BoardOpKind::Add),
            _ => BoardOp::new(BoardOpKind::Fetch).with_parked_input(),
        }).collect();
        let cfg = PipelineConfig::new(&board, arch, mult, cores).unwrap();
        let r = cfg.schedule_stream(&ops).unwrap();

        // Every op scheduled, on a valid core, with sane spans.
        prop_assert_eq!(r.ops.len(), ops.len());
        for t in &r.ops {
            prop_assert!(t.core < cores);
            prop_assert!(t.xfer_in.1 >= t.xfer_in.0);
            prop_assert!(t.compute.0 >= t.xfer_in.1);
            prop_assert!(t.compute.1 >= t.compute.0);
            prop_assert!(t.xfer_out.0 >= t.compute.1);
            prop_assert!(t.xfer_out.1 >= t.xfer_out.0);
        }
        // Compute exclusivity per core.
        for core in 0..cores {
            let mut evs: Vec<_> = r.ops.iter().filter(|t| t.core == core).collect();
            evs.sort_by_key(|t| t.compute.0);
            for w in evs.windows(2) {
                prop_assert!(w[1].compute.0 >= w[0].compute.1);
            }
        }
        // DMA-channel exclusivity (nonzero transfers only).
        for get in [
            |t: &heax_hw::scheduler::OpTiming| t.xfer_in,
            |t: &heax_hw::scheduler::OpTiming| t.xfer_out,
        ] {
            let mut evs: Vec<(u64, u64)> = r.ops.iter()
                .map(get).filter(|&(s, e)| e > s).collect();
            evs.sort();
            for w in evs.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "DMA channel overlap");
            }
        }
        // Accounting: core busy equals the compute spans; makespan
        // bounds every resource; FIFO within the configured depth.
        let span: u64 = r.ops.iter().map(|t| t.compute.1 - t.compute.0).sum();
        prop_assert_eq!(r.core_busy(), span);
        prop_assert!(r.core_busy() <= cores as u64 * r.total_cycles);
        prop_assert!(r.fifo_high_water <= cfg.input_fifo_depth as u64);
        prop_assert!((0.0..=1.0).contains(&r.core_utilization()));

        // More cores never hurt the makespan.
        if cores > 1 {
            let one = PipelineConfig::new(&board, arch, mult, 1)
                .unwrap().schedule_stream(&ops).unwrap();
            prop_assert!(r.total_cycles <= one.total_cycles);
        }
    }
}
